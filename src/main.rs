//! `rdma-mapred` — command-line driver for the reproduction.
//!
//! ```text
//! rdma-mapred run      --bench terasort --system osu --gb 30 --nodes 4 --disks 1
//! rdma-mapred figure   fig4a | fig4b | fig5 | fig6a | fig6b | fig7 | fig8 | all
//! rdma-mapred validate --gb-mb 64 --nodes 4
//! rdma-mapred systems
//! ```

use std::cell::RefCell;
use std::process::exit;
use std::rc::Rc;

use rdma_mapred::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         rdma-mapred run [--bench terasort|sort] [--system g1|g10|ipoib|ha|osu|osunc]\n              \
         [--gb N] [--nodes N] [--disks N] [--ssd] [--storage] [--seed N]\n              \
         [--block-mb N] [--packet-kb N]\n  \
         rdma-mapred figure <fig4a|fig4b|fig5|fig6a|fig6b|fig7|fig8|all>\n  \
         rdma-mapred validate [--mb N] [--nodes N] [--system osu|ha|ipoib]\n  \
         rdma-mapred systems"
    );
    exit(2)
}

fn parse_system(s: &str) -> System {
    match s {
        "g1" | "1gige" => System::GigE1,
        "g10" | "10gige" => System::GigE10,
        "ipoib" => System::IpoIb,
        "ha" | "hadoop-a" => System::HadoopA,
        "osu" | "osu-ib" => System::OsuIb,
        "osunc" | "osu-nocache" => System::OsuIbNoCache,
        other => {
            eprintln!("unknown system: {other}");
            usage()
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_run(args: &[String]) {
    let bench = match flag_value(args, "--bench").as_deref() {
        Some("sort") => Bench::Sort,
        _ => Bench::TeraSort,
    };
    let system = parse_system(&flag_value(args, "--system").unwrap_or_else(|| "osu".into()));
    let gb: f64 = flag_value(args, "--gb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let nodes: usize = flag_value(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let disks: usize = flag_value(args, "--disks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let testbed = if flag_present(args, "--ssd") {
        Testbed::ssd(nodes)
    } else if flag_present(args, "--storage") {
        Testbed::storage(nodes, disks)
    } else {
        Testbed::compute(nodes, disks)
    };
    let mut exp = Experiment::new("cli", bench, system, testbed, gb, seed);
    exp.block_size_override = flag_value(args, "--block-mb")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|mb| mb << 20);
    exp.osu_packet_override = flag_value(args, "--packet-kb")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|kb| kb << 10);
    let rec = run_experiment(&exp);
    println!(
        "{} {} {:.0}GB on {} nodes ({} disk{}{}):",
        rec.bench,
        rec.system,
        rec.data_gb,
        rec.nodes,
        rec.disks,
        if rec.disks == 1 { "" } else { "s" },
        if rec.ssd { ", SSD" } else { "" }
    );
    println!("  job execution time  {:.1} s (virtual)", rec.duration_s);
    println!("  map phase end       {:.1} s", rec.map_phase_end_s);
    println!("  maps / reduces      {} / {}", rec.maps, rec.reduces);
    println!(
        "  shuffled            {:.2} GB",
        rec.shuffled_bytes as f64 / 1e9
    );
    println!("  cache hit rate      {:.0}%", rec.cache_hit_rate * 100.0);
}

fn cmd_figure(args: &[String]) {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let threads = rmr_bench::default_threads();
    let figs = rmr_bench::all_figures();
    let mut ran = false;
    for fig in figs {
        if which == "all" || which == fig.id {
            rmr_bench::run_figure(&fig, threads);
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown figure: {which}");
        usage();
    }
}

fn cmd_validate(args: &[String]) {
    let mb: u64 = flag_value(args, "--mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let nodes: usize = flag_value(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let system = parse_system(&flag_value(args, "--system").unwrap_or_else(|| "osu".into()));
    let sim = Sim::new(42);
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 512 << 20;
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &vec![spec; nodes],
        HdfsConfig {
            block_size: 8 << 20,
            replication: 2,
            packet_size: 1 << 20,
        },
    );
    let reduces = nodes * 2;
    let mut conf = rmr_cluster::tuned_conf(system, Bench::TeraSort, &Testbed::compute(nodes, 1));
    conf.num_reduces = reduces;
    conf.io_sort_buffer = 64 << 20;
    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c = cluster.clone();
    sim.spawn(async move {
        let records = teragen(&c, "/v/in", mb << 20, true).await;
        let res = run_job(&c, conf, terasort_spec("/v/in", "/v/out")).await;
        let report = teravalidate(&c, "/v/out", reduces, records).await;
        *d.borrow_mut() = Some((res, report));
    })
    .detach();
    sim.run();
    let (res, report) = done.borrow_mut().take().expect("job did not finish");
    match report {
        Ok(r) => println!(
            "VALID: {} records globally sorted across {} partitions \
             ({} in {:.1}s virtual on {})",
            r.records,
            r.partitions,
            res.name,
            res.duration_s,
            res.shuffle.label()
        ),
        Err(e) => {
            eprintln!("INVALID: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("figure") => cmd_figure(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("systems") => {
            for s in System::ALL {
                println!("{:12} {}", format!("{s:?}"), s.label());
            }
        }
        _ => usage(),
    }
}
