//! # rdma-mapred — RDMA-based Hadoop MapReduce over InfiniBand, reproduced
//!
//! A simulation-backed, full-system reproduction of *"High-Performance
//! RDMA-based Design of Hadoop MapReduce over InfiniBand"* (Rahman et al.,
//! IPDPS Workshops 2013): the OSU-IB shuffle engine — RDMA data shuffle over
//! UCR endpoints, TaskTracker-side intermediate-data pre-fetching and
//! caching, and full shuffle/merge/reduce overlap — together with the two
//! systems it is evaluated against (stock Hadoop 0.20 over sockets, and
//! Hadoop-A's network-levitated merge), all running on simulated substrates
//! faithful enough to reproduce the paper's evaluation shapes.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`rmr_des`] | deterministic discrete-event kernel: virtual clock, async executor, fluid resources |
//! | [`rmr_net`] | interconnects: 1GigE / 10GigE / IPoIB socket paths, IB verbs, UCR endpoints |
//! | [`rmr_store`] | HDD/SSD models, JBOD local filesystem, OS page cache |
//! | [`rmr_hdfs`] | mini-HDFS: NameNode, DataNodes, pipelined replication, locality reads |
//! | [`rmr_core`] | the MapReduce engine and the three shuffle designs (the paper's contribution) |
//! | [`rmr_workloads`] | TeraGen/TeraSort/TeraValidate, RandomWriter/Sort, WordCount |
//! | [`rmr_cluster`] | the paper's testbed presets and a parallel experiment driver |
//!
//! ## Quickstart
//!
//! ```
//! use rdma_mapred::prelude::*;
//!
//! let sim = Sim::new(42);
//! let cluster = Cluster::build(
//!     &sim,
//!     FabricParams::ib_verbs_qdr(),
//!     &vec![NodeSpec::westmere_compute(); 3],
//!     HdfsConfig { block_size: 4 << 20, replication: 1, packet_size: 1 << 20 },
//! );
//! let c = cluster.clone();
//! let result = std::rc::Rc::new(std::cell::RefCell::new(None));
//! let r = std::rc::Rc::clone(&result);
//! sim.spawn(async move {
//!     // Generate real records, sort them with the paper's RDMA engine,
//!     // and validate global order.
//!     let records = teragen(&c, "/in", 4 << 20, true).await;
//!     let mut conf = JobConf::osu_ib();
//!     conf.num_reduces = 3;
//!     let res = run_job(&c, conf, terasort_spec("/in", "/out")).await;
//!     teravalidate(&c, "/out", 3, records).await.expect("sorted");
//!     *r.borrow_mut() = Some(res);
//! }).detach();
//! sim.run();
//! assert!(result.borrow().as_ref().unwrap().duration_s > 0.0);
//! ```

pub use rmr_cluster as cluster;
pub use rmr_core as core;
pub use rmr_des as des;
pub use rmr_hdfs as hdfs;
pub use rmr_net as net;
pub use rmr_store as store;
pub use rmr_workloads as workloads;

/// Everything needed to build and run jobs.
pub mod prelude {
    pub use rmr_cluster::{run_all, run_experiment, Bench, Experiment, RunRecord, System, Testbed};
    pub use rmr_core::cluster::{Cluster, NodeSpec};
    pub use rmr_core::{
        run_job, run_job_with_faults, CpuCosts, FaultEvent, FaultPlan, JobConf, JobResult, JobSpec,
        Record, ShuffleKind,
    };
    pub use rmr_des::prelude::*;
    pub use rmr_hdfs::{Blob, HdfsConfig};
    pub use rmr_net::FabricParams;
    pub use rmr_store::DiskParams;
    pub use rmr_workloads::{
        randomwriter, sort_spec, teragen, terasort_spec, teravalidate, validate_sort,
    };
}
