// Fixture: every rule violated once, every violation suppressed with a
// `simcheck: allow(..)` directive — the scanner must report nothing.
use std::time::Instant; // simcheck: allow(wall-clock)

pub fn timed() -> Instant {
    // harness-only timing, never inside a sim: simcheck: allow(wall-clock)
    Instant::now()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng(); // simcheck: allow(os-entropy)
    rng.gen()
}

pub fn threads() {
    // parallelises whole sims, not tasks within one: simcheck: allow(thread-spawn)
    std::thread::spawn(|| {});
}

pub fn map() {
    // never iterated: simcheck: allow(unordered-map)
    let _m: HashMap<u32, u32> = HashMap::new(); // simcheck: allow(unordered-map)
}

pub async fn guarded(state: &RefCell<u64>) {
    let st = state.borrow(); // simcheck: allow(refcell-await)
    // single-task sim, no concurrent borrowers: simcheck: allow(refcell-await)
    tick().await;
    drop(st);
}
