// Fixture: every rule violated once, every violation suppressed with a
// `simcheck: allow(..)` directive — the analyzer must report nothing, and
// every directive must count as used (no stale-allow findings either).
use std::time::Instant; // simcheck: allow(wall-clock)

pub fn timed() -> u64 {
    // harness-only timing, never inside a sim: simcheck: allow(wall-clock)
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

// A suppressed source must not taint its callers either.
pub fn wraps_timed() -> u64 {
    timed() + 1
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng(); // simcheck: allow(os-entropy)
    rng.gen()
}

pub fn threads() {
    // parallelises whole sims, not tasks within one: simcheck: allow(thread-spawn)
    std::thread::spawn(|| {});
}

pub fn map() {
    // key order is irrelevant: the map is only probed by key, never iterated
    let _m: HashMap<u32, u32> = HashMap::new(); // simcheck: allow(unordered-map)
}

pub async fn guarded(state: &RefCell<u64>) {
    let st = state.borrow();
    // single-task sim, no concurrent borrowers: simcheck: allow(yield-borrow)
    tick().await;
    drop(st);
}

pub fn sorted(v: &mut Vec<f64>) {
    // inputs are clamped finite upstream: simcheck: allow(float-ord)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn legacy_dispatch(kind: ShuffleKind) -> bool {
    // pre-trait probe kept for comparison plots: simcheck: allow(match-leak)
    matches!(kind, ShuffleKind::OsuIb)
}
