// Fixture: float comparisons feeding an ordering — positives for the
// `float-ord` rule, plus the shapes it must NOT flag.

// Positive: the classic NaN-collapsing comparator, split across lines the
// way rustfmt writes it (the old per-line scanner could not see this).
pub fn sort_times(v: &mut Vec<f64>) {
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

// Positive: sort-family variants.
pub fn pick(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).unwrap())
}

// Positive: float keys in ordered containers.
pub struct Queues {
    pub heap: std::collections::BinaryHeap<f64>,
    pub set: std::collections::BTreeSet<(u64, f32)>,
}

// Negative: total_cmp is the remedy, not a hazard.
pub fn sort_times_total(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}

// Negative: float *values* never order a BTreeMap — only keys do.
pub struct Gauges {
    pub by_node: std::collections::BTreeMap<u64, f64>,
}

// Negative: defining partial_cmp (a PartialOrd impl delegating to a total
// order) is how the workspace's key types are built.
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
