// Fixture (taint): this file alone is clean under every token rule — no
// clock type, no `now()`, nothing to match. The hazard only appears when
// the analyzer follows `current_millis` into `helpers.rs`.

pub struct JobRecord {
    pub id: u64,
    pub stamped_at: u64,
}

pub fn stamp_job(id: u64) -> JobRecord {
    JobRecord {
        id,
        stamped_at: current_millis(),
    }
}
