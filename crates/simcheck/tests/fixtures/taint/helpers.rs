// Fixture (taint): two wrapper layers between an innocent-looking call
// site and the wall clock. The old token scanner saw nothing wrong with
// `caller.rs`; the call-graph taint pass must walk
// `stamp_job -> current_millis -> raw_clock -> Instant::now()`.

pub fn current_millis() -> u64 {
    raw_clock() / 1_000_000
}

fn raw_clock() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
