// Fixture: iteration-order-unstable containers that must trip the
// `unordered-map` rule.
use std::collections::{HashMap, HashSet};

pub fn first_key(m: &HashMap<u32, u32>) -> Option<u32> {
    m.iter().next().map(|(k, _)| *k)
}

pub fn any_member(s: &HashSet<u32>) -> Option<u32> {
    s.iter().next().copied()
}
