// Fixture: `ShuffleKind` dispatch outside the construction seam — the
// `match-leak` rule. Constructing kinds is fine; branching on them is not.

// Positive: a match arm.
pub fn port_for(kind: ShuffleKind) -> u16 {
    match kind {
        ShuffleKind::OsuIb => 18515,
        _ => 13562,
    }
}

// Positive: an `if let` refutable pattern.
pub fn is_rdma(kind: ShuffleKind) -> bool {
    if let ShuffleKind::OsuIb = kind {
        return true;
    }
    false
}

// Positive: a `matches!` test.
pub fn skip_merge(kind: ShuffleKind) -> bool {
    matches!(kind, ShuffleKind::OsuIb)
}

// Negative: constructing and comparing kinds as values is allowed anywhere.
pub fn defaults() -> Vec<ShuffleKind> {
    let preferred = ShuffleKind::OsuIb;
    assert_eq!(preferred, ShuffleKind::OsuIb);
    vec![preferred, ShuffleKind::Vanilla, ShuffleKind::HadoopA]
}
