// Fixture: determinism-respecting sim code — zero findings expected.
use std::collections::BTreeMap;

pub async fn orderly(sim: &Sim, m: &RefCell<BTreeMap<u32, u32>>) {
    let first = m.borrow().keys().next().copied();
    sim.sleep(SimDuration::from_millis(1)).await;
    if let Some(k) = first {
        m.borrow_mut().remove(&k);
    }
}

pub fn seeded(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen()
}

// Floats sorted with a total order, and float values (not keys) in an
// ordered map — neither trips `float-ord`.
pub fn percentiles(v: &mut Vec<f64>) -> BTreeMap<u64, f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    let mut out = BTreeMap::new();
    out.insert(50, v[v.len() / 2]);
    out
}

// Constructing shuffle kinds is allowed anywhere — only branching on them
// outside the seam trips `match-leak`.
pub fn preset() -> ShuffleKind {
    ShuffleKind::OsuIb
}

// Virtual time through helpers stays clean: taint only flows from real
// clock reads, and `sim.now()` is the remedy, not a hazard.
pub fn stamp(sim: &Sim) -> u64 {
    virtual_nanos(sim)
}

fn virtual_nanos(sim: &Sim) -> u64 {
    sim.now().as_nanos()
}

// Hazard-shaped text inside literals and comments must never match:
// the lexer collapses strings and drops comments before rules run.
pub fn docs() -> (&'static str, String) {
    /* Instant::now() inside a /* nested */ block comment */
    let raw = r#"thread::spawn(|| HashMap::new())"#;
    let multi = "line one \
                 Instant::now() continued".to_string();
    (raw, multi)
}
