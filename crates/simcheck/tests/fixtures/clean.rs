// Fixture: determinism-respecting sim code — zero findings expected.
use std::collections::BTreeMap;

pub async fn orderly(sim: &Sim, m: &RefCell<BTreeMap<u32, u32>>) {
    let first = m.borrow().keys().next().copied();
    sim.sleep(SimDuration::from_millis(1)).await;
    if let Some(k) = first {
        m.borrow_mut().remove(&k);
    }
}

pub fn seeded(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen()
}
