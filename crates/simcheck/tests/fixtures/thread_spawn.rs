// Fixture: OS-thread creation that must trip the `thread-spawn` rule.
pub fn racy() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}

pub fn scoped() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
