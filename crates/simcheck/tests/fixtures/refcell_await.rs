// Fixture: RefCell guards held across .await that must trip the
// `refcell-await` rule.
use std::cell::RefCell;

pub async fn guard_across_await(state: &RefCell<u64>) {
    let mut st = state.borrow_mut();
    tick().await;
    *st += 1;
}

pub async fn temporary_across_await(ch: &RefCell<Chan>) {
    ch.borrow_mut().send(1).await;
}

async fn tick() {}
