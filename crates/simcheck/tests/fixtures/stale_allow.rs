// Fixture: suppression directives that suppress nothing — `stale-allow`.

// Positive: the hazard this allow justified was refactored away.
pub fn no_longer_hazardous() -> u64 {
    // simcheck: allow(wall-clock)
    42
}

// Positive: a typo'd rule name can never match a finding.
pub fn typo() {
    let m = BTreeMap::new(); // simcheck: allow(unordered_map)
    drop(m);
}

// Negative: a directive that actually suppresses a finding is not stale.
pub fn justified() {
    let m = HashMap::new(); // simcheck: allow(unordered-map)
    drop(m);
}
