// Fixture: wall-clock reads that must trip the `wall-clock` rule.
use std::time::{Instant, SystemTime};

pub fn elapsed_wall() -> u128 {
    let start = Instant::now();
    work();
    start.elapsed().as_nanos()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

fn work() {}
