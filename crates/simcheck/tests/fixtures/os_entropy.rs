// Fixture: OS entropy sources that must trip the `os-entropy` rule.
pub fn unseeded() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn also_unseeded() -> u64 {
    let mut rng = SmallRng::from_entropy();
    rng.gen()
}
