// Fixture: RefCell guards live across yield points — all must trip the
// `yield-borrow` rule. The rule generalizes the old `refcell-await`: a
// task can lose control at `.await` and at the DES's yield-shaped calls
// (`wait_until`, `recv`, ...), including poll loops with no literal await.
use std::cell::RefCell;

pub async fn guard_across_await(state: &RefCell<u64>) {
    let mut st = state.borrow_mut();
    tick().await;
    *st += 1;
}

pub async fn temporary_across_await(ch: &RefCell<Chan>) {
    ch.borrow_mut().send(1).await;
}

pub fn guard_across_sim_wait(state: &RefCell<Phase>, sim: &Sim) {
    let st = state.borrow();
    sim.wait_until(st.deadline);
}

// Negative: the guard is dropped before the yield.
pub async fn dropped_before_await(state: &RefCell<u64>) {
    let st = state.borrow_mut();
    drop(st);
    tick().await;
}

// Negative: the guard dies with its block before the yield.
pub async fn scoped_before_await(state: &RefCell<u64>) {
    {
        let mut st = state.borrow_mut();
        *st += 1;
    }
    tick().await;
}

// Negative: only a copy escapes the borrow; no guard is live.
pub async fn copy_before_await(state: &RefCell<Vec<u64>>) {
    let v = state.borrow().clone();
    tick().await;
    consume(v);
}

async fn tick() {}
