//! Property test: the workspace-aware lexer agrees with the old per-line
//! stripper on every input both can handle.
//!
//! The reference implementation below is the previous simcheck's
//! comment/string stripper, copied verbatim in spirit: per-line token
//! streams with comments dropped and string/char literals collapsed to
//! placeholders. The new lexer ([`simcheck::lexer::lex`]) supersedes it for
//! multi-line strings, `r##`-deep raw strings, raw identifiers, and
//! line-continuation escapes — so the generator below sticks to the
//! constructs the old stripper supported (single-line strings, single-`#`
//! raw strings, chars, lifetimes, nested block comments across lines), and
//! on that shared domain the two must produce identical per-line tokens.

use proptest::prelude::*;

/// The old scanner's per-line result: tokens after stripping.
struct OldLine {
    tokens: Vec<String>,
    comment_only: bool,
}

/// The previous simcheck's `scan_lines`, kept as the reference model.
fn old_strip(source: &str) -> Vec<OldLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize;
    for raw in source.lines() {
        let mut tokens: Vec<String> = Vec::new();
        let mut ident = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let flush = |ident: &mut String, tokens: &mut Vec<String>| {
            if !ident.is_empty() {
                tokens.push(std::mem::take(ident));
            }
        };
        while i < bytes.len() {
            let c = bytes[i];
            if in_block_comment > 0 {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    in_block_comment -= 1;
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    in_block_comment += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => break,
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    flush(&mut ident, &mut tokens);
                    in_block_comment += 1;
                    i += 2;
                }
                '"' => {
                    flush(&mut ident, &mut tokens);
                    tokens.push("\"\"".to_string());
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                'r' if bytes.get(i + 1) == Some(&'"') || bytes.get(i + 1) == Some(&'#') => {
                    flush(&mut ident, &mut tokens);
                    tokens.push("\"\"".to_string());
                    let hashed = bytes.get(i + 1) == Some(&'#');
                    let close: &[char] = if hashed { &['"', '#'] } else { &['"'] };
                    i += if hashed { 3 } else { 2 };
                    while i < bytes.len() {
                        if bytes[i..].starts_with(close) {
                            i += close.len();
                            break;
                        }
                        i += 1;
                    }
                }
                '\'' => {
                    let rest: String = bytes[i + 1..].iter().take(4).collect();
                    let is_char = rest.starts_with('\\')
                        || rest.chars().nth(1) == Some('\'')
                        || rest.starts_with('\'');
                    if is_char {
                        flush(&mut ident, &mut tokens);
                        tokens.push("''".to_string());
                        i += 1;
                        if bytes.get(i) == Some(&'\\') {
                            i += 1;
                        }
                        while i < bytes.len() && bytes[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        i += 1;
                        while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                            i += 1;
                        }
                    }
                }
                c if c.is_alphanumeric() || c == '_' => {
                    ident.push(c);
                    i += 1;
                }
                ':' if bytes.get(i + 1) == Some(&':') => {
                    flush(&mut ident, &mut tokens);
                    tokens.push("::".to_string());
                    i += 2;
                }
                c if c.is_whitespace() => {
                    flush(&mut ident, &mut tokens);
                    i += 1;
                }
                c => {
                    flush(&mut ident, &mut tokens);
                    tokens.push(c.to_string());
                    i += 1;
                }
            }
        }
        if !ident.is_empty() {
            tokens.push(ident);
        }
        let comment_only = tokens.is_empty();
        out.push(OldLine {
            tokens,
            comment_only,
        });
    }
    out
}

/// Normalizes a token stream for comparison: the new lexer emits `->` and
/// `=>` as single tokens where the old stripper emitted one char each, and
/// the old stripper kept a `''` placeholder the new lexer also keeps — so
/// exploding every non-word, non-placeholder, non-`::` token to chars puts
/// both on common ground.
fn explode(tokens: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for t in tokens {
        let word = t
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if word || t == "::" || t == "\"\"" || t == "''" {
            out.push(t.clone());
        } else {
            out.extend(t.chars().map(|c| c.to_string()));
        }
    }
    out
}

/// The generator's vocabulary: constructs both scanners support. Multi-line
/// entries exercise nested block comments spanning lines.
const SNIPPETS: [&str; 16] = [
    "let alpha = beta_1(gamma);",
    "// a comment mentioning Instant::now() and HashMap",
    "let s = \"string with // comment and \\\"escape\\\" inside\";",
    "/* inline block */ let x = 2;",
    "let r = r\"raw string with \\ backslash\";",
    "let r2 = r#\"raw \"quoted\" body\"#;",
    "match x { 'a' => y, _ => z }",
    "fn f<'a>(x: &'a str) -> &'a str { x }",
    "let c = '\\n'; let d = 'x';",
    "let n = 42.5 + alpha::beta();",
    "} else {",
    "    sim.wait_until(deadline); // tail comment",
    "/* multi\nline /* nested */ comment */",
    "",
    "   \t  ",
    "let q = vec!['q'; 3];",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On the shared input domain, per-line tokens and comment-only flags
    /// from the new lexer match the old stripper exactly.
    #[test]
    fn lexer_matches_old_stripper(
        picks in proptest::collection::vec(0usize..SNIPPETS.len(), 1..24),
    ) {
        let source: String = picks
            .iter()
            .map(|&i| SNIPPETS[i])
            .collect::<Vec<_>>()
            .join("\n");

        let old = old_strip(&source);
        let lexed = simcheck::lexer::lex(&source);

        // Group the new lexer's flat stream back into per-line streams.
        let n_lines = source.lines().count();
        let mut new_lines: Vec<Vec<String>> = vec![Vec::new(); n_lines];
        for tok in &lexed.tokens {
            let idx = tok.line as usize - 1;
            prop_assert!(idx < n_lines, "token on line {} of {}", tok.line, n_lines);
            new_lines[idx].push(tok.text.clone());
        }

        prop_assert_eq!(old.len(), n_lines);
        for (i, old_line) in old.iter().enumerate() {
            prop_assert_eq!(
                &explode(&old_line.tokens),
                &explode(&new_lines[i]),
                "line {} of:\n{}",
                i + 1,
                source
            );
            prop_assert_eq!(
                old_line.comment_only,
                lexed.comment_only(i + 1),
                "comment_only divergence on line {} of:\n{}",
                i + 1,
                source
            );
        }
    }
}
