//! Acceptance tests for the harness worker-pool carve-out: the bench sweep
//! pool's `// simcheck: allow(thread-spawn)` is scoped and justified, and an
//! *unjustified* spawn inside the deterministic sim crates still gets
//! flagged at deny tier.

use std::path::PathBuf;

use simcheck::{scan_source, Rule};

/// A spawn with no allow comment, as it would appear inside a sim crate.
const UNJUSTIFIED: &str = r#"
pub fn run_parallel(n: usize) {
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| {});
        }
    });
}
"#;

#[test]
fn unjustified_spawn_in_a_sim_crate_is_flagged() {
    let findings = scan_source("crates/des/src/pool.rs", UNJUSTIFIED);
    assert!(
        findings.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "deny-tier scan must flag a bare thread spawn: {findings:?}"
    );
}

#[test]
fn allow_comment_must_name_the_thread_spawn_rule() {
    // An allow for a *different* rule does not excuse the spawn.
    let src = UNJUSTIFIED.replace(
        "std::thread::scope(|scope| {",
        "// simcheck: allow(wall-clock)\n    std::thread::scope(|scope| {",
    );
    let findings = scan_source("crates/des/src/pool.rs", &src);
    assert!(
        findings.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "allow(wall-clock) must not suppress thread-spawn: {findings:?}"
    );
}

#[test]
fn scoped_allow_suppresses_only_the_annotated_spawn() {
    let src = r#"
pub fn pool(n: usize) {
    // Host-side parallelism over whole single-threaded sims.
    // simcheck: allow(thread-spawn)
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| {});
        }
    });
}

pub fn rogue() {
    std::thread::spawn(|| {});
}
"#;
    let findings = scan_source("crates/des/src/pool.rs", src);
    let spawns: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ThreadSpawn)
        .collect();
    assert!(
        !spawns.is_empty(),
        "the un-annotated spawn in rogue() must still fire"
    );
    assert!(
        spawns.iter().all(|f| f.line > 10),
        "the annotated scope must be suppressed, rogue() flagged: {spawns:?}"
    );
}

#[test]
fn the_real_sweep_pool_passes_deny_tier() {
    // The shipped pool carries a justified allow; even under the *strictest*
    // tier it must scan clean of thread-spawn findings.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../bench/src/sweep.rs");
    let src = std::fs::read_to_string(&path).expect("read crates/bench/src/sweep.rs");
    assert!(
        src.contains("// simcheck: allow(thread-spawn)"),
        "sweep.rs must justify its spawn with a scoped allow"
    );
    let findings = scan_source("crates/bench/src/sweep.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule != Rule::ThreadSpawn),
        "justified pool spawn must not fire: {findings:?}"
    );
}
