//! End-to-end checks of the simcheck analyzer and binary over the fixture
//! corpus in `tests/fixtures/`: one positive+negative file per rule family,
//! a fully suppressed file, a clean file, and the two-file `taint/` pair
//! whose hazard is invisible to per-file token rules.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use simcheck::{analyze_sources, scan_source, Rule, Severity, SourceSpec};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).unwrap()
}

/// Scans one fixture in isolation (deny tier) and returns the rules fired.
fn rules_in(name: &str) -> Vec<Rule> {
    scan_source(&format!("crates/x/src/{name}"), &read(name))
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn wall_clock_fixture_fires() {
    let rules = rules_in("wall_clock.rs");
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| *r == Rule::WallClock), "{rules:?}");
}

#[test]
fn os_entropy_fixture_fires() {
    let rules = rules_in("os_entropy.rs");
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| *r == Rule::OsEntropy), "{rules:?}");
}

#[test]
fn thread_spawn_fixture_fires() {
    let rules = rules_in("thread_spawn.rs");
    assert!(rules.len() >= 2);
    assert!(rules.iter().all(|r| *r == Rule::ThreadSpawn), "{rules:?}");
}

#[test]
fn unordered_map_fixture_fires() {
    let rules = rules_in("unordered_map.rs");
    assert!(rules.len() >= 3, "{rules:?}"); // import + two signatures
    assert!(rules.iter().all(|r| *r == Rule::UnorderedMap), "{rules:?}");
}

#[test]
fn yield_borrow_fixture_fires_only_on_positives() {
    let rules = rules_in("yield_borrow.rs");
    // guard across .await, temporary across .await, guard across sim wait —
    // and none of the three negative shapes below them.
    assert_eq!(rules, vec![Rule::YieldBorrow; 3], "{rules:?}");
}

#[test]
fn float_ord_fixture_fires_only_on_positives() {
    let rules = rules_in("float_ord.rs");
    // multi-line sort_by, max_by, BinaryHeap<f64>, BTreeSet<(u64, f32)> —
    // and neither total_cmp, float map *values*, nor the PartialOrd impl.
    assert_eq!(rules, vec![Rule::FloatOrd; 4], "{rules:?}");
}

#[test]
fn match_leak_fixture_fires_only_on_positives() {
    let rules = rules_in("match_leak.rs");
    // match arm, if-let, matches! — construction stays clean.
    assert_eq!(rules, vec![Rule::MatchLeak; 3], "{rules:?}");
}

#[test]
fn stale_allow_fixture_fires_only_on_dead_directives() {
    let findings = scan_source("crates/x/src/stale_allow.rs", &read("stale_allow.rs"));
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(findings.len(), 2, "{msgs:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::StaleAllow));
    assert!(
        msgs.iter().any(|m| m.contains("suppresses nothing")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("unknown rule")), "{msgs:?}");
}

#[test]
fn suppressed_fixture_is_silent_including_stale_allow() {
    // Every directive suppresses a real finding, so neither the original
    // rules nor stale-allow fire — and suppressed sources don't taint.
    assert!(rules_in("suppressed.rs").is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    assert!(rules_in("clean.rs").is_empty());
}

/// The PR's acceptance fixture: a wall-clock read reached only through two
/// helper layers in another file. Token rules alone must NOT flag the call
/// site; the call-graph taint pass must, with the full chain attached.
#[test]
fn taint_crosses_files_where_token_rules_see_nothing() {
    let caller = read("taint/caller.rs");
    // Legacy-style per-file scan of the caller alone: provably blind.
    assert!(
        scan_source("crates/x/src/caller.rs", &caller).is_empty(),
        "token rules alone must not flag caller.rs"
    );

    // Whole-corpus analysis: the call site is flagged with the chain.
    let analysis = analyze_sources(vec![
        SourceSpec {
            path: "crates/x/src/caller.rs".into(),
            tier: Severity::Deny,
            source: caller,
        },
        SourceSpec {
            path: "crates/x/src/helpers.rs".into(),
            tier: Severity::Deny,
            source: read("taint/helpers.rs"),
        },
    ]);
    let call_site = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("caller.rs"))
        .expect("taint must reach the caller file");
    assert_eq!(call_site.rule, Rule::WallClock);
    assert!(
        call_site.message.contains("current_millis"),
        "{}",
        call_site.message
    );
    // Full chain: call site -> current_millis -> raw_clock -> Instant::now.
    assert_eq!(call_site.chain.len(), 3, "{:#?}", call_site.chain);
    assert!(
        call_site.chain[1].contains("raw_clock"),
        "{:?}",
        call_site.chain
    );
    assert!(
        call_site.chain[2].contains("Instant"),
        "{:?}",
        call_site.chain
    );

    // The intermediate wrapper is flagged too, one hop shorter.
    let mid = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("helpers.rs") && !f.chain.is_empty())
        .expect("wrapper call site flagged");
    assert_eq!(mid.chain.len(), 2, "{:#?}", mid.chain);
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg(fixture("wall_clock.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wall-clock"), "{stdout}");
    assert!(stdout.contains("deny"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg(fixture("clean.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn binary_json_mode_emits_report_with_rule_metadata() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg("--json")
        .arg(fixture("os_entropy.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"schema\":\"simcheck/2\""), "{stdout}");
    assert!(stdout.contains("\"rule\":\"os-entropy\""), "{stdout}");
    assert!(stdout.contains("\"fingerprint\":\"f-"), "{stdout}");
    // Every rule's metadata rides along for report consumers.
    for rule in Rule::ALL {
        assert!(
            stdout.contains(&format!("\"id\":\"{}\"", rule.name())),
            "{stdout}"
        );
    }
}

#[test]
fn binary_explain_describes_rules() {
    for rule in Rule::ALL {
        let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
            .args(["--explain", rule.name()])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{}", rule.name());
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(rule.name()), "{stdout}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .args(["--explain", "no-such-rule"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn baseline_roundtrip_gates_and_ungates() {
    let dir = std::env::temp_dir().join(format!("simcheck-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("base.json");

    // Without a baseline the fixture fails the gate; ratchet it...
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg("--update-baseline")
        .arg(&baseline)
        .arg(fixture("wall_clock.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // ...and the same scan against the written baseline passes.
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture("wall_clock.rs"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{:?}",
        String::from_utf8(out.stdout)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("baselined finding(s) hidden"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repo_baseline_file_is_empty() {
    // The CI baseline must stay empty: the workspace carries no
    // grandfathered findings, and new deny findings fail the gate outright.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .join("simcheck-baseline.json");
    let baseline = simcheck::load_baseline(&path).unwrap();
    assert!(baseline.is_empty(), "{baseline:?}");
}

#[test]
fn default_roots_of_the_workspace_are_clean() {
    // The acceptance bar for the whole PR: zero unsuppressed findings at
    // any tier across the workspace's tiered default roots.
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let analysis =
        simcheck::analyze(&simcheck::default_roots(&workspace), Some(&workspace)).unwrap();
    assert!(
        analysis.findings.is_empty(),
        "workspace has determinism hazards:\n{}",
        simcheck::render_text(&analysis.findings)
    );
    assert!(analysis.new_deny(&BTreeSet::new()).is_empty());
}
