//! End-to-end checks of the simcheck scanner and binary over the fixture
//! files in `tests/fixtures/` (one positive file per rule, one fully
//! suppressed file, one clean file).

use std::path::PathBuf;
use std::process::Command;

use simcheck::{scan_paths, scan_source, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules_in(name: &str) -> Vec<Rule> {
    let path = fixture(name);
    let src = std::fs::read_to_string(&path).unwrap();
    scan_source(&path.display().to_string(), &src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn wall_clock_fixture_fires() {
    let rules = rules_in("wall_clock.rs");
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| *r == Rule::WallClock), "{rules:?}");
}

#[test]
fn os_entropy_fixture_fires() {
    let rules = rules_in("os_entropy.rs");
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| *r == Rule::OsEntropy), "{rules:?}");
}

#[test]
fn thread_spawn_fixture_fires() {
    let rules = rules_in("thread_spawn.rs");
    // spawn, scope, and the nested scoped-spawn inside `thread::scope` —
    // at least the two `std::thread::` entry points must fire.
    assert!(rules.len() >= 2);
    assert!(rules.iter().all(|r| *r == Rule::ThreadSpawn), "{rules:?}");
}

#[test]
fn unordered_map_fixture_fires() {
    let rules = rules_in("unordered_map.rs");
    assert!(rules.len() >= 3, "{rules:?}"); // import + two signatures
    assert!(rules.iter().all(|r| *r == Rule::UnorderedMap), "{rules:?}");
}

#[test]
fn refcell_await_fixture_fires() {
    let rules = rules_in("refcell_await.rs");
    assert_eq!(rules, vec![Rule::RefcellAwait, Rule::RefcellAwait]);
}

#[test]
fn suppressed_fixture_is_silent() {
    assert!(rules_in("suppressed.rs").is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    assert!(rules_in("clean.rs").is_empty());
}

#[test]
fn scan_paths_walks_directories() {
    let findings = scan_paths(&[fixture("")]).unwrap();
    // Everything except the suppressed and clean fixtures contributes.
    assert!(findings.len() >= 8, "found {}", findings.len());
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg(fixture("wall_clock.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wall-clock"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg(fixture("clean.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn binary_json_mode_emits_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_simcheck"))
        .arg("--json")
        .arg(fixture("os_entropy.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"findings\":["), "{stdout}");
    assert!(stdout.contains("\"rule\":\"os-entropy\""), "{stdout}");
}

#[test]
fn default_roots_of_the_workspace_are_clean() {
    // The acceptance bar for the whole PR: the sim-visible crates carry no
    // unsuppressed determinism hazards.
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let roots: Vec<PathBuf> = simcheck::DEFAULT_ROOTS
        .iter()
        .map(|r| workspace.join(r))
        .collect();
    let findings = scan_paths(&roots).unwrap();
    assert!(
        findings.is_empty(),
        "workspace has determinism hazards:\n{}",
        simcheck::render_text(&findings)
    );
}
