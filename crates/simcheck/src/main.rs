//! CLI for the workspace determinism analyzer.
//!
//! ```text
//! cargo run -p simcheck                          # tiered default roots
//! cargo run -p simcheck -- --json                # machine-readable report
//! cargo run -p simcheck -- --baseline FILE       # hide grandfathered findings
//! cargo run -p simcheck -- --update-baseline F   # ratchet: write current set
//! cargo run -p simcheck -- --explain RULE        # what a rule means and why
//! cargo run -p simcheck -- path1 ...             # scan specific files/dirs
//! ```
//!
//! With no paths, scans the tiered default roots (sim-visible crate sources
//! at deny severity; host-side and test roots at warn). Explicit paths scan
//! at deny severity. Exit codes: `0` no deny findings outside the baseline,
//! `1` at least one new deny finding, `2` usage or I/O error.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simcheck::{Rule, Severity};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simcheck [--json] [--baseline FILE] [--update-baseline FILE] [PATH..]\n\
         \x20      simcheck --explain RULE\n\
         rules: {}",
        Rule::ALL
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => match argv.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--update-baseline" => match argv.next() {
                Some(f) => update_baseline = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--explain" => match argv.next() {
                Some(r) => explain = Some(r),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("simcheck: unknown flag {flag}");
                return usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if let Some(name) = explain {
        return match Rule::parse(&name) {
            Some(rule) => {
                print!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("simcheck: unknown rule `{name}`");
                usage()
            }
        };
    }

    // Resolve the workspace root relative to this crate's manifest so
    // `cargo run -p simcheck` works from any working directory. Display
    // paths (and so fingerprints) are workspace-relative.
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("simcheck crate lives two levels under the workspace root")
        .to_path_buf();

    let roots: Vec<(PathBuf, Severity)> = if paths.is_empty() {
        simcheck::default_roots(&workspace)
    } else {
        paths.into_iter().map(|p| (p, Severity::Deny)).collect()
    };
    if roots.is_empty() {
        eprintln!("simcheck: no scan roots found");
        return ExitCode::from(2);
    }

    let analysis = match simcheck::analyze(&roots, Some(&workspace)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simcheck: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline: BTreeSet<String> = match &baseline_path {
        Some(p) => match simcheck::load_baseline(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simcheck: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => BTreeSet::new(),
    };

    if let Some(p) = &update_baseline {
        if let Err(e) = std::fs::write(p, simcheck::render_baseline(&analysis)) {
            eprintln!("simcheck: cannot write baseline {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simcheck: wrote {} fingerprint(s) to {}",
            analysis.findings.len(),
            p.display()
        );
    }

    if json {
        print!("{}", simcheck::render_json(&analysis, &baseline));
    } else {
        let (baselined, fresh): (Vec<_>, Vec<_>) = analysis
            .findings
            .iter()
            .cloned()
            .partition(|f| baseline.contains(&f.fingerprint));
        print!("{}", simcheck::render_text(&fresh));
        if !baselined.is_empty() {
            println!(
                "simcheck: {} baselined finding(s) hidden (see {})",
                baselined.len(),
                baseline_path
                    .as_deref()
                    .unwrap_or(Path::new("baseline"))
                    .display()
            );
        }
    }

    if analysis.new_deny(&baseline).is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
