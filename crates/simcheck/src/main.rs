//! CLI for the workspace determinism lints.
//!
//! ```text
//! cargo run -p simcheck                # scan the sim-visible crates
//! cargo run -p simcheck -- --json      # machine-readable report
//! cargo run -p simcheck -- path1 ...   # scan specific files/dirs
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: simcheck [--json] [paths...]");
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("simcheck: unknown flag {flag}");
                std::process::exit(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        // Resolve the workspace root relative to this crate's manifest so
        // `cargo run -p simcheck` works from any working directory.
        let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("simcheck crate lives two levels under the workspace root")
            .to_path_buf();
        roots = simcheck::DEFAULT_ROOTS
            .iter()
            .map(|r| workspace.join(r))
            .collect();
    }
    let findings = match simcheck::scan_paths(&roots) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simcheck: {e}");
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", simcheck::render_json(&findings));
    } else {
        print!("{}", simcheck::render_text(&findings));
    }
    std::process::exit(if findings.is_empty() { 0 } else { 1 });
}
