//! Workspace symbol index: a name-resolution-lite pass over lexed files.
//!
//! For every scanned file the index records which crate it belongs to, its
//! `use` renames (`use std::time::Instant as Clock;` maps `Clock` back to
//! the full path), and every `fn` definition with its enclosing `impl` /
//! `trait` type and the token range of its body. The taint pass
//! ([`crate::taint`]) builds its call graph on top of this: calls resolve by
//! name — same `impl` first, then same file, then same crate, then a
//! workspace-unique match — which is deliberately "lite" (no type
//! inference) but catches the wrapper-function shapes that hide
//! nondeterminism sources from per-file token rules.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{lex, Lexed};
use crate::Severity;

/// One source file under analysis.
pub struct FileEntry {
    /// Display path (workspace-relative where possible, `/`-separated).
    pub path: String,
    /// Severity tier of the root this file came from.
    pub tier: Severity,
    /// Coarse crate key: `crates/<name>/...` → `<name>`, else the parent
    /// directory — files sharing a key are "same crate" for resolution.
    pub crate_key: String,
    /// Token stream, allow directives, and line classification.
    pub lexed: Lexed,
    /// Raw source lines for snippets.
    pub raw_lines: Vec<String>,
    /// `use` renames: visible name → full path segments.
    pub aliases: BTreeMap<String, Vec<String>>,
}

/// One `fn` definition with a body.
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (between the braces, exclusive).
    pub body: Range<usize>,
    /// 1-based line range covered by the body braces, inclusive.
    pub body_lines: (u32, u32),
}

impl FnDef {
    /// Display name: `Type::name` for methods, `name` for free functions.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The whole-workspace symbol index.
pub struct Workspace {
    /// All scanned files.
    pub files: Vec<FileEntry>,
    /// All function definitions, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Function name → indices into [`Workspace::fns`].
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the index from `(path, tier, source)` triples.
    pub fn build(sources: Vec<(String, Severity, String)>) -> Workspace {
        let mut files = Vec::new();
        let mut fns: Vec<FnDef> = Vec::new();
        for (path, tier, source) in sources {
            let lexed = lex(&source);
            let file_idx = files.len();
            let aliases = parse_uses(&lexed);
            parse_fns(&lexed, file_idx, &mut fns);
            files.push(FileEntry {
                crate_key: crate_key(&path),
                raw_lines: source.lines().map(str::to_string).collect(),
                path,
                tier,
                lexed,
                aliases,
            });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Workspace {
            files,
            fns,
            by_name,
        }
    }

    /// The innermost fn whose body covers the 1-based `line` of `file`.
    pub fn enclosing_fn(&self, file: usize, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body_lines.0 <= line && line <= f.body_lines.1)
            .min_by_key(|(_, f)| f.body_lines.1 - f.body_lines.0)
            .map(|(i, _)| i)
    }

    /// Resolves an identifier through the file's `use` renames: returns the
    /// full path segments when the name was imported, else `None`.
    pub fn resolve_alias<'a>(&'a self, file: usize, name: &str) -> Option<&'a [String]> {
        self.files[file].aliases.get(name).map(Vec::as_slice)
    }
}

/// Coarse crate key for a display path.
fn crate_key(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if let Some(pos) = parts.iter().position(|p| *p == "crates") {
        if let Some(name) = parts.get(pos + 1) {
            return (*name).to_string();
        }
    }
    match parts.len() {
        0 | 1 => "root".to_string(),
        n => parts[..n - 1].join("/"),
    }
}

/// Parses every `use` declaration in the token stream into rename entries.
fn parse_uses(lx: &Lexed) -> BTreeMap<String, Vec<String>> {
    let t = &lx.tokens;
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < t.len() {
        if t[i].text == "use" {
            let mut j = i + 1;
            let mut prefix: Vec<String> = Vec::new();
            parse_use_tree(t, &mut j, &mut prefix, &mut out);
            // Skip to the terminating `;` even if the tree parse bailed.
            while j < t.len() && t[j].text != ";" {
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Recursive-descent over one use-tree: `a::b`, `a::{b, c as d}`, `a::*`.
fn parse_use_tree(
    t: &[crate::lexer::Tok],
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let start_len = prefix.len();
    while let Some(tok) = t.get(*i) {
        match tok.text.as_str() {
            "{" => {
                *i += 1;
                loop {
                    parse_use_tree(t, i, prefix, out);
                    if t.get(*i).is_some_and(|x| x.text == ",") {
                        *i += 1;
                        continue;
                    }
                    break;
                }
                if t.get(*i).is_some_and(|x| x.text == "}") {
                    *i += 1;
                }
                break;
            }
            "*" => {
                *i += 1;
                break;
            }
            ";" | "," | "}" => break,
            seg => {
                prefix.push(seg.to_string());
                *i += 1;
                if t.get(*i).is_some_and(|x| x.text == "::") {
                    *i += 1;
                    continue;
                }
                if t.get(*i).is_some_and(|x| x.text == "as") {
                    if let Some(alias) = t.get(*i + 1) {
                        out.insert(alias.text.clone(), prefix.clone());
                        *i += 2;
                    }
                } else if seg != "self" {
                    out.insert(seg.to_string(), prefix.clone());
                } else if let Some(last) = prefix.iter().rev().nth(1) {
                    // `use a::b::self` — visible as `b`.
                    out.insert(last.clone(), prefix[..prefix.len() - 1].to_vec());
                }
                break;
            }
        }
    }
    prefix.truncate(start_len);
}

/// Finds every fn definition (with a body) and its impl/trait context.
fn parse_fns(lx: &Lexed, file: usize, out: &mut Vec<FnDef>) {
    let t = &lx.tokens;
    let mut depth: i32 = 0;
    // (type name, brace depth the block opened at)
    let mut ctx: Vec<(String, i32)> = Vec::new();
    let mut pending_ctx: Option<String> = None;
    for i in 0..t.len() {
        match t[i].text.as_str() {
            "{" => {
                depth += 1;
                if let Some(name) = pending_ctx.take() {
                    ctx.push((name, depth));
                }
            }
            "}" => {
                ctx.retain(|(_, d)| *d < depth);
                depth -= 1;
            }
            ";" => {
                // `impl Trait for Type;` never parses; a pending context at
                // a `;` was a false positive (e.g. `-> impl Trait;`).
                pending_ctx = None;
            }
            "impl" | "trait" if is_item_position(t, i) => {
                pending_ctx = impl_type_name(t, i);
            }
            "fn" => {
                let Some(name_tok) = t.get(i + 1) else {
                    continue;
                };
                let name = &name_tok.text;
                if !name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    continue; // `fn(` pointer type
                }
                if let Some((open, close)) = fn_body_span(t, i + 2) {
                    out.push(FnDef {
                        name: name.clone(),
                        impl_type: ctx.last().map(|(n, _)| n.clone()),
                        file,
                        line: t[i].line,
                        body: (open + 1)..close,
                        body_lines: (t[open].line, t[close].line),
                    });
                }
            }
            _ => {}
        }
    }
}

/// True when the `impl`/`trait` token at `i` opens an item (not `-> impl
/// Trait` / `&impl` / generic-bound positions).
fn is_item_position(t: &[crate::lexer::Tok], i: usize) -> bool {
    matches!(
        i.checked_sub(1)
            .and_then(|j| t.get(j))
            .map(|x| x.text.as_str()),
        None | Some(";" | "}" | "{" | "]" | "unsafe" | "pub" | ")")
    )
}

/// Extracts the type name an `impl`/`trait` block attaches to: the last path
/// segment of the type after `for` (trait impls) or of the first path
/// (inherent impls / traits), skipping leading generics.
fn impl_type_name(t: &[crate::lexer::Tok], impl_idx: usize) -> Option<String> {
    let mut i = impl_idx + 1;
    // Skip `<...>` generic parameters right after the keyword.
    if t.get(i).is_some_and(|x| x.text == "<") {
        let mut angle = 0i32;
        while i < t.len() {
            match t[i].text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Collect tokens up to the opening brace, splitting on `for`.
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    let mut angle = 0i32;
    while i < t.len() {
        match t[i].text.as_str() {
            "{" | ";" | "=>" if angle == 0 => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => saw_for = true,
            tok if angle == 0 => {
                if saw_for {
                    after_for.push(tok);
                } else {
                    before_for.push(tok);
                }
            }
            _ => {}
        }
        i += 1;
    }
    let path = if saw_for { after_for } else { before_for };
    // Last identifier of the leading path: `a::b::C` → `C`.
    path.iter()
        .take_while(|s| **s == "::" || is_ident(s))
        .filter(|s| is_ident(s))
        .last()
        .map(|s| s.to_string())
}

/// True for identifier-shaped tokens.
fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// From the token after the fn name, finds the body's brace span (token
/// indices of `{` and its matching `}`). Returns `None` for bodyless
/// declarations.
fn fn_body_span(t: &[crate::lexer::Tok], mut i: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    while i < t.len() {
        match t[i].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => {
                let open = i;
                let mut brace = 1i32;
                i += 1;
                while i < t.len() {
                    match t[i].text.as_str() {
                        "{" => brace += 1,
                        "}" => {
                            brace -= 1;
                            if brace == 0 {
                                return Some((open, i));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            ";" if paren == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(src: &str) -> Workspace {
        Workspace::build(vec![(
            "crates/x/src/a.rs".into(),
            Severity::Deny,
            src.into(),
        )])
    }

    #[test]
    fn use_renames_and_groups() {
        let ws = ws_of(
            "use std::time::Instant as Clock;\n\
             use std::collections::{BTreeMap, HashMap as Map};\n\
             use crate::util::helper;\n",
        );
        let f = &ws.files[0];
        assert_eq!(f.aliases["Clock"], ["std", "time", "Instant"]);
        assert_eq!(f.aliases["Map"], ["std", "collections", "HashMap"]);
        assert_eq!(f.aliases["BTreeMap"], ["std", "collections", "BTreeMap"]);
        assert_eq!(f.aliases["helper"], ["crate", "util", "helper"]);
    }

    #[test]
    fn fn_defs_free_and_methods() {
        let ws = ws_of(
            "fn free(x: u32) -> u32 { x + 1 }\n\
             struct S;\n\
             impl S {\n    fn method(&self) { free(2); }\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n\
             trait T {\n    fn provided(&self) {}\n    fn required(&self);\n}\n",
        );
        let names: Vec<String> = ws.fns.iter().map(FnDef::display).collect();
        assert_eq!(names, ["free", "S::method", "S::fmt", "T::provided"]);
    }

    #[test]
    fn return_position_impl_is_not_a_context() {
        let ws = ws_of(
            "fn make() -> impl Iterator<Item = u32> {\n    std::iter::empty()\n}\n\
             fn after() {}\n",
        );
        let names: Vec<String> = ws.fns.iter().map(FnDef::display).collect();
        assert_eq!(names, ["make", "after"]);
        assert!(ws.fns.iter().all(|f| f.impl_type.is_none()));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let ws = ws_of("fn outer() {\n    fn inner() {\n        work();\n    }\n    inner();\n}\n");
        let inner = ws.enclosing_fn(0, 3).unwrap();
        assert_eq!(ws.fns[inner].name, "inner");
        let outer = ws.enclosing_fn(0, 5).unwrap();
        assert_eq!(ws.fns[outer].name, "outer");
    }

    #[test]
    fn crate_keys_group_files() {
        assert_eq!(crate_key("crates/des/src/executor.rs"), "des");
        assert_eq!(crate_key("crates/core/src/reduce/vanilla.rs"), "core");
        assert_eq!(crate_key("tests/determinism.rs"), "tests");
        assert_eq!(crate_key("a.rs"), "root");
    }
}
