//! `float-ord`: float comparisons feeding an ordering.
//!
//! `f64::partial_cmp` returns `None` for NaN, and the ubiquitous
//! `partial_cmp(..).unwrap_or(Equal)` patch makes the sort order depend on
//! the *input order* of the data the moment a NaN (or a -0.0/0.0 pair under
//! later key changes) appears. When such a sort feeds the event schedule or
//! jsonl/trace output, replay breaks silently. Two shapes are flagged:
//!
//! 1. a sort-family call (`sort_by`, `sort_unstable_by`, `max_by`,
//!    `min_by`, `binary_search_by`) whose comparator mentions
//!    `partial_cmp`;
//! 2. a float type parameter (`f32`/`f64`) inside an ordered container's
//!    generics (`BinaryHeap<..>`, `BTreeMap<..>`, `BTreeSet<..>`).
//!
//! Defining `fn partial_cmp` (a `PartialOrd` impl that delegates to a total
//! `cmp`) is *not* flagged — only uses inside comparator closures are.

use crate::index::Workspace;
use crate::rules::{RawFinding, Rule};

/// Sort-family methods whose comparator closure is inspected.
const SORT_FAMILY: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Ordered containers whose key types are inspected.
const ORDERED_CONTAINERS: [&str; 3] = ["BinaryHeap", "BTreeMap", "BTreeSet"];

/// Scans one indexed file; appends raw findings.
pub fn scan(ws: &Workspace, file: usize, out: &mut Vec<RawFinding>) {
    let t = &ws.files[file].lexed.tokens;
    for i in 0..t.len() {
        let tok = t[i].text.as_str();
        if SORT_FAMILY.contains(&tok) && t.get(i + 1).is_some_and(|x| x.text == "(") {
            // Walk the call's parentheses looking for `partial_cmp`.
            let mut depth = 0i32;
            for j in i + 1..t.len() {
                match t[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "partial_cmp" => {
                        out.push(RawFinding::new(
                            file,
                            t[i].line,
                            Rule::FloatOrd,
                            format!("`{tok}` comparator uses `partial_cmp` (NaN-unordered)"),
                        ));
                        break;
                    }
                    _ => {}
                }
            }
        }
        if ORDERED_CONTAINERS.contains(&tok) && t.get(i + 1).is_some_and(|x| x.text == "<") {
            // Walk the *key* type's generics looking for a float: for
            // `BTreeMap<K, V>` only K orders the container, so stop at the
            // first top-level comma; heap/set key types span all arguments.
            let key_only = tok == "BTreeMap";
            let mut depth = 0i32;
            for j in i + 1..t.len() {
                match t[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "," if key_only && depth == 1 => break,
                    ";" | "{" => break, // bailed out of a non-generic `<`
                    "f64" | "f32" => {
                        out.push(RawFinding::new(
                            file,
                            t[i].line,
                            Rule::FloatOrd,
                            format!("float key inside `{tok}<..>` ordering"),
                        ));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn rules_of(src: &str) -> Vec<Rule> {
        let ws = Workspace::build(vec![(
            "crates/x/src/t.rs".into(),
            Severity::Deny,
            src.into(),
        )]);
        let mut out = Vec::new();
        scan(&ws, 0, &mut out);
        out.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn sort_by_partial_cmp_flags_even_multiline() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(|a, b| {\n\
                       a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)\n\
                   });\n\
                   }\n";
        assert_eq!(rules_of(src), vec![Rule::FloatOrd]);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        assert!(rules_of("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(rules_of("v.sort_by_key(|a| a.len());").is_empty());
    }

    #[test]
    fn float_container_keys_flag() {
        assert_eq!(
            rules_of("let h: BinaryHeap<f64> = BinaryHeap::new();"),
            vec![Rule::FloatOrd]
        );
        assert_eq!(
            rules_of("let s: BTreeSet<(u64, f32)> = BTreeSet::new();"),
            vec![Rule::FloatOrd]
        );
        assert!(rules_of("let h: BinaryHeap<Reverse<Item>> = BinaryHeap::new();").is_empty());
        // Float *values* don't order a BTreeMap — only keys do.
        assert!(rules_of("let m: BTreeMap<u64, Vec<f32>> = BTreeMap::new();").is_empty());
    }

    #[test]
    fn defining_partial_cmp_is_clean() {
        let src = "impl PartialOrd for Item {\n\
                   fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
                       Some(self.cmp(other))\n\
                   }\n\
                   }\n";
        assert!(rules_of(src).is_empty());
    }
}
