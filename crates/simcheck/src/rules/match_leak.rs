//! `match-leak`: `ShuffleKind` dispatch outside the construction seam.
//!
//! PR 3's invariant: shuffle designs are one-impl additions behind the
//! `ShuffleEngine` trait, and the only code allowed to branch on
//! `ShuffleKind` is the construction seam (`crates/core/src/config.rs`,
//! which builds the engine, and `crates/cluster/src/testbed.rs`, which maps
//! the paper's testbed presets onto kinds). A `match`/`matches!`/`if let`
//! on `ShuffleKind` anywhere else re-opens per-design special cases and
//! every new engine would have to chase them. Constructing a kind
//! (`ShuffleKind::OsuIb` as a value) is fine anywhere.

use crate::index::Workspace;
use crate::rules::{RawFinding, Rule};

/// Path suffixes of the files allowed to branch on `ShuffleKind`.
const SEAM_FILES: [&str; 2] = ["core/src/config.rs", "cluster/src/testbed.rs"];

/// Scans one indexed file; appends raw findings.
pub fn scan(ws: &Workspace, file: usize, out: &mut Vec<RawFinding>) {
    let path = ws.files[file].path.replace('\\', "/");
    if SEAM_FILES.iter().any(|s| path.ends_with(s)) {
        return;
    }
    let t = &ws.files[file].lexed.tokens;
    for i in 0..t.len() {
        if t[i].text != "ShuffleKind" {
            continue;
        }
        // `ShuffleKind::Variant =>` — a match arm.
        let is_arm = t.get(i + 1).is_some_and(|x| x.text == "::")
            && t.get(i + 3).is_some_and(|x| x.text == "=>");
        // `if/while let ShuffleKind::Variant = ..` — a refutable pattern.
        let is_let_pattern = t.get(i + 1).is_some_and(|x| x.text == "::")
            && t.get(i + 3).is_some_and(|x| x.text == "=")
            && t[i.saturating_sub(3)..i].iter().any(|x| x.text == "let");
        // `matches!(.., ShuffleKind::..)` — look back for the macro open.
        let in_matches = t[i.saturating_sub(8)..i]
            .windows(2)
            .any(|w| w[0].text == "matches" && w[1].text == "!");
        if is_arm || is_let_pattern || in_matches {
            let shape = if is_arm {
                "matched"
            } else if is_let_pattern {
                "pattern-matched via `let`"
            } else {
                "tested via `matches!`"
            };
            out.push(RawFinding::new(
                file,
                t[i].line,
                Rule::MatchLeak,
                format!("`ShuffleKind` {shape} outside the construction seam"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn rules_at(path: &str, src: &str) -> Vec<Rule> {
        let ws = Workspace::build(vec![(path.into(), Severity::Deny, src.into())]);
        let mut out = Vec::new();
        scan(&ws, 0, &mut out);
        out.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn match_arm_outside_seam_flags() {
        let src = "fn f(k: ShuffleKind) -> u32 {\n\
                   match k {\n\
                   ShuffleKind::Vanilla => 0,\n\
                   _ => 1,\n\
                   }\n}\n";
        assert_eq!(
            rules_at("crates/core/src/runtime.rs", src),
            vec![Rule::MatchLeak]
        );
    }

    #[test]
    fn seam_files_may_match() {
        let src = "match k { ShuffleKind::Vanilla => 0, _ => 1 }";
        assert!(rules_at("crates/core/src/config.rs", src).is_empty());
        assert!(rules_at("crates/cluster/src/testbed.rs", src).is_empty());
    }

    #[test]
    fn matches_macro_and_if_let_flag() {
        assert_eq!(
            rules_at(
                "crates/core/src/engine.rs",
                "if matches!(k, ShuffleKind::OsuIb) { x(); }"
            ),
            vec![Rule::MatchLeak]
        );
        assert_eq!(
            rules_at(
                "crates/core/src/engine.rs",
                "if let ShuffleKind::OsuIb = k { x(); }"
            ),
            vec![Rule::MatchLeak]
        );
    }

    #[test]
    fn construction_is_clean_anywhere() {
        let src = "let k = ShuffleKind::OsuIb;\nlet all = [ShuffleKind::Vanilla, ShuffleKind::HadoopA];\nassert_eq!(res.shuffle, ShuffleKind::OsuIb);\n";
        assert!(rules_at("tests/end_to_end.rs", src).is_empty());
    }
}
