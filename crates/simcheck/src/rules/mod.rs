//! Rule catalogue: identifiers, severity, rationale, and explain text.
//!
//! Detection lives in the sibling modules ([`tokens`], [`float_ord`],
//! [`yield_borrow`], [`match_leak`], [`stale_allow`]); this module is the
//! single place a rule's name, why-text, hazard example, and remediation
//! are defined, so reports and `simcheck --explain <rule>` never drift.

pub mod float_ord;
pub mod match_leak;
pub mod stale_allow;
pub mod tokens;
pub mod yield_borrow;

use std::fmt;

/// Severity tier of a finding (derived from the scanned root: sim-visible
/// crates are `Deny`, host-side crates and test code are `Warn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the scan.
    Warn,
    /// Fails the scan (exit code 1) unless baselined.
    Deny,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time reached from simulation code (directly or through
    /// the call graph).
    WallClock,
    /// OS entropy reached from simulation code (directly or through the
    /// call graph).
    OsEntropy,
    /// OS threads spawned from simulation code (directly or through the
    /// call graph).
    ThreadSpawn,
    /// Iteration-order-unstable containers in sim-visible modules.
    UnorderedMap,
    /// A `RefCell` borrow guard held across an `.await` or a sim yield
    /// point (`yield_now`, `sleep`, `wait*`, `recv`, ...).
    YieldBorrow,
    /// Float comparators (`partial_cmp`) or float keys feeding ordered
    /// containers / sorts.
    FloatOrd,
    /// A suppression directive that suppresses nothing, or names an
    /// unknown rule.
    StaleAllow,
    /// `ShuffleKind` matched outside the construction seam
    /// (`core/src/config.rs`, `cluster/src/testbed.rs`).
    MatchLeak,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::OsEntropy,
        Rule::ThreadSpawn,
        Rule::UnorderedMap,
        Rule::YieldBorrow,
        Rule::FloatOrd,
        Rule::StaleAllow,
        Rule::MatchLeak,
    ];

    /// The kebab-case name used in reports and `allow(..)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnorderedMap => "unordered-map",
            Rule::YieldBorrow => "yield-borrow",
            Rule::FloatOrd => "float-ord",
            Rule::StaleAllow => "stale-allow",
            Rule::MatchLeak => "match-leak",
        }
    }

    /// Parses a rule name as used in directives and `--explain`.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line summary for the report's rule table.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock time reached from simulation code",
            Rule::OsEntropy => "OS entropy reached from simulation code",
            Rule::ThreadSpawn => "OS threads spawned from simulation code",
            Rule::UnorderedMap => "iteration-order-unstable container in a sim-visible module",
            Rule::YieldBorrow => "RefCell guard held across an await/yield point",
            Rule::FloatOrd => "float ordering via partial_cmp or float container keys",
            Rule::StaleAllow => "suppression directive that suppresses nothing",
            Rule::MatchLeak => "ShuffleKind matched outside the construction seam",
        }
    }

    /// Why the construct is hazardous in this workspace.
    pub fn why(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock time varies run to run; use the virtual clock (sim.now())"
            }
            Rule::OsEntropy => {
                "OS entropy breaks seeded replay; use SmallRng::seed_from_u64 via the Sim"
            }
            Rule::ThreadSpawn => {
                "OS threads race the single-threaded executor; use sim.spawn_named(..)"
            }
            Rule::UnorderedMap => {
                "HashMap/HashSet iteration order is unstable; use BTreeMap/BTreeSet"
            }
            Rule::YieldBorrow => {
                "a RefCell guard held across a yield panics when another task borrows"
            }
            Rule::FloatOrd => {
                "partial_cmp on NaN is None and unwrap_or(Equal) makes order input-dependent; \
                 use total_cmp or integer keys"
            }
            Rule::StaleAllow => {
                "a suppression that suppresses nothing hides future hazards; delete it"
            }
            Rule::MatchLeak => {
                "engine dispatch must stay behind ShuffleEngine so new designs are one-impl \
                 additions; only config.rs/testbed.rs may match ShuffleKind"
            }
        }
    }

    /// A minimal hazardous example, for `--explain`.
    pub fn hazard_example(self) -> &'static str {
        match self {
            Rule::WallClock => "let t0 = std::time::Instant::now();  // differs every run",
            Rule::OsEntropy => "let mut rng = rand::thread_rng();    // unseeded",
            Rule::ThreadSpawn => "std::thread::spawn(move || tick()); // races the executor",
            Rule::UnorderedMap => {
                "for (k, v) in map { schedule(k, v) } // HashMap: order varies per process"
            }
            Rule::YieldBorrow => {
                "let st = state.borrow_mut();\nqueue.recv().await; // another task panics on borrow"
            }
            Rule::FloatOrd => {
                "runs.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Equal)); \
                 // NaN => order depends on input order"
            }
            Rule::StaleAllow => {
                "// simcheck: allow(unordered-map)   <- nothing on the next line fires"
            }
            Rule::MatchLeak => {
                "match conf.shuffle { ShuffleKind::OsuIb => special_case(), .. } \
                 // bypasses the ShuffleEngine trait"
            }
        }
    }

    /// How to fix a finding, for `--explain`.
    pub fn remedy(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "read sim.now() inside simulations; host-side timers (benches, ETA displays) \
                 take an inline justification: // simcheck: allow(wall-clock) <reason>"
            }
            Rule::OsEntropy => "thread all randomness from the Sim's seeded SmallRng",
            Rule::ThreadSpawn => {
                "use sim.spawn_named/spawn_daemon inside sims; host-side parallelism over whole \
                 sims is justified with an inline allow"
            }
            Rule::UnorderedMap => "switch to BTreeMap/BTreeSet, or justify why order never leaks",
            Rule::YieldBorrow => "drop or scope the guard before the yield point",
            Rule::FloatOrd => {
                "use f64::total_cmp, or sort on integer keys; justify provably host-only sorts"
            }
            Rule::StaleAllow => "delete the directive (or fix its rule name)",
            Rule::MatchLeak => {
                "move the dispatch onto the ShuffleEngine trait (or into the construction seam)"
            }
        }
    }

    /// Full explain text for `simcheck --explain <rule>`.
    pub fn explain(self) -> String {
        format!(
            "rule: {}\n  {}\n\nwhy\n  {}\n\nhazard\n  {}\n\nfix\n  {}\n",
            self.name(),
            self.summary(),
            self.why(),
            self.hazard_example().replace('\n', "\n  "),
            self.remedy(),
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A rule hit before suppression/severity assignment.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// File index into the workspace.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Specifics of what matched.
    pub message: String,
    /// Call chain (taint findings only).
    pub chain: Vec<String>,
}

impl RawFinding {
    /// Chain-less finding.
    pub fn new(file: usize, line: u32, rule: Rule, message: String) -> Self {
        RawFinding {
            file,
            line,
            rule,
            message,
            chain: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
        assert_eq!(Rule::parse("refcell-await"), None);
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn explain_text_is_complete() {
        for r in Rule::ALL {
            let e = r.explain();
            assert!(e.contains(r.name()));
            assert!(e.contains("why"), "{e}");
            assert!(e.contains("fix"), "{e}");
        }
    }
}
