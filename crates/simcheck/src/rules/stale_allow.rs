//! `stale-allow`: suppression directives that no longer suppress anything.
//!
//! Every inline `allow` is a debt note: "this hazard is justified, here's
//! why". When the hazardous line is later refactored away, the directive
//! survives as a blanket pre-approval for whatever lands on that line next.
//! This rule fires on any directive that (a) names a rule simcheck does not
//! know, or (b) suppressed zero findings in this scan — so the allow corpus
//! can only shrink to match reality, never rot.
//!
//! The orchestrator feeds this pass the set of directives that were
//! actually used while filtering findings; everything else is stale.

use std::collections::BTreeSet;

use crate::index::Workspace;
use crate::rules::{RawFinding, Rule};

/// A directive's identity: (file index, 1-based line, rule name).
pub type DirectiveKey = (usize, u32, String);

/// Scans every directive in the workspace against the `used` set.
pub fn scan(ws: &Workspace, used: &BTreeSet<DirectiveKey>, out: &mut Vec<RawFinding>) {
    for (fi, entry) in ws.files.iter().enumerate() {
        for a in &entry.lexed.allows {
            match Rule::parse(&a.rule) {
                None => out.push(RawFinding::new(
                    fi,
                    a.line,
                    Rule::StaleAllow,
                    format!("allow names unknown rule `{}`", a.rule),
                )),
                Some(_) => {
                    if !used.contains(&(fi, a.line, a.rule.clone())) {
                        out.push(RawFinding::new(
                            fi,
                            a.line,
                            Rule::StaleAllow,
                            format!("allow(`{}`) suppresses nothing", a.rule),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn unused_and_unknown_directives_flag() {
        let src = "// simcheck: allow(wall-clock)\n\
                   let x = 1;\n\
                   // simcheck: allow(wall_clock)\n\
                   let y = 2;\n";
        let ws = Workspace::build(vec![(
            "crates/x/src/t.rs".into(),
            Severity::Deny,
            src.into(),
        )]);
        let mut out = Vec::new();
        scan(&ws, &BTreeSet::new(), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("suppresses nothing"));
        assert!(out[1].message.contains("unknown rule"));
    }

    #[test]
    fn used_directives_are_silent() {
        let src = "let t = 1; // simcheck: allow(wall-clock)\n";
        let ws = Workspace::build(vec![(
            "crates/x/src/t.rs".into(),
            Severity::Deny,
            src.into(),
        )]);
        let mut used = BTreeSet::new();
        used.insert((0usize, 1u32, "wall-clock".to_string()));
        let mut out = Vec::new();
        scan(&ws, &used, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
