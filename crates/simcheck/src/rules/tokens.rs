//! The four direct token rules: wall-clock, os-entropy, thread-spawn, and
//! unordered-map. These fire where the hazardous construct is *written*;
//! the taint pass ([`crate::taint`]) extends the first three through the
//! call graph. All four see through `use` renames: importing
//! `std::time::Instant as Clock` does not launder a clock read.

use crate::index::Workspace;
use crate::rules::{RawFinding, Rule};

/// Scans one indexed file; appends raw findings.
pub fn scan(ws: &Workspace, file: usize, out: &mut Vec<RawFinding>) {
    let entry = &ws.files[file];
    let t = &entry.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| t[j].text.as_str());
        let prev2 = i
            .checked_sub(2)
            .map(|j| (t[j].text.as_str(), t[i - 1].text.as_str()));
        let next2 = (
            t.get(i + 1).map(|x| x.text.as_str()),
            t.get(i + 2).map(|x| x.text.as_str()),
        );
        // Method names (`x.spawn()`) never resolve through `use` renames;
        // neither does the binder in `use path::X as Y` (the path's own
        // tokens already flag that line once).
        let effective: &str = if prev == Some(".") || prev == Some("as") {
            tok.text.as_str()
        } else {
            ws.resolve_alias(file, &tok.text)
                .and_then(|p| p.last())
                .map(String::as_str)
                .unwrap_or(tok.text.as_str())
        };
        let mut emit = |rule: Rule, message: String| {
            out.push(RawFinding::new(file, tok.line, rule, message));
        };
        match effective {
            "Instant" | "SystemTime" => {
                let in_std_time = prev2 == Some(("time", "::"));
                let called_now = next2 == (Some("::"), Some("now"));
                let via_alias = effective != tok.text
                    && ws
                        .resolve_alias(file, &tok.text)
                        .is_some_and(|p| p.iter().any(|s| s == "time"));
                if in_std_time || called_now || via_alias {
                    emit(
                        Rule::WallClock,
                        format!("`{}` reads the OS clock", tok.text),
                    );
                }
            }
            "thread_rng" | "OsRng" | "from_entropy" => {
                emit(Rule::OsEntropy, format!("`{}` draws OS entropy", tok.text));
            }
            "spawn" | "scope" | "Builder" if prev2 == Some(("thread", "::")) => {
                emit(
                    Rule::ThreadSpawn,
                    format!("`thread::{}` starts an OS thread", tok.text),
                );
            }
            "HashMap" | "HashSet" => {
                emit(
                    Rule::UnorderedMap,
                    format!("`{}` has unstable iteration order", tok.text),
                );
            }
            _ => {}
        }
        // `std::thread::{spawn,scope,Builder}` imported (possibly renamed)
        // and used bare — the qualified-path arm above can't see it.
        if matches!(effective, "spawn" | "scope" | "Builder")
            && prev2 != Some(("thread", "::"))
            && prev != Some(".")
            && prev != Some("as")
        {
            if let Some(path) = ws.resolve_alias(file, &tok.text) {
                if path.iter().any(|s| s == "thread") {
                    out.push(RawFinding::new(
                        file,
                        tok.line,
                        Rule::ThreadSpawn,
                        format!("`{}` starts an OS thread (std::thread import)", tok.text),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn rules_of(src: &str) -> Vec<Rule> {
        let ws = Workspace::build(vec![(
            "crates/x/src/t.rs".into(),
            Severity::Deny,
            src.into(),
        )]);
        let mut out = Vec::new();
        scan(&ws, 0, &mut out);
        out.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_flags_now_and_paths() {
        assert_eq!(rules_of("let t = Instant::now();"), vec![Rule::WallClock]);
        assert_eq!(
            rules_of("use std::time::SystemTime;"),
            vec![Rule::WallClock]
        );
        // A sim-local type named SimInstant must not trip the rule.
        assert!(rules_of("let t: SimInstant = sim.now();").is_empty());
    }

    #[test]
    fn wall_clock_sees_through_use_renames() {
        let src = "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }\n";
        let got = rules_of(src);
        // The import line and the aliased call site both fire.
        assert_eq!(got, vec![Rule::WallClock, Rule::WallClock]);
    }

    #[test]
    fn os_entropy_and_thread_spawn_flag() {
        assert_eq!(
            rules_of("let mut r = rand::thread_rng();"),
            vec![Rule::OsEntropy]
        );
        assert_eq!(
            rules_of("std::thread::spawn(move || work());"),
            vec![Rule::ThreadSpawn]
        );
        assert!(rules_of("sim.spawn(async move {});").is_empty());
    }

    #[test]
    fn renamed_thread_spawn_flags() {
        let src = "use std::thread::spawn as go;\nfn f() { go(|| {}); }\n";
        let got = rules_of(src);
        assert!(got.contains(&Rule::ThreadSpawn), "{got:?}");
    }

    #[test]
    fn method_named_spawn_is_not_resolved_through_uses() {
        let src = "use std::thread::spawn;\nfn f(sim: &Sim) { sim.spawn(async {}); }\n";
        // The import itself flags; the `sim.spawn` method call must not.
        let got = rules_of(src);
        assert_eq!(got, vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn unordered_map_flags_types_not_strings() {
        assert_eq!(
            rules_of("let m: HashMap<u32, u32> = HashMap::new();"),
            vec![Rule::UnorderedMap, Rule::UnorderedMap]
        );
        assert!(rules_of("println!(\"HashMap is unordered\");").is_empty());
        assert!(rules_of("// HashMap would be wrong here").is_empty());
    }
}
