//! `yield-borrow`: RefCell borrow guards held across yield points.
//!
//! Generalizes the old `refcell-await` rule. In this workspace a task can
//! lose control not only at `.await` but at any of the DES's yield-shaped
//! calls (`yield_now`, `sleep`, `wait*`, `recv`, `notified`, `acquire`) —
//! including the hand-rolled poll loops that call them without a literal
//! `.await` on the same line. A `RefCell` guard that is live across such a
//! point panics the moment another task touches the same cell, and the
//! panic timing depends on the schedule.
//!
//! Heuristic (brace-depth, per-line over the lexed token stream): a `let`
//! whose initializer *ends* in `borrow()` / `borrow_mut()` opens a guard;
//! the guard closes at its block's `}`, at `drop(name)`, or at end of file.
//! Any yield point while a guard is open fires. A temporary
//! (`x.borrow_mut().send(v).await`) fires on its own line.

use crate::index::Workspace;
use crate::lexer::Tok;
use crate::rules::{RawFinding, Rule};

/// Method/function names that can yield control to another task.
const YIELD_CALLS: [&str; 8] = [
    "yield_now",
    "sleep",
    "sleep_until",
    "wait",
    "wait_for",
    "wait_until",
    "recv",
    "notified",
];

/// A live `let`-bound borrow guard.
struct OpenBorrow {
    name: String,
    depth: i32,
    line: u32,
    mutable_borrow: bool,
}

/// Scans one indexed file; appends raw findings.
pub fn scan(ws: &Workspace, file: usize, out: &mut Vec<RawFinding>) {
    let lexed = &ws.files[file].lexed;
    // Group tokens by line, preserving order.
    let mut lines: Vec<Vec<&Tok>> = vec![Vec::new(); lexed.n_lines];
    for tok in &lexed.tokens {
        let idx = tok.line as usize - 1;
        if idx < lines.len() {
            lines[idx].push(tok);
        }
    }

    let mut depth: i32 = 0;
    let mut open_borrows: Vec<OpenBorrow> = Vec::new();
    for (idx, line_toks) in lines.iter().enumerate() {
        let lineno = (idx + 1) as u32;
        let t: Vec<&str> = line_toks.iter().map(|x| x.text.as_str()).collect();

        // (a) `let [mut] NAME = ... borrow[_mut]();` → NAME is a live guard
        //     (anything chained after the call makes it a dropped temporary).
        let mut is_guard_binding = false;
        if t.first() == Some(&"let") {
            let mut j = 1;
            if t.get(j) == Some(&"mut") {
                j += 1;
            }
            if let Some(name) = t.get(j) {
                if let Some(bpos) = t.iter().rposition(|x| *x == "borrow" || *x == "borrow_mut") {
                    let after = &t[bpos + 1..];
                    if matches!(after, ["(", ")", ";"] | ["(", ")"]) {
                        open_borrows.push(OpenBorrow {
                            name: (*name).to_string(),
                            depth,
                            line: lineno,
                            mutable_borrow: t[bpos] == "borrow_mut",
                        });
                        is_guard_binding = true;
                    }
                }
            }
        }

        // (b) a temporary guard and a yield point in the same statement.
        if !is_guard_binding {
            if let Some(bpos) = t.iter().position(|x| *x == "borrow" || *x == "borrow_mut") {
                if let Some(what) = yield_point(&t[bpos..]) {
                    out.push(RawFinding::new(
                        file,
                        lineno,
                        Rule::YieldBorrow,
                        format!("`{}()` temporary is live across `{}`", t[bpos], what),
                    ));
                }
            }
        }

        // (c) a yield point while a let-bound guard is in scope (skip the
        //     binding line itself: the guard opens after its initializer).
        if !is_guard_binding {
            if let Some(what) = yield_point(&t) {
                for b in &open_borrows {
                    let call = if b.mutable_borrow {
                        "borrow_mut"
                    } else {
                        "borrow"
                    };
                    out.push(RawFinding::new(
                        file,
                        lineno,
                        Rule::YieldBorrow,
                        format!(
                            "guard `{}` ({}() on line {}) is held across `{}`",
                            b.name, call, b.line, what
                        ),
                    ));
                }
            }
        }

        // (d) scope/drop bookkeeping.
        for tok in &t {
            match *tok {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    open_borrows.retain(|b| b.depth <= depth);
                }
                _ => {}
            }
        }
        for w in t.windows(3) {
            if w[0] == "drop" && w[1] == "(" {
                open_borrows.retain(|b| b.name != w[2]);
            }
        }
    }
}

/// Returns what made this token slice a yield point, if anything: a
/// `.await`, or a call to one of the DES yield-shaped names.
fn yield_point(t: &[&str]) -> Option<String> {
    if t.windows(2).any(|w| w[0] == "." && w[1] == "await") {
        return Some(".await".to_string());
    }
    for w in t.windows(2) {
        if YIELD_CALLS.contains(&w[0]) && w[1] == "(" {
            return Some(format!("{}(..)", w[0]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn rules_of(src: &str) -> Vec<Rule> {
        let ws = Workspace::build(vec![(
            "crates/x/src/t.rs".into(),
            Severity::Deny,
            src.into(),
        )]);
        let mut out = Vec::new();
        scan(&ws, 0, &mut out);
        out.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn guard_across_await_flags() {
        let src = "async fn f(x: &RefCell<u32>) {\n\
                   let g = x.borrow_mut();\n\
                   tick().await;\n\
                   }\n";
        assert_eq!(rules_of(src), vec![Rule::YieldBorrow]);
    }

    #[test]
    fn guard_across_sim_wait_flags_without_await() {
        let src = "fn poll_step(&self, sim: &Sim) {\n\
                   let st = self.state.borrow_mut();\n\
                   sim.wait_until(st.deadline);\n\
                   }\n";
        assert_eq!(rules_of(src), vec![Rule::YieldBorrow]);
    }

    #[test]
    fn guard_dropped_or_scoped_before_yield_is_clean() {
        let src = "async fn f(x: &RefCell<u32>) {\n\
                   let g = x.borrow_mut();\n\
                   drop(g);\n\
                   tick().await;\n\
                   }\n";
        assert!(rules_of(src).is_empty());
        let scoped = "async fn f(x: &RefCell<u32>) {\n\
                      {\n let g = x.borrow_mut();\n }\n\
                      tick().await;\n\
                      }\n";
        assert!(rules_of(scoped).is_empty());
    }

    #[test]
    fn temporary_copy_is_clean() {
        let src = "async fn f(x: &RefCell<Vec<u32>>) {\n\
                   let v = x.borrow().clone();\n\
                   tick().await;\n\
                   }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn same_statement_temporary_flags() {
        assert_eq!(
            rules_of("ch.borrow_mut().send(v).await;"),
            vec![Rule::YieldBorrow]
        );
        assert_eq!(rules_of("q.borrow_mut().recv();"), vec![Rule::YieldBorrow]);
    }

    #[test]
    fn yield_calls_without_guard_are_clean() {
        assert!(rules_of("sim.wait_until(t);\nrx.recv().await;\n").is_empty());
    }
}
