//! A dependency-free, multi-line-aware Rust lexer.
//!
//! The old simcheck stripped comments and strings *per line*, which meant a
//! raw string spanning lines, a nested block comment, or a multi-line string
//! literal could desynchronise the scanner and hide (or invent) hazards.
//! This lexer walks the whole file once and produces a flat token stream
//! where every token knows its 1-based source line:
//!
//! * line comments (`//`) and nested block comments (`/* /* */ */`) are
//!   dropped, but `simcheck: allow(...)` directives in *line* comments are
//!   harvested with their line number;
//! * string literals (`"..."`, `b"..."`), raw strings with any number of
//!   `#`s (`r#"..."#`, `br##"..."##`), and char/byte-char literals collapse
//!   to a single `""` / `''` placeholder token so their contents can never
//!   match a rule;
//! * lifetimes (`'a`, `'static`) are consumed silently — the old scanner's
//!   char-vs-lifetime confusion is handled by looking for a closing quote;
//! * raw identifiers (`r#match`) lex as their identifier text;
//! * `::`, `->`, and `=>` are single tokens (rules match on them), all other
//!   punctuation is one token per character.

/// One lexed token: its text and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text (identifier, `::`, single punctuation char, or a `""` /
    /// `''` literal placeholder).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A `// simcheck: allow(<rule>)` directive found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive sits on.
    pub line: u32,
    /// The rule name inside the parentheses (not yet validated).
    pub rule: String,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Tok>,
    /// Every suppression directive, in source order.
    pub allows: Vec<AllowDirective>,
    /// `code_lines[i]` is true when 0-based line `i` carries at least one
    /// token (i.e. it is not blank/comment-only).
    pub code_lines: Vec<bool>,
    /// Total number of source lines.
    pub n_lines: usize,
}

impl Lexed {
    /// True when the 1-based `line` holds no code (blank or comment-only).
    pub fn comment_only(&self, line: usize) -> bool {
        line >= 1 && !self.code_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// True when an `allow(rule)` directive sits on the 1-based `line`.
    pub fn allowed_on(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.line as usize == line && a.rule == rule)
    }

    /// Suppression check for a finding of `rule` on the 1-based `line`: a
    /// directive on the line itself, or alone on the comment-only line above.
    pub fn suppressed(&self, line: usize, rule: &str) -> Option<usize> {
        if self.allowed_on(line, rule) {
            return Some(line);
        }
        if line >= 2 && self.comment_only(line - 1) && self.allowed_on(line - 1, rule) {
            return Some(line - 1);
        }
        None
    }
}

/// Lexes a whole source file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n_lines = source.lines().count().max(1);
    let mut lx = Lexed {
        tokens: Vec::new(),
        allows: Vec::new(),
        code_lines: vec![false; n_lines],
        n_lines,
    };
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut word = String::new();
    let mut word_line: u32 = 1;

    macro_rules! flush_word {
        () => {
            if !word.is_empty() {
                mark_code(&mut lx, word_line);
                lx.tokens.push(Tok {
                    text: std::mem::take(&mut word),
                    line: word_line,
                });
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Identifier/number characters accumulate into one word token.
        if c.is_alphanumeric() || c == '_' {
            // Prefixed literal forms that *start* like identifiers.
            if word.is_empty() {
                if let Some(skip) = try_raw_or_byte_literal(&chars, i, &mut line, &mut lx) {
                    i = skip;
                    continue;
                }
            }
            if word.is_empty() {
                word_line = line;
            }
            word.push(c);
            i += 1;
            continue;
        }
        flush_word!();

        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                // Line comment: harvest directives, consume to end of line.
                let mut j = i;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                harvest_allows(&text, line, &mut lx.allows);
                i = j;
            }
            '/' if next == Some('*') => {
                // Nested block comment, possibly spanning lines.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    match (chars[i], chars.get(i + 1).copied()) {
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => {
                push_placeholder(&mut lx, line, "\"\"");
                i = consume_string(&chars, i + 1, &mut line);
            }
            '\'' => {
                // Char literal ('x', '\n') vs lifetime ('a, 'static): a char
                // literal closes with a quote; a lifetime never does.
                let is_char = next == Some('\\')
                    || (chars.get(i + 2) == Some(&'\'') && next != Some('\''))
                    || next == Some('\'');
                if is_char {
                    push_placeholder(&mut lx, line, "''");
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            ':' if next == Some(':') => {
                push_placeholder(&mut lx, line, "::");
                i += 2;
            }
            '-' if next == Some('>') => {
                push_placeholder(&mut lx, line, "->");
                i += 2;
            }
            '=' if next == Some('>') => {
                push_placeholder(&mut lx, line, "=>");
                i += 2;
            }
            c => {
                push_placeholder(&mut lx, line, &c.to_string());
                i += 1;
            }
        }
    }
    flush_word!();
    lx
}

/// Marks the 1-based `line` as carrying code.
fn mark_code(lx: &mut Lexed, line: u32) {
    let idx = line as usize - 1;
    if idx >= lx.code_lines.len() {
        lx.code_lines.resize(idx + 1, false);
        lx.n_lines = idx + 1;
    }
    lx.code_lines[idx] = true;
}

/// Pushes a non-word token at `line`.
fn push_placeholder(lx: &mut Lexed, line: u32, text: &str) {
    mark_code(lx, line);
    lx.tokens.push(Tok {
        text: text.to_string(),
        line,
    });
}

/// Handles the literal forms that start with an identifier character:
/// `r"..."`, `r#"..."#` (any `#` count), `b"..."`, `b'..'`, `br#"..."#`,
/// and raw identifiers `r#ident`. Returns the index to resume at when one
/// was consumed.
fn try_raw_or_byte_literal(
    chars: &[char],
    i: usize,
    line: &mut u32,
    lx: &mut Lexed,
) -> Option<usize> {
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    // b'x' byte char.
    if c == 'b' && next == Some('\'') {
        push_placeholder(lx, *line, "''");
        let mut j = i + 2;
        if chars.get(j) == Some(&'\\') {
            j += 2;
        }
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        return Some(j + 1);
    }
    // b"..." byte string.
    if c == 'b' && next == Some('"') {
        push_placeholder(lx, *line, "\"\"");
        return Some(consume_string(chars, i + 2, line));
    }
    // r..., br... raw strings; r#ident raw identifiers.
    let raw_start = match (c, next) {
        ('r', _) => i + 1,
        ('b', Some('r')) => i + 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    while chars.get(raw_start + hashes) == Some(&'#') {
        hashes += 1;
    }
    match chars.get(raw_start + hashes) {
        Some('"') => {
            // Raw string: scan for `"` followed by `hashes` hashes.
            push_placeholder(lx, *line, "\"\"");
            let mut j = raw_start + hashes + 1;
            while j < chars.len() {
                if chars[j] == '\n' {
                    *line += 1;
                    j += 1;
                } else if chars[j] == '"'
                    && chars[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|c| **c == '#')
                        .count()
                        == hashes
                {
                    return Some(j + 1 + hashes);
                } else {
                    j += 1;
                }
            }
            Some(j)
        }
        Some(ch) if c == 'r' && hashes == 1 && (ch.is_alphabetic() || *ch == '_') => {
            // Raw identifier r#ident: lex as the plain identifier.
            let mut j = raw_start + 1;
            let start = j;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            push_placeholder(lx, *line, &text);
            Some(j)
        }
        _ => None,
    }
}

/// Consumes a (possibly multi-line) string body starting after the opening
/// quote; returns the index after the closing quote.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // An escaped character still counts newlines: `\` before a
                // line break is the line-continuation escape, and skipping
                // it blind would desynchronise every later token's line.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Extracts `simcheck: allow(<rule>)` directives from a line-comment's text.
/// Only kebab-case rule names are treated as directives; placeholders like
/// `allow(<rule>)` in prose are ignored, while typo'd names are kept so the
/// stale-allow rule can report them.
fn harvest_allows(text: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let mut rest = text;
    while let Some(pos) = rest.find("simcheck: allow(") {
        let after = &rest[pos + "simcheck: allow(".len()..];
        let Some(end) = after.find(')') else { break };
        for rule in after[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty()
                && rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
            {
                out.push(AllowDirective {
                    line,
                    rule: rule.to_string(),
                });
            }
        }
        rest = &after[end..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn words_puncts_and_paths() {
        assert_eq!(
            texts("let t = std::time::Instant::now();"),
            ["let", "t", "=", "std", "::", "time", "::", "Instant", "::", "now", "(", ")", ";"]
        );
        assert_eq!(texts("a -> b => c"), ["a", "->", "b", "=>", "c"]);
    }

    #[test]
    fn strings_collapse_even_across_lines() {
        assert_eq!(
            texts("let s = \"Instant::now()\";"),
            ["let", "s", "=", "\"\"", ";"]
        );
        let multi = "let s = \"line one\nInstant::now()\nline three\";\nlet t = 1;";
        let lx = lex(multi);
        // The string is one placeholder; `let t` lands on line 4.
        assert!(lx.tokens.iter().all(|t| t.text != "Instant"));
        let t_tok = lx.tokens.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t_tok.line, 4);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        assert_eq!(
            texts(r####"let s = r#"Instant::now()"#;"####),
            ["let", "s", "=", "\"\"", ";"]
        );
        assert_eq!(
            texts("let s = r##\"quote \"# inside\"##;"),
            ["let", "s", "=", "\"\"", ";"]
        );
        let multi = "let s = r#\"a\nHashMap\nb\"#; let x = 2;";
        assert!(lex(multi).tokens.iter().all(|t| t.text != "HashMap"));
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        assert_eq!(texts("let b = b\"OsRng\";"), ["let", "b", "=", "\"\"", ";"]);
        assert_eq!(texts("let c = b'x';"), ["let", "c", "=", "''", ";"]);
        assert_eq!(texts("let r#match = 1;"), ["let", "match", "=", "1", ";"]);
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a /* one /* two\nthread_rng() */ still */ b";
        assert_eq!(texts(src), ["a", "b"]);
        let lx = lex(src);
        assert_eq!(lx.tokens[1].line, 2);
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(texts("let c = 'x';"), ["let", "c", "=", "''", ";"]);
        assert_eq!(texts("let c = '\\n';"), ["let", "c", "=", "''", ";"]);
        assert_eq!(
            texts("fn f<'a>(x: &'a str) {}"),
            ["fn", "f", "<", ">", "(", "x", ":", "&", "str", ")", "{", "}"]
        );
        assert_eq!(texts("let q = '\\'';"), ["let", "q", "=", "''", ";"]);
    }

    #[test]
    fn allow_directives_are_harvested_with_lines() {
        let src = "let a = 1; // simcheck: allow(wall-clock)\n\
                   // simcheck: allow(float-ord, unordered-map)\n\
                   let b = 2;\n";
        let lx = lex(src);
        let got: Vec<(u32, &str)> = lx
            .allows
            .iter()
            .map(|a| (a.line, a.rule.as_str()))
            .collect();
        assert_eq!(
            got,
            [(1, "wall-clock"), (2, "float-ord"), (2, "unordered-map")]
        );
        assert!(lx.comment_only(2));
        assert!(!lx.comment_only(3));
    }

    #[test]
    fn placeholder_directives_in_prose_are_ignored() {
        let lx = lex("// suppress with simcheck: allow(<rule>) on the line\n");
        assert!(lx.allows.is_empty());
        // ...but a typo'd concrete name is kept for stale-allow to report.
        let lx = lex("// simcheck: allow(wall_clock)\n");
        assert_eq!(lx.allows.len(), 1);
    }

    #[test]
    fn directives_inside_strings_are_not_harvested() {
        let lx = lex("let s = \"// simcheck: allow(wall-clock)\";\n");
        assert!(lx.allows.is_empty());
    }

    #[test]
    fn line_continuation_escapes_count_lines() {
        // `\` before a newline inside a string is the continuation escape;
        // the newline must still advance the line counter.
        let src = "let s = \"a \\\n   b \\\n   c\";\nlet after = 1;\n";
        let lx = lex(src);
        let after = lx.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }
}
