//! Call-graph taint propagation for nondeterminism sources.
//!
//! Per-file token rules catch `Instant::now()` where it is written — but not
//! a helper that wraps it. This pass closes that hole: every *unsuppressed*
//! wall-clock / os-entropy / thread-spawn finding seeds taint on its
//! enclosing function, taint propagates backwards over the call graph to a
//! fixed point, and each call site into a tainted function becomes a finding
//! that carries the full call chain down to the concrete source line.
//!
//! Call resolution is name-resolution-lite (see [`crate::index`]):
//!
//! * `self.helper(..)` / `Self::helper(..)` → methods of the enclosing
//!   `impl` type;
//! * `Type::helper(..)` → methods of any indexed `impl Type`;
//! * `helper(..)` (bare or `use`-imported) → free functions, same file
//!   first, then same crate, then a workspace-unique match;
//! * `x.helper(..)` → only when exactly one indexed method has that name
//!   (no type inference — ambiguous names are skipped, not guessed).
//!
//! Suppressed sources do not seed taint: an `allow(wall-clock)` on a
//! justified host-side timer keeps its callers clean too.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::Workspace;
use crate::rules::Rule;

/// One resolved call edge.
pub struct CallEdge {
    /// Caller fn (index into [`Workspace::fns`]).
    pub caller: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Callee fn (index into [`Workspace::fns`]).
    pub callee: usize,
    /// What the call site looked like (e.g. `helper` or `Store::read`).
    pub display: String,
}

/// Why a function is tainted.
enum Origin {
    /// The fn body contains the hazard itself.
    Direct { line: u32, what: String },
    /// The fn calls a tainted fn.
    Via { line: u32, callee: usize },
}

/// A taint finding at a call site.
pub struct TaintFinding {
    /// File index of the call site.
    pub file: usize,
    /// 1-based call-site line.
    pub line: u32,
    /// The propagated rule (wall-clock / os-entropy / thread-spawn).
    pub rule: Rule,
    /// Human message naming the callee and the ultimate source.
    pub message: String,
    /// Full call chain: call site → intermediate calls → concrete source.
    pub chain: Vec<String>,
}

/// Extracts every resolvable call edge in the workspace.
pub fn call_edges(ws: &Workspace) -> Vec<CallEdge> {
    let mut edges = Vec::new();
    for (caller_idx, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        let t = &file.lexed.tokens;
        for i in f.body.clone() {
            // Identifier followed by `(` — a call or a definition head.
            if !is_ident(&t[i].text) || t.get(i + 1).map(|x| x.text.as_str()) != Some("(") {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| t[j].text.as_str());
            if prev == Some("fn") {
                continue; // nested definition
            }
            let name = t[i].text.as_str();
            let line = t[i].line;
            let (candidates, display) = match prev {
                Some(".") => {
                    let recv = i.checked_sub(2).map(|j| t[j].text.as_str());
                    resolve_method(ws, f.impl_type.as_deref(), recv, name)
                }
                Some("::") => {
                    let qual = i.checked_sub(2).map(|j| t[j].text.as_str());
                    resolve_qualified(ws, f.file, f.impl_type.as_deref(), qual, name)
                }
                _ => (resolve_bare(ws, f.file, name), name.to_string()),
            };
            for callee in candidates {
                if callee != caller_idx {
                    edges.push(CallEdge {
                        caller: caller_idx,
                        line,
                        callee,
                        display: display.clone(),
                    });
                }
            }
        }
    }
    edges
}

/// `x.name(..)` — resolve `self.name` within the impl type, otherwise only
/// a workspace-unique method name.
fn resolve_method(
    ws: &Workspace,
    impl_type: Option<&str>,
    recv: Option<&str>,
    name: &str,
) -> (Vec<usize>, String) {
    let all = ws.by_name.get(name).cloned().unwrap_or_default();
    if recv == Some("self") {
        if let Some(ty) = impl_type {
            let same: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].impl_type.as_deref() == Some(ty))
                .collect();
            if !same.is_empty() {
                return (same, format!("{ty}::{name}"));
            }
        }
        return (Vec::new(), name.to_string());
    }
    let methods: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].impl_type.is_some())
        .collect();
    if methods.len() == 1 {
        let d = ws.fns[methods[0]].display();
        (methods, d)
    } else {
        (Vec::new(), name.to_string())
    }
}

/// `Qual::name(..)` — resolve through `Self`, `use` renames, and impl types.
fn resolve_qualified(
    ws: &Workspace,
    file: usize,
    impl_type: Option<&str>,
    qual: Option<&str>,
    name: &str,
) -> (Vec<usize>, String) {
    let all = ws.by_name.get(name).cloned().unwrap_or_default();
    let Some(mut qual) = qual else {
        return (Vec::new(), name.to_string());
    };
    if qual == "Self" {
        qual = impl_type.unwrap_or("Self");
    }
    // A renamed import: `use a::Store as S; S::read()` → qualify by `Store`.
    let resolved = ws
        .resolve_alias(file, qual)
        .and_then(|p| p.last())
        .map(String::as_str)
        .unwrap_or(qual);
    let typed: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].impl_type.as_deref() == Some(resolved))
        .collect();
    if !typed.is_empty() {
        return (typed, format!("{resolved}::{name}"));
    }
    // `module::helper()` — fall back to free fns in the same crate.
    let crate_key = &ws.files[file].crate_key;
    let free: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| {
            ws.fns[i].impl_type.is_none() && &ws.files[ws.fns[i].file].crate_key == crate_key
        })
        .collect();
    (free, format!("{qual}::{name}"))
}

/// Bare `name(..)` — same file, then same crate, then workspace-unique.
fn resolve_bare(ws: &Workspace, file: usize, name: &str) -> Vec<usize> {
    let all = ws.by_name.get(name).cloned().unwrap_or_default();
    let free: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].impl_type.is_none())
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].file == file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let crate_key = &ws.files[file].crate_key;
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&i| &ws.files[ws.fns[i].file].crate_key == crate_key)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if free.len() == 1 {
        return free;
    }
    Vec::new()
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Propagates taint from `seeds` — `(file, line, rule, description)` of the
/// unsuppressed direct findings — and returns one finding per call site
/// that reaches a tainted function.
pub fn propagate(
    ws: &Workspace,
    edges: &[CallEdge],
    seeds: &[(usize, u32, Rule, String)],
) -> Vec<TaintFinding> {
    // fn → taint origin, per rule.
    let mut taint: BTreeMap<(usize, Rule), Origin> = BTreeMap::new();
    let mut work: Vec<(usize, Rule)> = Vec::new();
    for (file, line, rule, what) in seeds {
        if let Some(f) = ws.enclosing_fn(*file, *line) {
            taint.entry((f, *rule)).or_insert_with(|| {
                work.push((f, *rule));
                Origin::Direct {
                    line: *line,
                    what: what.clone(),
                }
            });
        }
    }
    // Reverse adjacency: callee → incoming edge indices.
    let mut into: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        into.entry(e.callee).or_default().push(i);
    }
    while let Some((f, rule)) = work.pop() {
        for &ei in into.get(&f).into_iter().flatten() {
            let e = &edges[ei];
            taint.entry((e.caller, rule)).or_insert_with(|| {
                work.push((e.caller, rule));
                Origin::Via {
                    line: e.line,
                    callee: e.callee,
                }
            });
        }
    }
    // Emit one finding per (call site → tainted callee) pair.
    let mut seen: BTreeSet<(usize, u32, Rule, usize)> = BTreeSet::new();
    let mut out = Vec::new();
    for e in edges {
        for rule in [Rule::WallClock, Rule::OsEntropy, Rule::ThreadSpawn] {
            if !taint.contains_key(&(e.callee, rule)) {
                continue;
            }
            let caller_file = ws.fns[e.caller].file;
            if !seen.insert((caller_file, e.line, rule, e.callee)) {
                continue;
            }
            let (chain, source) = build_chain(ws, &taint, e, rule);
            out.push(TaintFinding {
                file: caller_file,
                line: e.line,
                rule,
                message: format!(
                    "call to `{}` reaches {} ({} hop{})",
                    e.display,
                    source,
                    chain.len() - 1,
                    if chain.len() == 2 { "" } else { "s" },
                ),
                chain,
            });
        }
    }
    out
}

/// Builds the printable call chain from a call edge down to the concrete
/// source, returning `(chain lines, source description)`.
fn build_chain(
    ws: &Workspace,
    taint: &BTreeMap<(usize, Rule), Origin>,
    edge: &CallEdge,
    rule: Rule,
) -> (Vec<String>, String) {
    let loc = |f: usize, line: u32| format!("{}:{}", ws.files[ws.fns[f].file].path, line);
    let mut chain = vec![format!(
        "{}: calls `{}`",
        loc(edge.caller, edge.line),
        ws.fns[edge.callee].display()
    )];
    let mut cur = edge.callee;
    let mut source = String::new();
    // Origin pointers are set exactly once per fn, so this walk terminates
    // even on cyclic call graphs.
    for _ in 0..64 {
        match taint.get(&(cur, rule)) {
            Some(Origin::Via { line, callee }) => {
                chain.push(format!(
                    "{}: calls `{}`",
                    loc(cur, *line),
                    ws.fns[*callee].display()
                ));
                cur = *callee;
            }
            Some(Origin::Direct { line, what }) => {
                chain.push(format!("{}: {}", loc(cur, *line), what));
                source = what.clone();
                break;
            }
            None => break,
        }
    }
    (chain, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), Severity::Deny, s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn two_layer_wrapper_chain_is_reported() {
        let ws = ws_of(&[
            (
                "crates/x/src/helpers.rs",
                "pub fn stamp() -> u64 {\n    let t = Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n\
                 pub fn mid() -> u64 {\n    stamp()\n}\n",
            ),
            (
                "crates/x/src/caller.rs",
                "pub fn sim_visible() -> u64 {\n    mid()\n}\n",
            ),
        ]);
        let edges = call_edges(&ws);
        let seeds = vec![(
            0usize,
            2u32,
            Rule::WallClock,
            "`Instant` reads the OS clock".to_string(),
        )];
        let findings = propagate(&ws, &edges, &seeds);
        let top = findings
            .iter()
            .find(|f| ws.files[f.file].path.ends_with("caller.rs"))
            .expect("caller.rs call site flagged");
        assert_eq!(top.rule, Rule::WallClock);
        assert_eq!(top.line, 2);
        assert_eq!(top.chain.len(), 3, "{:?}", top.chain);
        assert!(top.chain[2].contains("OS clock"), "{:?}", top.chain);
    }

    #[test]
    fn method_chains_resolve_through_self() {
        let ws = ws_of(&[(
            "crates/x/src/s.rs",
            "struct S;\n\
             impl S {\n\
                 fn now_ms(&self) -> u64 { Instant::now().elapsed().as_millis() as u64 }\n\
                 fn tick(&self) -> u64 { self.now_ms() }\n\
             }\n",
        )]);
        let edges = call_edges(&ws);
        let seeds = vec![(0usize, 3u32, Rule::WallClock, "clock".to_string())];
        let findings = propagate(&ws, &edges, &seeds);
        assert!(findings.iter().any(|f| f.line == 4), "tick() flagged");
    }

    #[test]
    fn suppressed_sources_do_not_seed() {
        let ws = ws_of(&[(
            "crates/x/src/a.rs",
            "fn justified() -> u64 { 0 }\nfn caller() -> u64 { justified() }\n",
        )]);
        let edges = call_edges(&ws);
        // No seeds at all (the direct finding was suppressed upstream).
        assert!(propagate(&ws, &edges, &[]).is_empty());
    }

    #[test]
    fn cycles_terminate() {
        let ws = ws_of(&[(
            "crates/x/src/a.rs",
            "fn a() { b(); let t = Instant::now(); }\nfn b() { a(); }\n",
        )]);
        let edges = call_edges(&ws);
        let seeds = vec![(0usize, 1u32, Rule::WallClock, "clock".to_string())];
        let findings = propagate(&ws, &edges, &seeds);
        assert!(!findings.is_empty());
    }
}
