//! Static determinism lints for the simulation workspace.
//!
//! The DES promises bit-identical replays from a seed. That promise is easy
//! to break from anywhere in the tree: one `Instant::now()` in a hot path,
//! one `HashMap` iteration feeding task scheduling, one OS thread racing the
//! virtual clock. `simcheck` walks the sim-visible crates token-by-token
//! (line-oriented scanner, no parser dependencies — the build container is
//! offline) and reports constructs that let wall-clock time, OS entropy, or
//! unordered iteration leak into simulation results:
//!
//! | rule            | flags                                              |
//! |-----------------|----------------------------------------------------|
//! | `wall-clock`    | `std::time::Instant` / `SystemTime` (incl. `::now`)|
//! | `os-entropy`    | `thread_rng`, `OsRng`, `from_entropy`              |
//! | `thread-spawn`  | `thread::spawn` / `thread::scope` / `thread::Builder` |
//! | `unordered-map` | `HashMap` / `HashSet` in sim-visible modules       |
//! | `refcell-await` | `RefCell` borrow guards held across an `.await`    |
//!
//! A finding on line N is suppressed by `// simcheck: allow(<rule>)` either
//! on line N itself or alone on line N-1. Suppressions are per-line and
//! per-rule on purpose: a blanket opt-out would rot.
//!
//! The scanner strips comments and string/char literals before matching, so
//! prose about `HashMap` never trips the lint; the `refcell-await` rule is a
//! brace-depth heuristic (a `let` whose initializer *ends* in `borrow()` /
//! `borrow_mut()` is treated as a live guard until its block closes, `drop`
//! of the binding, or end of scan).

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time reached from simulation code.
    WallClock,
    /// OS entropy reached from simulation code.
    OsEntropy,
    /// OS threads spawned from simulation code.
    ThreadSpawn,
    /// Iteration-order-unstable containers in sim-visible modules.
    UnorderedMap,
    /// `RefCell` borrow guard held across an `.await`.
    RefcellAwait,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::WallClock,
        Rule::OsEntropy,
        Rule::ThreadSpawn,
        Rule::UnorderedMap,
        Rule::RefcellAwait,
    ];

    /// The kebab-case name used in reports and `allow(..)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnorderedMap => "unordered-map",
            Rule::RefcellAwait => "refcell-await",
        }
    }

    /// Why the construct is hazardous in this workspace.
    pub fn why(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock time varies run to run; use the virtual clock (sim.now())"
            }
            Rule::OsEntropy => {
                "OS entropy breaks seeded replay; use SmallRng::seed_from_u64 via the Sim"
            }
            Rule::ThreadSpawn => {
                "OS threads race the single-threaded executor; use sim.spawn_named(..)"
            }
            Rule::UnorderedMap => {
                "HashMap/HashSet iteration order is unstable; use BTreeMap/BTreeSet"
            }
            Rule::RefcellAwait => {
                "a RefCell guard held across .await panics when another task borrows"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported hazard.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as given to the scanner.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Specifics (what matched, and where it started for multi-line rules).
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A source line after comment/string stripping.
struct ScannedLine {
    /// Identifier / punctuation tokens of the code portion.
    tokens: Vec<String>,
    /// Rules allowed by `// simcheck: allow(..)` in this line's comments.
    allows: Vec<String>,
    /// True when the line held no code at all (comment/blank only).
    comment_only: bool,
}

/// Splits source into per-line token streams, stripping comments and
/// string/char literals but harvesting `simcheck: allow(..)` directives.
fn scan_lines(source: &str) -> Vec<ScannedLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize; // nesting depth of /* */
    for raw in source.lines() {
        let mut tokens: Vec<String> = Vec::new();
        let mut allows = Vec::new();
        let mut ident = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let flush = |ident: &mut String, tokens: &mut Vec<String>| {
            if !ident.is_empty() {
                tokens.push(std::mem::take(ident));
            }
        };
        while i < bytes.len() {
            let c = bytes[i];
            if in_block_comment > 0 {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    in_block_comment -= 1;
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    in_block_comment += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    let comment: String = bytes[i..].iter().collect();
                    harvest_allows(&comment, &mut allows);
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    flush(&mut ident, &mut tokens);
                    in_block_comment += 1;
                    i += 2;
                }
                '"' => {
                    flush(&mut ident, &mut tokens);
                    tokens.push("\"\"".to_string());
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                'r' if bytes.get(i + 1) == Some(&'"') || bytes.get(i + 1) == Some(&'#') => {
                    // Raw string: r"..." or r#"..."# (single # level is
                    // enough for this workspace).
                    flush(&mut ident, &mut tokens);
                    let hashed = bytes.get(i + 1) == Some(&'#');
                    let close: &[char] = if hashed { &['"', '#'] } else { &['"'] };
                    i += if hashed { 3 } else { 2 };
                    while i < bytes.len() {
                        if bytes[i..].starts_with(close) {
                            i += close.len();
                            break;
                        }
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal ('x', '\n') vs lifetime ('a). A literal
                    // has a closing quote within a few chars.
                    let rest: String = bytes[i + 1..].iter().take(4).collect();
                    let is_char = rest.starts_with('\\')
                        || rest.chars().nth(1) == Some('\'')
                        || rest.starts_with('\'');
                    if is_char {
                        flush(&mut ident, &mut tokens);
                        i += 1;
                        if bytes.get(i) == Some(&'\\') {
                            i += 1;
                        }
                        while i < bytes.len() && bytes[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        // Lifetime: skip the quote, keep the identifier out
                        // of the token stream by consuming it here.
                        i += 1;
                        while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                            i += 1;
                        }
                    }
                }
                c if c.is_alphanumeric() || c == '_' => {
                    ident.push(c);
                    i += 1;
                }
                ':' if bytes.get(i + 1) == Some(&':') => {
                    flush(&mut ident, &mut tokens);
                    tokens.push("::".to_string());
                    i += 2;
                }
                c if c.is_whitespace() => {
                    flush(&mut ident, &mut tokens);
                    i += 1;
                }
                c => {
                    flush(&mut ident, &mut tokens);
                    tokens.push(c.to_string());
                    i += 1;
                }
            }
        }
        if !ident.is_empty() {
            tokens.push(ident);
        }
        let comment_only = tokens.is_empty();
        out.push(ScannedLine {
            tokens,
            allows,
            comment_only,
        });
    }
    out
}

/// Extracts rule names from `simcheck: allow(rule)` occurrences in `text`.
fn harvest_allows(text: &str, allows: &mut Vec<String>) {
    let mut rest = text;
    while let Some(pos) = rest.find("simcheck: allow(") {
        let after = &rest[pos + "simcheck: allow(".len()..];
        if let Some(end) = after.find(')') {
            for rule in after[..end].split(',') {
                allows.push(rule.trim().to_string());
            }
            rest = &after[end..];
        } else {
            break;
        }
    }
}

/// A `let` binding whose initializer ended in `borrow()` / `borrow_mut()`.
struct OpenBorrow {
    name: String,
    depth: i32,
    line: usize,
    mutable_borrow: bool,
}

/// Scans one file's source and returns its findings (suppressions applied).
pub fn scan_source(file: &str, source: &str) -> Vec<Finding> {
    let lines = scan_lines(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut depth: i32 = 0;
    let mut open_borrows: Vec<OpenBorrow> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let t = &line.tokens;
        let mut emit = |rule: Rule, message: String| {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule,
                message,
                snippet: raw_lines.get(idx).map_or("", |s| s.trim()).to_string(),
            });
        };

        // --- single-line token rules ------------------------------------
        for (i, tok) in t.iter().enumerate() {
            let prev2 = i.checked_sub(2).map(|j| (t[j].as_str(), t[i - 1].as_str()));
            let next2 = (
                t.get(i + 1).map(String::as_str),
                t.get(i + 2).map(String::as_str),
            );
            match tok.as_str() {
                "Instant" | "SystemTime" => {
                    let in_std_time = prev2 == Some(("time", "::"));
                    let called_now = next2 == (Some("::"), Some("now"));
                    if in_std_time || called_now {
                        emit(Rule::WallClock, format!("`{tok}` reads the OS clock"));
                    }
                }
                "thread_rng" | "OsRng" | "from_entropy" => {
                    emit(Rule::OsEntropy, format!("`{tok}` draws OS entropy"));
                }
                "spawn" | "scope" | "Builder" if prev2 == Some(("thread", "::")) => {
                    emit(
                        Rule::ThreadSpawn,
                        format!("`thread::{tok}` starts an OS thread"),
                    );
                }
                "HashMap" | "HashSet" => {
                    emit(
                        Rule::UnorderedMap,
                        format!("`{tok}` has unstable iteration order"),
                    );
                }
                _ => {}
            }
        }

        // --- refcell-await: track guards across lines -------------------
        // (a) `let [mut] NAME = ... borrow[_mut]();` with nothing chained
        //     after the call → NAME is a live guard.
        if t.first().map(String::as_str) == Some("let") {
            let mut j = 1;
            if t.get(j).map(String::as_str) == Some("mut") {
                j += 1;
            }
            if let Some(name) = t.get(j) {
                if let Some(bpos) = t.iter().rposition(|x| x == "borrow" || x == "borrow_mut") {
                    // `borrow ( )` then `;` (or nothing else on the line):
                    // a chained `.` means the guard is a dropped temporary.
                    let after: Vec<&str> = t[bpos + 1..].iter().map(String::as_str).collect();
                    let guard_binding = matches!(after.as_slice(), ["(", ")", ";"] | ["(", ")"]);
                    if guard_binding {
                        open_borrows.push(OpenBorrow {
                            name: name.clone(),
                            depth,
                            line: lineno,
                            mutable_borrow: t[bpos] == "borrow_mut",
                        });
                    }
                }
            }
        } else if let Some(bpos) = t.iter().position(|x| x == "borrow" || x == "borrow_mut") {
            // (b) a temporary guard and an `.await` in the same statement.
            let has_await_after = t[bpos..].windows(2).any(|w| w[0] == "." && w[1] == "await");
            if has_await_after {
                emit(
                    Rule::RefcellAwait,
                    format!("`{}()` temporary is live across `.await`", t[bpos]),
                );
            }
        }

        // (c) `.await` while a guard from (a) is still in scope.
        let awaits_here = t.windows(2).any(|w| w[0] == "." && w[1] == "await");
        if awaits_here {
            for b in &open_borrows {
                let call = if b.mutable_borrow {
                    "borrow_mut"
                } else {
                    "borrow"
                };
                emit(
                    Rule::RefcellAwait,
                    format!(
                        "guard `{}` ({}() on line {}) is held across this `.await`",
                        b.name, call, b.line
                    ),
                );
            }
        }

        // (d) scope/drop bookkeeping.
        for tok in t {
            match tok.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    open_borrows.retain(|b| b.depth <= depth);
                }
                _ => {}
            }
        }
        for w in t.windows(3) {
            if w[0] == "drop" && w[1] == "(" {
                open_borrows.retain(|b| b.name != w[2]);
            }
        }
    }

    // --- apply suppressions ---------------------------------------------
    findings.retain(|f| {
        let here = &lines[f.line - 1];
        if here.allows.iter().any(|a| a == f.rule.name()) {
            return false;
        }
        if f.line >= 2 {
            let above = &lines[f.line - 2];
            if above.comment_only && above.allows.iter().any(|a| a == f.rule.name()) {
                return false;
            }
        }
        true
    });
    findings
}

/// Recursively collects `.rs` files under `root`, sorted for determinism.
fn rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the given roots (files or directories).
pub fn scan_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for root in roots {
        rs_files(root, &mut files)?;
    }
    let mut findings = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        findings.extend(scan_source(&file.display().to_string(), &source));
    }
    Ok(findings)
}

/// The sim-visible source roots scanned by default, relative to the
/// workspace root. `cluster` and `bench` are deliberately absent: they
/// parallelize whole (single-threaded) `Sim`s across OS threads and time
/// real benchmarks, which is exactly what the lints forbid *inside* a sim.
pub const DEFAULT_ROOTS: [&str; 7] = [
    "crates/des/src",
    "crates/net/src",
    "crates/store/src",
    "crates/hdfs/src",
    "crates/core/src",
    "crates/obs/src",
    "crates/workloads/src",
];

/// Renders findings as human-readable text, one block per finding.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n    note: {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message,
            f.snippet,
            f.rule.why(),
        ));
    }
    let per_rule: Vec<String> = Rule::ALL
        .iter()
        .map(|r| (r, findings.iter().filter(|f| f.rule == *r).count()))
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{} {}", n, r.name()))
        .collect();
    if findings.is_empty() {
        out.push_str("simcheck: no determinism hazards found\n");
    } else {
        out.push_str(&format!(
            "simcheck: {} finding(s): {}\n",
            findings.len(),
            per_rule.join(", ")
        ));
    }
    out
}

/// Escapes a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a machine-readable JSON report (hand-rolled, matching
/// the workspace's serde-free convention).
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"snippet\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule.name(),
                json_escape(&f.message),
                json_escape(&f.snippet),
            )
        })
        .collect();
    format!(
        "{{\"findings\":[{}],\"count\":{}}}\n",
        items.join(","),
        findings.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<Rule> {
        scan_source("t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn wall_clock_flags_now_and_paths() {
        assert_eq!(rules_of("let t = Instant::now();"), vec![Rule::WallClock]);
        assert_eq!(
            rules_of("use std::time::SystemTime;"),
            vec![Rule::WallClock]
        );
        // A sim-local type named SimInstant must not trip the rule.
        assert!(rules_of("let t: SimInstant = sim.now();").is_empty());
    }

    #[test]
    fn os_entropy_and_thread_spawn_flag() {
        assert_eq!(
            rules_of("let mut r = rand::thread_rng();"),
            vec![Rule::OsEntropy]
        );
        assert_eq!(
            rules_of("std::thread::spawn(move || work());"),
            vec![Rule::ThreadSpawn]
        );
        // A sim spawn is fine.
        assert!(rules_of("sim.spawn(async move {});").is_empty());
    }

    #[test]
    fn unordered_map_flags_types_not_strings() {
        assert_eq!(
            rules_of("let m: HashMap<u32, u32> = HashMap::new();"),
            vec![Rule::UnorderedMap, Rule::UnorderedMap]
        );
        assert!(rules_of("println!(\"HashMap is unordered\");").is_empty());
        assert!(rules_of("// HashMap would be wrong here").is_empty());
    }

    #[test]
    fn refcell_guard_across_await_flags() {
        let src = "async fn f(x: &RefCell<u32>) {\n\
                   let g = x.borrow_mut();\n\
                   tick().await;\n\
                   }\n";
        assert_eq!(rules_of(src), vec![Rule::RefcellAwait]);
    }

    #[test]
    fn refcell_guard_dropped_before_await_is_clean() {
        let src = "async fn f(x: &RefCell<u32>) {\n\
                   let g = x.borrow_mut();\n\
                   drop(g);\n\
                   tick().await;\n\
                   }\n";
        assert!(rules_of(src).is_empty());
        let scoped = "async fn f(x: &RefCell<u32>) {\n\
                      {\n let g = x.borrow_mut();\n }\n\
                      tick().await;\n\
                      }\n";
        assert!(rules_of(scoped).is_empty());
    }

    #[test]
    fn refcell_temporary_copy_is_clean() {
        // `.clone()` / field reads drop the guard at statement end.
        let src = "async fn f(x: &RefCell<Vec<u32>>) {\n\
                   let v = x.borrow().clone();\n\
                   tick().await;\n\
                   }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn refcell_same_statement_await_flags() {
        assert_eq!(
            rules_of("ch.borrow_mut().send(v).await;"),
            vec![Rule::RefcellAwait]
        );
    }

    #[test]
    fn same_line_suppression_applies() {
        assert!(rules_of("let m = HashMap::new(); // simcheck: allow(unordered-map)").is_empty());
    }

    #[test]
    fn preceding_line_suppression_applies() {
        let src = "// not iterated, key order irrelevant: simcheck: allow(unordered-map)\n\
                   let m = HashMap::new();\n";
        assert!(rules_of(src).is_empty());
        // ...but only for the named rule.
        let wrong = "// simcheck: allow(wall-clock)\nlet m = HashMap::new();\n";
        assert_eq!(rules_of(wrong), vec![Rule::UnorderedMap]);
    }

    #[test]
    fn suppression_does_not_leak_past_one_line() {
        let src = "// simcheck: allow(unordered-map)\n\
                   let a = 1;\n\
                   let m = HashMap::new();\n";
        assert_eq!(rules_of(src), vec![Rule::UnorderedMap]);
    }

    #[test]
    fn block_comments_and_strings_are_ignored() {
        let src = "/* thread::spawn(|| {}) */\nlet s = \"Instant::now()\";\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn json_report_is_well_formed() {
        let findings = scan_source("a.rs", "let t = Instant::now();\n");
        let json = render_json(&findings);
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(json.contains("\"count\":1"));
    }
}
