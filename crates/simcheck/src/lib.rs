//! Workspace-aware static determinism analyzer for the simulation tree.
//!
//! The DES promises bit-identical replays from a seed. That promise is easy
//! to break from anywhere: one `Instant::now()` behind a helper function,
//! one `HashMap` iteration feeding task scheduling, one float `sort_by`
//! collapsing NaN to `Equal` on the way into the event schedule. `simcheck`
//! is the static half of the defense (the DES's trace hash and quiescence
//! reports are the runtime half): a multi-pass analyzer built from
//!
//! 1. a dependency-free, multi-line-aware lexer ([`lexer`]) — raw strings,
//!    nested block comments, char/lifetime disambiguation;
//! 2. a workspace symbol index ([`index`]) — per-crate module map, fn
//!    definitions with impl context, `use` renames;
//! 3. a call-graph taint pass ([`taint`]) — wall-clock / OS-entropy /
//!    thread-spawn sources propagate transitively, so a wrapper around
//!    `SystemTime::now()` taints every sim-visible caller, and findings
//!    carry the full call chain;
//! 4. the rule families ([`rules`]): `wall-clock`, `os-entropy`,
//!    `thread-spawn`, `unordered-map`, `yield-borrow`, `float-ord`,
//!    `stale-allow`, `match-leak`.
//!
//! Findings carry a severity tier from the root they came from (sim-visible
//! crate sources are `deny`, host-side and test code `warn`), a stable
//! fingerprint for `--baseline` ratcheting, and — for taint findings — the
//! call chain down to the concrete source line. A finding on line N is
//! suppressed by a `simcheck: allow` line comment naming the rule, on line
//! N itself or alone on line N-1; suppressions that suppress nothing are
//! themselves findings (`stale-allow`).

pub mod index;
pub mod lexer;
pub mod rules;
pub mod taint;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use index::Workspace;
use rules::stale_allow::DirectiveKey;
use rules::RawFinding;
pub use rules::{Rule, Severity};

/// One source file handed to the analyzer.
pub struct SourceSpec {
    /// Display path (used in reports, crate grouping, and fingerprints).
    pub path: String,
    /// Severity tier for findings in this file.
    pub tier: Severity,
    /// File contents.
    pub source: String,
}

/// One reported hazard.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Display path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Severity tier (from the scanned root).
    pub severity: Severity,
    /// Specifics (what matched; for taint findings, what is reached).
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Call chain for taint findings (empty otherwise): call site →
    /// intermediate calls → concrete source line.
    pub chain: Vec<String>,
    /// Stable fingerprint (`f-<16 hex>`): rule + file + normalized snippet
    /// + occurrence index — survives unrelated line drift, for baselines.
    pub fingerprint: String,
}

/// The result of one analysis run.
pub struct Analysis {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Findings that are not in `baseline`, i.e. would fail a gated run.
    pub fn new_deny<'a>(&'a self, baseline: &BTreeSet<String>) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny && !baseline.contains(&f.fingerprint))
            .collect()
    }
}

/// Runs the full pipeline over in-memory sources.
pub fn analyze_sources(specs: Vec<SourceSpec>) -> Analysis {
    let files_scanned = specs.len();
    let ws = Workspace::build(
        specs
            .into_iter()
            .map(|s| (s.path, s.tier, s.source))
            .collect(),
    );

    // Per-file rule passes (pre-suppression).
    let mut raw: Vec<RawFinding> = Vec::new();
    for fi in 0..ws.files.len() {
        rules::tokens::scan(&ws, fi, &mut raw);
        rules::float_ord::scan(&ws, fi, &mut raw);
        rules::yield_borrow::scan(&ws, fi, &mut raw);
        rules::match_leak::scan(&ws, fi, &mut raw);
    }

    // Suppression pass 1: drop allowed findings, remembering which
    // directives earned their keep.
    let mut used: BTreeSet<DirectiveKey> = BTreeSet::new();
    let mut kept = apply_suppressions(&ws, raw, &mut used);

    // Taint pass: unsuppressed direct sources seed the call-graph walk.
    let seeds: Vec<(usize, u32, Rule, String)> = kept
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::WallClock | Rule::OsEntropy | Rule::ThreadSpawn
            )
        })
        .map(|f| (f.file, f.line, f.rule, f.message.clone()))
        .collect();
    let edges = taint::call_edges(&ws);
    let taint_raw: Vec<RawFinding> = taint::propagate(&ws, &edges, &seeds)
        .into_iter()
        .map(|t| RawFinding {
            file: t.file,
            line: t.line,
            rule: t.rule,
            message: t.message,
            chain: t.chain,
        })
        .collect();
    kept.extend(apply_suppressions(&ws, taint_raw, &mut used));

    // Stale-allow pass: every directive that suppressed nothing.
    let mut stale: Vec<RawFinding> = Vec::new();
    rules::stale_allow::scan(&ws, &used, &mut stale);
    kept.extend(apply_suppressions(&ws, stale, &mut used));

    // Finalize: display paths, severity, snippets, sort, fingerprints.
    let mut findings: Vec<Finding> = kept
        .into_iter()
        .map(|f| {
            let entry = &ws.files[f.file];
            Finding {
                file: entry.path.clone(),
                line: f.line as usize,
                rule: f.rule,
                severity: entry.tier,
                message: f.message,
                snippet: entry
                    .raw_lines
                    .get(f.line as usize - 1)
                    .map_or("", |s| s.trim())
                    .to_string(),
                chain: f.chain,
                fingerprint: String::new(),
            }
        })
        .collect();
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule.name(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.name(),
            &b.message,
        ))
    });
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for f in &mut findings {
        let norm: String = f.snippet.split_whitespace().collect::<Vec<_>>().join(" ");
        let mut occurrence = 0usize;
        loop {
            let fp = format!(
                "f-{:016x}",
                fnv1a64(&format!(
                    "{}|{}|{}|{}",
                    f.rule.name(),
                    f.file,
                    norm,
                    occurrence
                ))
            );
            if seen.insert(fp.clone()) {
                f.fingerprint = fp;
                break;
            }
            occurrence += 1;
        }
    }
    Analysis {
        findings,
        files_scanned,
    }
}

/// Drops findings covered by an allow directive, recording directive usage.
fn apply_suppressions(
    ws: &Workspace,
    raw: Vec<RawFinding>,
    used: &mut BTreeSet<DirectiveKey>,
) -> Vec<RawFinding> {
    let mut kept = Vec::new();
    for f in raw {
        match ws.files[f.file]
            .lexed
            .suppressed(f.line as usize, f.rule.name())
        {
            Some(dir_line) => {
                used.insert((f.file, dir_line as u32, f.rule.name().to_string()));
            }
            None => kept.push(f),
        }
    }
    kept
}

/// FNV-1a over a string.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Scans a single in-memory file at deny tier (per-file rules + intra-file
/// taint). Unit-test convenience; the CLI always goes through [`analyze`].
pub fn scan_source(file: &str, source: &str) -> Vec<Finding> {
    analyze_sources(vec![SourceSpec {
        path: file.to_string(),
        tier: Severity::Deny,
        source: source.to_string(),
    }])
    .findings
}

/// Recursively collects `.rs` files under `root`, sorted for determinism.
fn rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the tiered roots. Display paths are made
/// relative to `strip_prefix` when given (keeps fingerprints machine-
/// independent for baselines).
pub fn analyze(
    roots: &[(PathBuf, Severity)],
    strip_prefix: Option<&Path>,
) -> std::io::Result<Analysis> {
    let mut specs = Vec::new();
    for (root, tier) in roots {
        let mut files = Vec::new();
        rs_files(root, &mut files)?;
        for file in files {
            let display = strip_prefix
                .and_then(|p| file.strip_prefix(p).ok())
                .unwrap_or(&file)
                .display()
                .to_string()
                .replace('\\', "/");
            specs.push(SourceSpec {
                path: display,
                tier: *tier,
                source: std::fs::read_to_string(&file)?,
            });
        }
    }
    Ok(analyze_sources(specs))
}

/// Back-compat helper: scans paths at deny tier.
pub fn scan_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let tiered: Vec<(PathBuf, Severity)> =
        roots.iter().map(|r| (r.clone(), Severity::Deny)).collect();
    Ok(analyze(&tiered, None)?.findings)
}

/// Sim-visible source roots: findings here are `deny` severity — they can
/// put nondeterminism directly into an event schedule or a result record.
pub const DENY_ROOTS: [&str; 7] = [
    "crates/des/src",
    "crates/net/src",
    "crates/store/src",
    "crates/hdfs/src",
    "crates/core/src",
    "crates/obs/src",
    "crates/workloads/src",
];

/// Host-side and test roots: scanned, but findings are `warn` severity.
/// `cluster` and `bench` legitimately parallelise whole (single-threaded)
/// `Sim`s across OS threads and time real benchmarks — intentional sites
/// carry inline justifications instead of being exempt from scanning.
/// `crates/simcheck/tests` is excluded: its fixture corpus is hazardous on
/// purpose.
pub const WARN_ROOTS: [&str; 11] = [
    "crates/bench/benches",
    "crates/bench/src",
    "crates/cluster/src",
    "crates/core/tests",
    "crates/des/tests",
    "crates/hdfs/tests",
    "crates/simcheck/src",
    "crates/store/tests",
    "examples",
    "src",
    "tests",
];

/// The default tiered scan roots, joined onto `workspace` and filtered to
/// the ones that exist.
pub fn default_roots(workspace: &Path) -> Vec<(PathBuf, Severity)> {
    DENY_ROOTS
        .iter()
        .map(|r| (r, Severity::Deny))
        .chain(WARN_ROOTS.iter().map(|r| (r, Severity::Warn)))
        .map(|(r, s)| (workspace.join(r), s))
        .filter(|(p, _)| p.exists())
        .collect()
}

/// Renders findings as human-readable text, one block per finding.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.severity.name(),
            f.rule.name(),
            f.message,
            f.snippet,
        ));
        for (i, hop) in f.chain.iter().enumerate() {
            out.push_str(&format!("    {}{}\n", "  ".repeat(i), hop));
        }
        out.push_str(&format!("    note: {}\n", f.rule.why()));
    }
    let per_rule: Vec<String> = Rule::ALL
        .iter()
        .map(|r| (r, findings.iter().filter(|f| f.rule == *r).count()))
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{} {}", n, r.name()))
        .collect();
    if findings.is_empty() {
        out.push_str("simcheck: no determinism hazards found\n");
    } else {
        let deny = findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count();
        out.push_str(&format!(
            "simcheck: {} finding(s) ({} deny, {} warn): {}\n",
            findings.len(),
            deny,
            findings.len() - deny,
            per_rule.join(", ")
        ));
    }
    out
}

/// Escapes a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the analysis as a SARIF-style JSON report: rule metadata under
/// `tool.rules`, findings with severity / chain / fingerprint, and a
/// summary block. Hand-rolled, matching the workspace's serde-free
/// convention.
pub fn render_json(analysis: &Analysis, baseline: &BTreeSet<String>) -> String {
    let rules_meta: Vec<String> = Rule::ALL
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"summary\":\"{}\",\"why\":\"{}\",\"remedy\":\"{}\"}}",
                r.name(),
                json_escape(r.summary()),
                json_escape(r.why()),
                json_escape(r.remedy()),
            )
        })
        .collect();
    let items: Vec<String> = analysis
        .findings
        .iter()
        .map(|f| {
            let chain: Vec<String> = f
                .chain
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"baselined\":{},\"file\":\"{}\",\
                 \"line\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"chain\":[{}],\
                 \"fingerprint\":\"{}\"}}",
                f.rule.name(),
                f.severity.name(),
                baseline.contains(&f.fingerprint),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                json_escape(&f.snippet),
                chain.join(","),
                f.fingerprint,
            )
        })
        .collect();
    let deny = analysis
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let baselined = analysis
        .findings
        .iter()
        .filter(|f| baseline.contains(&f.fingerprint))
        .count();
    format!(
        "{{\"schema\":\"simcheck/2\",\"tool\":{{\"name\":\"simcheck\",\"rules\":[{}]}},\
         \"findings\":[{}],\"summary\":{{\"total\":{},\"deny\":{},\"warn\":{},\
         \"baselined\":{},\"new_deny\":{},\"files\":{}}}}}\n",
        rules_meta.join(","),
        items.join(","),
        analysis.findings.len(),
        deny,
        analysis.findings.len() - deny,
        baselined,
        analysis.new_deny(baseline).len(),
        analysis.files_scanned,
    )
}

/// Loads a baseline file: the set of grandfathered fingerprints.
pub fn load_baseline(path: &Path) -> std::io::Result<BTreeSet<String>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .split('"')
        .filter(|s| s.starts_with("f-") && s.len() == 18)
        .map(str::to_string)
        .collect())
}

/// Serializes a baseline for `--update-baseline`.
pub fn render_baseline(analysis: &Analysis) -> String {
    let fps: Vec<String> = analysis
        .findings
        .iter()
        .map(|f| format!("\"{}\"", f.fingerprint))
        .collect();
    format!(
        "{{\"schema\":\"simcheck-baseline/1\",\"fingerprints\":[{}]}}\n",
        fps.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<Rule> {
        scan_source("crates/x/src/t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn same_line_suppression_applies_and_is_not_stale() {
        assert!(rules_of("let m = HashMap::new(); // simcheck: allow(unordered-map)").is_empty());
    }

    #[test]
    fn preceding_line_suppression_applies() {
        let src = "// not iterated, key order irrelevant: simcheck: allow(unordered-map)\n\
                   let m = HashMap::new();\n";
        assert!(rules_of(src).is_empty());
        // ...but only for the named rule — and the mismatched directive is
        // itself reported as stale.
        let wrong = "// simcheck: allow(float-ord)\nlet m = HashMap::new();\n";
        assert_eq!(rules_of(wrong), vec![Rule::StaleAllow, Rule::UnorderedMap]);
    }

    #[test]
    fn suppression_does_not_leak_past_one_line() {
        let src = "// simcheck: allow(unordered-map)\n\
                   let a = 1;\n\
                   let m = HashMap::new();\n";
        let got = rules_of(src);
        assert!(got.contains(&Rule::UnorderedMap), "{got:?}");
        assert!(got.contains(&Rule::StaleAllow), "{got:?}");
    }

    #[test]
    fn block_comments_and_strings_are_ignored() {
        let src = "/* thread::spawn(|| {}) */\nlet s = \"Instant::now()\";\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn suppressed_source_does_not_taint_callers() {
        let src = "fn host_timer() -> u64 {\n\
                   let t = Instant::now(); // simcheck: allow(wall-clock) bench-only ETA\n\
                   t.elapsed().as_nanos() as u64\n\
                   }\n\
                   fn caller() -> u64 { host_timer() }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn unsuppressed_source_taints_callers_with_chain() {
        let src = "fn stamp() -> u64 {\n\
                   let t = Instant::now();\n\
                   0\n\
                   }\n\
                   fn caller() -> u64 { stamp() }\n";
        let findings = scan_source("crates/x/src/t.rs", src);
        let taint = findings
            .iter()
            .find(|f| f.line == 5)
            .expect("call site flagged");
        assert_eq!(taint.rule, Rule::WallClock);
        assert_eq!(taint.chain.len(), 2, "{:?}", taint.chain);
    }

    #[test]
    fn severity_tracks_tier() {
        let warn = analyze_sources(vec![SourceSpec {
            path: "tests/t.rs".into(),
            tier: Severity::Warn,
            source: "let m = HashMap::new();".into(),
        }]);
        assert_eq!(warn.findings[0].severity, Severity::Warn);
        assert!(warn.new_deny(&BTreeSet::new()).is_empty());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let src = "let a = HashMap::new();\nlet b = 1;\nlet a = HashMap::new();\n";
        let f1 = scan_source("crates/x/src/t.rs", src);
        let f2 = scan_source("crates/x/src/t.rs", src);
        let fp1: Vec<&String> = f1.iter().map(|f| &f.fingerprint).collect();
        let fp2: Vec<&String> = f2.iter().map(|f| &f.fingerprint).collect();
        assert_eq!(fp1, fp2);
        let set: BTreeSet<&String> = fp1.iter().copied().collect();
        assert_eq!(set.len(), fp1.len(), "duplicate fingerprints");
    }

    #[test]
    fn baseline_gates_only_new_deny_findings() {
        let src = "let m = HashMap::new();\n";
        let analysis = analyze_sources(vec![SourceSpec {
            path: "crates/x/src/t.rs".into(),
            tier: Severity::Deny,
            source: src.into(),
        }]);
        assert_eq!(analysis.new_deny(&BTreeSet::new()).len(), 1);
        let baseline: BTreeSet<String> = analysis
            .findings
            .iter()
            .map(|f| f.fingerprint.clone())
            .collect();
        assert!(analysis.new_deny(&baseline).is_empty());
        // Round-trip through the serialized form.
        let text = render_baseline(&analysis);
        let parsed: BTreeSet<String> = text
            .split('"')
            .filter(|s| s.starts_with("f-") && s.len() == 18)
            .map(str::to_string)
            .collect();
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn json_report_is_well_formed() {
        let analysis = analyze_sources(vec![SourceSpec {
            path: "a.rs".into(),
            tier: Severity::Deny,
            source: "let t = Instant::now();\n".into(),
        }]);
        let json = render_json(&analysis, &BTreeSet::new());
        assert!(json.contains("\"schema\":\"simcheck/2\""));
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(json.contains("\"new_deny\":1"));
        assert!(json.contains("\"fingerprint\":\"f-"));
        // Rule metadata rides along for report consumers.
        assert!(json.contains("\"id\":\"match-leak\""));
    }
}
