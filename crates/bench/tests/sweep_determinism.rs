//! Thread-count invariance gate for the parallel sweep runner: the same
//! grid must produce byte-identical serialised results — and identical
//! per-run replay trace hashes — at 1, 4, and 8 worker threads. The pool
//! may schedule items onto threads however it likes; nothing observable is
//! allowed to depend on that.

use rmr_bench::run_grid_traced;
use rmr_cluster::{Bench, Experiment, System, Testbed};

fn tiny_grid() -> Vec<Experiment> {
    let mut exps = Vec::new();
    for system in [System::IpoIb, System::HadoopA, System::OsuIb] {
        for gb in [0.25, 0.5] {
            exps.push(Experiment::new(
                "gate",
                Bench::TeraSort,
                system,
                Testbed::compute(2, 1),
                gb,
                42,
            ));
        }
    }
    exps
}

#[test]
fn grid_is_byte_identical_at_any_thread_count() {
    let grid = tiny_grid();
    let runs: Vec<(String, Vec<u64>)> = [1usize, 4, 8]
        .into_iter()
        .map(|threads| {
            let out = run_grid_traced(&grid, threads);
            let jsonl: String = out
                .iter()
                .map(|(rec, _)| format!("{}\n", rec.to_json()))
                .collect();
            let hashes: Vec<u64> = out.iter().map(|(_, h)| *h).collect();
            (jsonl, hashes)
        })
        .collect();
    assert!(!runs[0].0.is_empty());
    assert_eq!(runs[0].1.len(), grid.len());
    for (i, threads) in [4usize, 8].into_iter().enumerate() {
        assert_eq!(
            runs[0].0,
            runs[i + 1].0,
            "jsonl differs between 1 and {threads} threads"
        );
        assert_eq!(
            runs[0].1,
            runs[i + 1].1,
            "trace hashes differ between 1 and {threads} threads"
        );
    }
}
