//! Thread-count invariance gate for the service probe's fan-out: the same
//! two-policy service grid must produce byte-identical trajectory rows —
//! and identical trace hashes — at 1, 2, and 4 worker threads.

use rmr_bench::service::{service_rows, service_spec};
use rmr_bench::sweep::sweep_map;
use rmr_bench::trajectory::run_line;
use rmr_load::{run_service, ServicePolicy};

#[cfg(debug_assertions)]
const SCALE: (usize, usize) = (4, 14); // nodes, jobs
#[cfg(not(debug_assertions))]
const SCALE: (usize, usize) = (16, 80);

#[test]
fn service_rows_are_byte_identical_at_any_thread_count() {
    let (nodes, jobs) = SCALE;
    let cases = [
        ServicePolicy::Fifo,
        ServicePolicy::Capacity { preempt: true },
    ];
    let runs: Vec<(String, Vec<u64>)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let reports = sweep_map(&cases, threads, |&policy, _| {
                run_service(&service_spec(nodes, jobs, 7, policy, false))
            });
            let jsonl: String = reports
                .iter()
                .flat_map(service_rows)
                .map(|r| format!("{}\n", run_line("gate", false, &r)))
                .collect();
            let hashes: Vec<u64> = reports.iter().map(|r| r.trace_hash).collect();
            (jsonl, hashes)
        })
        .collect();
    assert!(runs[0].0.lines().count() == 6, "3 rows per policy");
    assert!(runs[0].0.contains("\"p99_s\":"));
    for (i, threads) in [2usize, 4].into_iter().enumerate() {
        assert_eq!(
            runs[0].0,
            runs[i + 1].0,
            "rows differ between 1 and {threads} threads"
        );
        assert_eq!(
            runs[0].1,
            runs[i + 1].1,
            "trace hashes differ between 1 and {threads} threads"
        );
    }
}
