//! Criterion micro-benchmarks on the hot data structures and the simulated
//! transports: merge throughput, packet cursors, cache operations, and
//! socket-vs-verbs transfer costs inside the DES.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// Keep `cargo bench --workspace` snappy on small machines.
fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.sample_size(20);
}

use rmr_core::merge::{Emit, StreamingMerge};
use rmr_core::prefetch::{PrefetchCache, Priority};
use rmr_core::record::SegmentCursor;
use rmr_core::JobId;
use rmr_core::{Record, Segment};
use rmr_des::prelude::*;
use rmr_net::{FabricParams, Network};

fn sorted_records(n: usize, seed: u64) -> Vec<Record> {
    let mut x = seed;
    let mut recs: Vec<Record> = (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            Record::new((x >> 16).to_be_bytes().to_vec(), vec![b'v'; 90])
        })
        .collect();
    recs.sort_by(|a, b| a.key.cmp(&b.key));
    recs
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("kway_merge");
    tune(&mut g);
    for k in [4usize, 16, 64] {
        let per = 2_000;
        let segs: Vec<Segment> = (0..k)
            .map(|i| Segment::from_sorted(sorted_records(per, i as u64 + 1)))
            .collect();
        g.throughput(Throughput::Elements((k * per) as u64));
        g.bench_function(format!("real_{k}way"), |b| {
            b.iter_batched(
                || segs.clone(),
                |segs| Segment::merge(&segs),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_streaming_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_merge");
    tune(&mut g);
    let sources = 32usize;
    let per = 1_000u64;
    g.throughput(Throughput::Elements(sources as u64 * per));
    g.bench_function("synthetic_32src", |b| {
        b.iter(|| {
            let mut m = StreamingMerge::new(vec![per; sources]);
            let mut cursors: Vec<SegmentCursor> = (0..sources)
                .map(|_| SegmentCursor::new(Segment::synthetic(per, per * 100)))
                .collect();
            let mut out = 0u64;
            loop {
                match m.emit(4_096) {
                    Emit::Done => break,
                    Emit::Data(seg) => out += seg.records,
                    Emit::Stalled(dry) => {
                        for d in dry {
                            m.append(d, cursors[d].take_records(100));
                        }
                    }
                }
            }
            out
        })
    });
    g.finish();
}

fn bench_packet_cursor(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_cursor");
    tune(&mut g);
    let seg = Segment::from_sorted(sorted_records(50_000, 7));
    g.throughput(Throughput::Bytes(seg.bytes));
    g.bench_function("take_bytes_512k_real", |b| {
        b.iter_batched(
            || SegmentCursor::new(seg.clone()),
            |mut cur| {
                let mut n = 0;
                while !cur.exhausted() {
                    n += cur.take_bytes(512 << 10).records;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_prefetch_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_cache");
    tune(&mut g);
    g.bench_function("insert_lookup_churn", |b| {
        b.iter(|| {
            let cache = PrefetchCache::new(1 << 30);
            let mut hits = 0u64;
            for i in 0..1_000usize {
                cache.insert((JobId(0), i % 64), 16 << 20, Priority::Prefetch);
                if cache.lookup((JobId(0), (i * 7) % 64)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

/// End-to-end transfer cost through the DES: how expensive is it to move
/// simulated bytes over each fabric (this measures the *simulator*, showing
/// the event cost per transfer is flat across fabrics).
fn bench_sim_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_transfer");
    tune(&mut g);
    for (name, fabric) in [
        ("ipoib", FabricParams::ipoib_qdr()),
        ("verbs", FabricParams::ib_verbs_qdr()),
    ] {
        g.bench_function(format!("1000x1MB_{name}"), |b| {
            b.iter(|| {
                let sim = Sim::new(1);
                let net = Network::new(&sim, fabric.clone());
                let cpu_a = Fluid::with_entry_cap(&sim, 8.0, 1.0);
                let cpu_b = Fluid::with_entry_cap(&sim, 8.0, 1.0);
                let a = net.add_node(Some(cpu_a));
                let bnode = net.add_node(Some(cpu_b));
                let net2 = net.clone();
                sim.spawn(async move {
                    for _ in 0..1_000 {
                        net2.transfer(a, bnode, 1 << 20).await;
                    }
                })
                .detach();
                sim.run().as_nanos()
            })
        });
    }
    g.finish();
}

/// Whole-job benchmark: a small synthetic TeraSort through each engine
/// (measures simulator throughput for the full pipeline).
fn bench_small_job(c: &mut Criterion) {
    use rmr_cluster::{run_experiment, Bench, Experiment, System, Testbed};
    let mut g = c.benchmark_group("small_job");
    tune(&mut g);
    g.sample_size(10);
    for system in [System::IpoIb, System::HadoopA, System::OsuIb] {
        g.bench_function(format!("terasort_1gb_{:?}", system), |b| {
            b.iter(|| {
                run_experiment(&Experiment::new(
                    "bench",
                    Bench::TeraSort,
                    system,
                    Testbed::compute(2, 1),
                    1.0,
                    42,
                ))
                .duration_s
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_kway_merge,
    bench_streaming_merge,
    bench_packet_cursor,
    bench_prefetch_cache,
    bench_sim_transfer,
    bench_small_job
);
criterion_main!(benches);
