//! Service-mode bench plumbing: the canonical two-tenant workload shared by
//! `probe service` and the thread-count determinism gate, plus the
//! [`ServiceReport`] → trajectory-row projection.
//!
//! The spec mirrors the capacity-isolation scenario from the load crate's
//! own gates: an interactive tenant submitting a Poisson stream of small
//! TeraSort/WordCount jobs with a 600‰ slot guarantee, and a batch tenant
//! submitting heavy-tailed TeraSort/Sort jobs in a diurnal wave on the
//! remaining 400‰. Under FIFO the batch elephants block the interactive
//! mice head-of-line; under capacity scheduling they cannot.

use rmr_load::{
    Arrival, BoundedPareto, JobKind, JobMix, ServicePolicy, ServiceReport, ServiceSpec, TenantSpec,
};

use crate::trajectory::Run;

/// The canonical two-tenant service spec. `jobs` is split 60/40 between the
/// interactive and batch tenants. Arrival rates scale with the cluster so
/// per-node offered load stays constant: the rates below saturate 8 nodes,
/// and without the scaling a 64-node run sits at a few percent utilization
/// where every policy looks the same (no queueing, no isolation to show).
pub fn service_spec(
    nodes: usize,
    jobs: usize,
    seed: u64,
    policy: ServicePolicy,
    record_events: bool,
) -> ServiceSpec {
    assert!(jobs >= 2, "need at least one job per tenant");
    let t0_jobs = (jobs * 6).div_ceil(10).min(jobs - 1);
    let t1_jobs = jobs - t0_jobs;
    let load = nodes as f64 / 8.0;
    ServiceSpec {
        nodes,
        seed,
        policy,
        locality_delay: 1,
        record_events,
        tenants: vec![
            TenantSpec {
                queue: 0,
                jobs: t0_jobs,
                arrival: Arrival::Poisson {
                    rate_hz: 0.8 * load,
                },
                mix: JobMix::new(
                    &[(JobKind::TeraSort, 700), (JobKind::WordCount, 300)],
                    BoundedPareto::new(1.5, 32e6, 64e6),
                    2,
                ),
                share_mille: 600,
            },
            TenantSpec {
                queue: 1,
                jobs: t1_jobs,
                arrival: Arrival::Diurnal {
                    base_hz: 0.1 * load,
                    peak_hz: 1.2 * load,
                    period_s: 120.0,
                },
                mix: JobMix::new(
                    &[(JobKind::TeraSort, 500), (JobKind::Sort, 500)],
                    BoundedPareto::new(1.3, 64e6, 512e6),
                    4,
                ),
                share_mille: 400,
            },
        ],
    }
}

/// Projects one service run onto trajectory rows: one row per tenant
/// carrying the latency percentiles, plus a `:all` row carrying the
/// executor counters. `wall_s` is left zero — the caller stamps it on the
/// `:all` row if it measured one (the determinism gates byte-compare rows
/// and must see no host time).
pub fn service_rows(rep: &ServiceReport) -> Vec<Run> {
    let label = rep.policy_label();
    let mut rows = Vec::new();
    for t in &rep.tenants {
        let mut r = Run::blank("service", format!("{label}:t{}", t.queue));
        r.sim_s = rep.makespan_s;
        r.items = t.jobs as u64;
        r.nodes = rep.nodes as u64;
        r.p50_s = t.latency.p50();
        r.p95_s = t.latency.p95();
        r.p99_s = t.latency.p99();
        rows.push(r);
    }
    let mut all = Run::blank("service", format!("{label}:all"));
    all.sim_s = rep.makespan_s;
    all.events = rep.events_fired;
    all.polls = rep.polls;
    all.items = rep.jobs as u64;
    all.nodes = rep.nodes as u64;
    rows.push(all);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_splits_jobs_and_keeps_shares() {
        let spec = service_spec(8, 10, 1, ServicePolicy::Fifo, false);
        assert_eq!(spec.tenants.len(), 2);
        assert_eq!(spec.tenants[0].jobs + spec.tenants[1].jobs, 10);
        assert_eq!(spec.tenants[0].jobs, 6);
        let mille: u32 = spec.tenants.iter().map(|t| t.share_mille).sum();
        assert_eq!(mille, 1000);
    }

    #[test]
    fn rows_carry_percentiles_and_counters() {
        let spec = service_spec(2, 4, 3, ServicePolicy::Capacity { preempt: true }, false);
        let rep = rmr_load::run_service(&spec);
        let rows = service_rows(&rep);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].case, "cap+preempt:t0");
        assert_eq!(rows[2].case, "cap+preempt:all");
        assert!(rows[0].p99_s > 0.0);
        assert!(rows[2].events > 0);
        assert_eq!(rows[2].items, 4);
        assert!(rows.iter().all(|r| r.wall_s == 0.0));
    }
}
