//! Regenerates every figure in the paper's evaluation section in one go.

fn main() {
    let threads = rmr_bench::default_threads();
    for fig in rmr_bench::all_figures() {
        rmr_bench::run_figure(&fig, threads);
    }
}
