//! Regenerates the paper's fig6a (see rmr_bench::fig6a for the grid).

fn main() {
    let threads = rmr_bench::default_threads();
    rmr_bench::run_figure(&rmr_bench::fig6a(), threads);
}
