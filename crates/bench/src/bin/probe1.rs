use rmr_cluster::{run_experiment, Bench, Experiment, System, Testbed};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gb: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4.0);
    let sysname = args.get(2).cloned().unwrap_or_else(|| "osu".into());
    let system = match sysname.as_str() {
        "g1" => System::GigE1,
        "g10" => System::GigE10,
        "ipoib" => System::IpoIb,
        "ha" => System::HadoopA,
        _ => System::OsuIb,
    };
    let nodes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(5).map(|s| s == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let t0 = std::time::Instant::now();
    let rec = run_experiment(&Experiment::new(
        "p1",
        bench,
        system,
        Testbed::compute(nodes, disks),
        gb,
        42,
    ));
    println!(
        "{} {}GB: {:.0}s sim (map_end {:.0}s) in {:.1}s wall",
        rec.system,
        gb,
        rec.duration_s,
        rec.map_phase_end_s,
        t0.elapsed().as_secs_f64()
    );
}
