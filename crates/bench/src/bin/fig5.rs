//! Regenerates the paper's fig5 (see rmr_bench::fig5 for the grid).

fn main() {
    let threads = rmr_bench::default_threads();
    rmr_bench::run_figure(&rmr_bench::fig5(), threads);
}
