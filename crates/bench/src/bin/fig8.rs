//! Regenerates the paper's fig8 (see rmr_bench::fig8 for the grid).

fn main() {
    let threads = rmr_bench::default_threads();
    rmr_bench::run_figure(&rmr_bench::fig8(), threads);
}
