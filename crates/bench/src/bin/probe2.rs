//! Phase-breakdown probe for calibration.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_cluster::{tuned_block_size, tuned_conf, Bench, System, Testbed};
use rmr_core::cluster::Cluster;
use rmr_core::run_job;
use rmr_hdfs::HdfsConfig;
use rmr_workloads::{randomwriter, sort_spec, teragen, terasort_spec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gb: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let sysname = args.get(2).cloned().unwrap_or_else(|| "osu".into());
    let system = match sysname.as_str() {
        "g1" => System::GigE1,
        "g10" => System::GigE10,
        "ipoib" => System::IpoIb,
        "ha" => System::HadoopA,
        "osunc" => System::OsuIbNoCache,
        _ => System::OsuIb,
    };
    let nodes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(5).map(|s| s.as_str() == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let ssd = args
        .get(5)
        .map(|s| s.as_str() == "ssdsort")
        .unwrap_or(false);

    let sim = rmr_des::Sim::new(42);
    let testbed = if ssd {
        Testbed::ssd(nodes)
    } else {
        Testbed::compute(nodes, disks)
    };
    let bench = if ssd { Bench::Sort } else { bench };
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size: tuned_block_size(system, bench),
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let conf = tuned_conf(system, bench, &testbed);
    let bytes = (gb * (1u64 << 30) as f64) as u64;
    let out: Rc<RefCell<Option<rmr_core::JobResult>>> = Rc::new(RefCell::new(None));
    let o2 = Rc::clone(&out);
    let c2 = cluster.clone();
    let t_wall = std::time::Instant::now();
    sim.spawn_named("probe-driver", async move {
        let spec = match bench {
            Bench::TeraSort => {
                teragen(&c2, "/in", bytes, false).await;
                terasort_spec("/in", "/out")
            }
            Bench::Sort => {
                randomwriter(&c2, "/in", bytes, false).await;
                sort_spec("/in", "/out")
            }
        };
        let gen_end = c2.sim.now().as_secs_f64();
        eprintln!("  datagen done at {gen_end:.0}s");
        *o2.borrow_mut() = Some(run_job(&c2, conf, spec).await);
    })
    .detach();
    match std::env::var("RMR_LIMIT")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(secs) => {
            sim.run_until(rmr_des::SimTime::from_nanos(secs * 1_000_000_000));
        }
        None => {
            sim.run();
        }
    }
    if out.borrow().is_none() {
        eprintln!("JOB DID NOT FINISH by limit; dumping metrics:");
        for (k, v) in sim.metrics().snapshot() {
            if v.abs() > 0.0 {
                eprintln!("  {k} = {v:.3e}");
            }
        }
        std::process::exit(2);
    }
    let res = out.borrow_mut().take().expect("hung");
    println!(
        "== {} {} {}GB n{} d{} ssd={} ==",
        res.name,
        system.label(),
        gb,
        nodes,
        disks,
        ssd
    );
    println!(
        "duration {:.0}s  start {:.0} map_end {:.0} end {:.0}",
        res.duration_s, res.start_s, res.map_phase_end_s, res.end_s
    );
    let n = res.reduce_stats.len() as f64;
    let avg = |f: &dyn Fn(&rmr_core::reduce::ReduceStats) -> f64| {
        res.reduce_stats.iter().map(f).sum::<f64>() / n
    };
    let max = |f: &dyn Fn(&rmr_core::reduce::ReduceStats) -> f64| {
        res.reduce_stats.iter().map(f).fold(0.0f64, f64::max)
    };
    println!("reduce phases (avg/max): shuffle_end {:.0}/{:.0}  merge_end {:.0}/{:.0}  reduce_end {:.0}/{:.0}",
        avg(&|s| s.shuffle_end_s), max(&|s| s.shuffle_end_s),
        avg(&|s| s.merge_end_s), max(&|s| s.merge_end_s),
        avg(&|s| s.reduce_end_s), max(&|s| s.reduce_end_s));
    println!(
        "cache: {} hits / {} misses",
        res.cache_hits, res.cache_misses
    );
    let m = sim.metrics();
    for key in [
        "fs.bytes_written",
        "fs.bytes_read",
        "fs.bytes_read_disk",
        "tt.disk_serve_bytes",
        "tt.cache_hit_bytes",
        "net.bytes_transferred",
        "hdfs.bytes_written",
        "disk.seeks",
        "prefetch.staged",
        "reduce.inmem_merges",
        "reduce.disk_merges",
        "reduce.shuffle_spill_bytes",
        "rdma.loop_iters",
        "rdma.emits",
        "rdma.emit_records",
        "rdma.stalls",
        "rdma.stall_dry",
    ] {
        println!("  {key:24} {:.2e}", m.get(key));
    }
    let mut disk_busy = 0.0;
    let mut cpu_busy = 0.0;
    for w in cluster.workers.iter() {
        disk_busy += w.fs.disks_busy_seconds();
        cpu_busy += w.cpu.busy_seconds();
    }
    println!("  disks busy total       {disk_busy:.0}s");
    println!("  cpu busy total         {cpu_busy:.0}s");
    println!("  events fired           {:.2e}", sim.events_fired() as f64);
    println!("  polls                  {:.2e}", sim.polls() as f64);
    println!(
        "  wall                   {:.1}s",
        t_wall.elapsed().as_secs_f64()
    );
    rmr_des::resource::fluid::FLUID_ADVANCE_WORK
        .with(|w| println!("  fluid advance work     {:.2e}", w.get() as f64));
}
