//! Parameter-tuning sweeps (§III-C-3, §IV pre-amble): HDFS block size per
//! system, and the OSU-IB shuffle packet size. These regenerate the tuning
//! choices the paper reports (256 MB blocks for 10GigE/IPoIB/OSU-IB
//! TeraSort, 128 MB for Hadoop-A, 64 MB for Sort) and demonstrate the
//! configuration flexibility the paper contrasts against Hadoop-A.

use rmr_cluster::{run_all, Bench, Experiment, System, Testbed};

fn main() {
    let threads = rmr_bench::default_threads();

    // --- Block-size sweep: TeraSort 30 GB on 4 nodes, 1 HDD. ---
    let mut exps = Vec::new();
    for system in [System::IpoIb, System::HadoopA, System::OsuIb] {
        for block_mb in [64u64, 128, 256, 512] {
            let mut e = Experiment::new(
                "tuning-block",
                Bench::TeraSort,
                system,
                Testbed::compute(4, 1),
                30.0,
                42,
            );
            e.block_size_override = Some(block_mb << 20);
            exps.push(e);
        }
    }
    let records = run_all(&exps, threads);
    println!("\nHDFS block-size sweep — TeraSort 30GB, 4 nodes, 1 HDD");
    println!("{:>10} {:>24} {:>12}", "block(MB)", "system", "time(s)");
    for (e, r) in exps.iter().zip(&records) {
        println!(
            "{:>10} {:>24} {:>12.0}",
            e.block_size_override.unwrap() >> 20,
            r.system,
            r.duration_s
        );
    }
    rmr_bench::write_results("tuning-block", &records);

    // --- OSU-IB packet-size sweep: Sort 20 GB (large kv pairs). ---
    let mut exps = Vec::new();
    for packet_kb in [64u64, 128, 256, 512, 1024, 2048] {
        let mut e = Experiment::new(
            "tuning-packet",
            Bench::Sort,
            System::OsuIb,
            Testbed::compute(4, 1),
            20.0,
            42,
        );
        e.osu_packet_override = Some(packet_kb << 10);
        exps.push(e);
    }
    let records = run_all(&exps, threads);
    println!("\nOSU-IB packet-size sweep — Sort 20GB, 4 nodes, 1 HDD");
    println!("{:>12} {:>12}", "packet(KB)", "time(s)");
    for (e, r) in exps.iter().zip(&records) {
        println!(
            "{:>12} {:>12.0}",
            e.osu_packet_override.unwrap() >> 10,
            r.duration_s
        );
    }
    rmr_bench::write_results("tuning-packet", &records);

    // --- Headline ablation: the three OSU mechanisms one by one. ---
    let mut exps = Vec::new();
    for system in [
        System::IpoIb,
        System::HadoopA,
        System::OsuIbNoCache,
        System::OsuIb,
    ] {
        exps.push(Experiment::new(
            "tuning-ablation",
            Bench::TeraSort,
            system,
            Testbed::compute(4, 2),
            30.0,
            42,
        ));
    }
    let records = run_all(&exps, threads);
    println!("\nMechanism ablation — TeraSort 30GB, 4 nodes, 2 HDDs");
    println!("  (vanilla barrier → +RDMA/pipeline [Hadoop-A] → +overlap+packets [OSU no-cache] → +PrefetchCache [OSU])");
    for r in &records {
        println!("  {:28} {:>8.0}s", r.system, r.duration_s);
    }
    rmr_bench::write_results("tuning-ablation", &records);
}
