//! Calibration probe (consolidated): ad-hoc single-simulation runs for
//! calibrating the models against the paper's tables.
//!
//! Subcommands:
//!   probe grid   [gb] [nodes] [disks] [sort] [--engines] — one Fig 4(a)-style
//!                point per system (GigE10/IPoIB/HA/OSU), run in parallel.
//!                With --engines: all five shuffle engines (IPoIB/HA/OSU +
//!                in-node combiner + striped multi-rail), gated on the seed
//!                engines regenerating bit-identically (0.00% delta) and on
//!                the combiner engine's combiner-less rows replaying OSU-IB
//!                exactly; non-zero exit on any divergence
//!   probe one    [gb] [system] [nodes] [disks] [sort] [seed] — a single point,
//!                printing sim duration and wall time
//!   probe phases [gb] [system] [nodes] [disks] [sort|ssdsort]
//!                — a single point with a full phase/metrics breakdown
//!                (honours RMR_LIMIT=<sim-seconds> to bound hung runs)
//!   probe fluidcmp — exact completion times for a canned fluid-contention
//!                scenario; diff the output across two builds to compare
//!                solver implementations (see DESIGN.md §8 on schedule
//!                sensitivity)
//!   probe scale  <nodes> <jobs> <gb> [seed] [--budget-s S]
//!                [--min-attempts N] [--out PATH]
//!                — weak-scaling hot-path probe: the same concurrent job mix
//!                at 64, 256, and <nodes> workers (points ≤ <nodes>), run in
//!                parallel through the sweep pool. Prints fluid_work/events
//!                and polls/events per point and their drift vs the smallest
//!                point, and appends labeled rows (nodes/attempts columns)
//!                to BENCH_wallclock.json. With --budget-s, exits non-zero
//!                if any point's wall time exceeds the budget (CI smoke).
//!   probe service [nodes] [jobs] [seed] [--budget-s S] [--out PATH]
//!                [--hist-dir DIR]
//!                — open-arrival multi-tenant service probe: the canonical
//!                two-tenant mix (interactive Poisson mice + diurnal batch
//!                elephants) under FIFO and capacity+preemption. Gates:
//!                every job finishes, state drains, the guaranteed tenant's
//!                p99 beats FIFO, and a replay run is trace-hash identical.
//!                Appends per-tenant latency-percentile rows to
//!                BENCH_wallclock.json; with --hist-dir also writes tenant
//!                latency jsonl and tenant heatmap artifacts.
//!   probe chaos  [nodes] [jobs] [gb] [seed] [--plans N] [--budget-s S]
//!                — deterministic chaos campaign: N seed-derived fault
//!                plans (plan 0 is always the mid-map-wave kill storm)
//!                against a concurrent TeraSort mix. Every plan must pass
//!                three gates: quiescence (all jobs finish, runtime state
//!                footprint drains to zero), determinism (a second run of
//!                the same faulted sim is trace-hash identical), and
//!                no-lost-work (per-reducer output byte counts match the
//!                fault-free twin exactly). The campaign ends with the
//!                combiner acceptance point: WordCount on the in-node
//!                combiner engine, one worker killed mid-shuffle and
//!                restarted, gated on the same three checks plus `folded`
//!                (combined shuffle volume under an OSU-IB twin) — the
//!                fold demonstrably re-runs after node loss. Non-zero
//!                exit on any failure.
//!   probe obs    [jobs] [nodes] [gb_per_job] [outdir] [seed]
//!                — a concurrent multi-job OSU-IB mix with the observability
//!                recorder on; writes every rmr_obs artifact (events.jsonl,
//!                Chrome trace, heatmap, queue-depth / cache-pressure /
//!                shuffle-throughput series, runtime snapshots) to outdir
//!                and self-validates the Chrome trace (non-zero exit on a
//!                schema violation). See DESIGN.md §12 and README
//!                "Inspecting a run".
//!
//! System names: g1, g10, ipoib, ha, osu, osunc, comb, mr.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_cluster::{
    run_all, run_experiment, tuned_block_size, tuned_conf, Bench, Experiment, System, Testbed,
};
use rmr_core::cluster::Cluster;
use rmr_core::{run_job, Runtime, SchedulePolicy};
use rmr_hdfs::HdfsConfig;
use rmr_workloads::{
    randomwriter, sort_spec, teragen, terasort_spec, textgen_blocks, wordcount_spec,
};

fn parse_system(name: &str) -> System {
    match name {
        "g1" => System::GigE1,
        "g10" => System::GigE10,
        "ipoib" => System::IpoIb,
        "ha" => System::HadoopA,
        "osunc" => System::OsuIbNoCache,
        "comb" => System::NodeCombiner,
        "mr" => System::MultiRail,
        _ => System::OsuIb,
    }
}

fn usage() -> ! {
    eprintln!("usage: probe <grid|one|phases|fluidcmp|scale|service|chaos|obs> [args]");
    eprintln!("  probe grid   [gb] [nodes] [disks] [sort] [--engines]");
    eprintln!("  probe one    [gb] [system] [nodes] [disks] [sort] [seed]");
    eprintln!("  probe phases [gb] [system] [nodes] [disks] [sort|ssdsort]");
    eprintln!("  probe fluidcmp                               — solver differential dump");
    eprintln!(
        "  probe scale  <nodes> <jobs> <gb> [seed] [--budget-s S] [--min-attempts N] [--out PATH]"
    );
    eprintln!("  probe service [nodes] [jobs] [seed] [--budget-s S] [--out PATH] [--hist-dir DIR]");
    eprintln!("  probe chaos  [nodes] [jobs] [gb] [seed] [--plans N] [--budget-s S]");
    eprintln!("  probe obs    [jobs] [nodes] [gb_per_job] [outdir] [seed]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("grid") => grid(&args[2..]),
        Some("one") => one(&args[2..]),
        Some("phases") => phases(&args[2..]),
        Some("fluidcmp") => fluidcmp(),
        Some("obs") => obs(&args[2..]),
        Some("scale") => scale(&args[2..]),
        Some("service") => service(&args[2..]),
        Some("chaos") => chaos(&args[2..]),
        _ => usage(),
    }
}

/// Prints exact completion times for a canned fluid-contention scenario —
/// a differential harness for comparing solver implementations.
fn fluidcmp() {
    let sim = rmr_des::Sim::new(5);
    let f = rmr_des::resource::Fluid::new(&sim, 4.0e9);
    let cpu = rmr_des::resource::Fluid::with_entry_cap(&sim, 8.0, 1.0);
    for i in 0..64usize {
        let f = f.clone();
        let cpu = cpu.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(rmr_des::SimDuration::from_micros((i * 131) as u64))
                .await;
            for r in 0..20usize {
                let amount = 65_536.0 + ((i * 7919 + r * 104729) % 4_000_000) as f64;
                f.consume(amount).await;
                cpu.consume(1e-4).await;
                println!("{i} {r} {}", s.now().as_nanos());
            }
        })
        .detach();
    }
    sim.run();
}

/// One Fig 4(a)-style point per system, in parallel. With `--engines` the
/// grid covers all five shuffle engines (Vanilla via IPoIB, Hadoop-A,
/// OSU-IB, in-node combiner, striped multi-rail) and becomes a gate: the
/// three seed engines must regenerate bit-identically in a second pass run
/// without the new engines present (0.00% delta), and the combiner engine's
/// combiner-less row must replay OSU-IB's exactly.
fn grid(args: &[String]) {
    let gb: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(30.0);
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(3).map(|s| s == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let engines = args.iter().any(|a| a == "--engines");
    let seed_systems = [System::IpoIb, System::HadoopA, System::OsuIb];
    let systems: Vec<System> = if engines {
        vec![
            System::IpoIb,
            System::HadoopA,
            System::OsuIb,
            System::NodeCombiner,
            System::MultiRail,
        ]
    } else {
        vec![
            System::GigE10,
            System::IpoIb,
            System::HadoopA,
            System::OsuIb,
        ]
    };
    let exp_for = |system: System| {
        Experiment::new(
            "probe",
            bench,
            system,
            Testbed::compute(nodes, disks),
            gb,
            42,
        )
    };
    let exps: Vec<Experiment> = systems.iter().map(|&s| exp_for(s)).collect();
    let recs = run_all(&exps, exps.len());
    for r in &recs {
        println!(
            "{:28} {:6.0}s  (map_end {:5.0}s, shuffled {:.1} GB, cache {:.0}%)",
            r.system,
            r.duration_s,
            r.map_phase_end_s,
            r.shuffled_bytes as f64 / 1e9,
            r.cache_hit_rate * 100.0
        );
    }
    if !engines {
        return;
    }
    // Seed-regeneration gate: the three paper engines, swept again without
    // the new engines in the mix, must land on the same numbers to the bit.
    let seed_exps: Vec<Experiment> = seed_systems.iter().map(|&s| exp_for(s)).collect();
    let again = run_all(&seed_exps, seed_exps.len());
    let mut failed = false;
    for b in &again {
        let a = recs
            .iter()
            .find(|r| r.system == b.system)
            .expect("seed system missing from the engine grid");
        let delta = (a.duration_s - b.duration_s).abs() / b.duration_s * 100.0;
        let exact = a.duration_s == b.duration_s && a.shuffled_bytes == b.shuffled_bytes;
        println!(
            "regen {:28} {:6.0}s  delta {delta:.2}%  {}",
            b.system,
            b.duration_s,
            gate("bit-identical", exact)
        );
        failed |= !exact;
    }
    // Pass-through gate: the sort benches carry no combiner fn, so the
    // in-node combiner engine must replay the OSU-IB data plane exactly.
    let osu = recs
        .iter()
        .find(|r| r.system == System::OsuIb.label())
        .expect("OSU-IB row");
    let comb = recs
        .iter()
        .find(|r| r.system == System::NodeCombiner.label())
        .expect("combiner row");
    let passthrough =
        osu.duration_s == comb.duration_s && osu.shuffled_bytes == comb.shuffled_bytes;
    println!(
        "combiner-less pass-through: {}",
        gate("matches-osu-ib", passthrough)
    );
    failed |= !passthrough;
    if failed {
        std::process::exit(1);
    }
}

/// One weak-scaling point: `jobs` concurrent TeraSort jobs through a
/// persistent OSU-IB runtime on `nodes` workers, total dataset scaled so
/// per-node load matches the target point.
fn scale_point(nodes: usize, jobs: usize, gb_total: f64, seed: u64) -> rmr_bench::trajectory::Run {
    use rmr_des::resource::fluid::FLUID_ADVANCE_WORK;
    let system = System::OsuIb;
    let testbed = Testbed::compute(nodes, 1);
    let sim = rmr_des::Sim::new(seed);
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            // Small blocks so map attempt counts (not bytes) stress the
            // control plane: gb/jobs GB per job in 8 MB splits.
            block_size: 8 << 20,
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let mut conf = tuned_conf(system, Bench::TeraSort, &testbed);
    // tuned_conf sizes reduces for figure fidelity (nodes x slots); at 1k
    // nodes that would make the map-fetch matrix quadratic in the cluster
    // size. Cap it so shuffle volume stays proportional to the data.
    conf.num_reduces = nodes.min(64);
    let bytes_per_job = ((gb_total / jobs as f64) * (1u64 << 30) as f64) as u64;
    let results: Rc<RefCell<Vec<rmr_core::JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&results);
    let c2 = cluster.clone();
    let conf2 = conf.clone();
    sim.spawn_named("scale-driver", async move {
        for i in 0..jobs {
            teragen(&c2, &format!("/scale/in{i}"), bytes_per_job, false).await;
        }
        let rt = Runtime::with_policy(&c2, conf2.clone(), SchedulePolicy::Fifo);
        let ids: Vec<_> = (0..jobs)
            .map(|i| {
                rt.submit(
                    conf2.clone(),
                    terasort_spec(&format!("/scale/in{i}"), &format!("/scale/out{i}")),
                )
            })
            .collect();
        for id in ids {
            let res = rt.join(id).await;
            r2.borrow_mut().push(res);
        }
        let fp = rt.state_footprint();
        assert_eq!(fp.total(), 0, "job-keyed state leaked: {fp:?}");
    })
    .detach();
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    // simcheck: allow(wall-clock) -- host-side timing of the sim itself
    let t0 = std::time::Instant::now();
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let fluid_work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    let results = results.borrow();
    assert_eq!(results.len(), jobs, "scale point n{nodes} hung");
    let attempts: usize = results
        .iter()
        .map(|r| r.maps + r.reduces + r.failed_map_attempts + r.failed_reduce_attempts)
        .sum();
    let (m, rd, fm, fr) = results.iter().fold((0, 0, 0, 0), |a, r| {
        (
            a.0 + r.maps,
            a.1 + r.reduces,
            a.2 + r.failed_map_attempts,
            a.3 + r.failed_reduce_attempts,
        )
    });
    eprintln!(
        "  [scale n{nodes}] jobs={jobs} maps={m} reduces={rd} \
         failed_maps={fm} failed_reduces={fr}"
    );
    let mut run = rmr_bench::trajectory::Run::blank("scale", format!("n{nodes}_j{jobs}"));
    run.wall_s = wall_s;
    run.sim_s = results.iter().map(|r| r.end_s).fold(0.0, f64::max);
    run.events = sim.events_fired();
    run.polls = sim.polls();
    run.fluid_work = fluid_work;
    run.items = jobs as u64;
    run.nodes = nodes as u64;
    run.attempts = attempts as u64;
    run.shuffle_bytes = results.iter().map(|r| r.shuffled_bytes).sum();
    run
}

/// Weak-scaling sweep: see module docs.
fn scale(args: &[String]) {
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let jobs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let gb: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut budget_s: Option<f64> = None;
    let mut min_attempts: Option<u64> = None;
    let mut out_path = "BENCH_wallclock.json".to_string();
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--budget-s" => {
                i += 1;
                budget_s = Some(args.get(i).expect("--budget-s value").parse().unwrap());
            }
            "--min-attempts" => {
                i += 1;
                min_attempts = Some(args.get(i).expect("--min-attempts value").parse().unwrap());
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out value").clone();
            }
            _ => {}
        }
        i += 1;
    }

    // Reference points below the target, so the ratios have a baseline.
    let mut points: Vec<usize> = [64usize, 256, nodes]
        .into_iter()
        .filter(|&n| n <= nodes)
        .collect();
    points.sort_unstable();
    points.dedup();

    // Weak scaling: per-node data is fixed at the target's gb/nodes and the
    // job count stays constant, so every point runs the same blocks-per-node
    // load (the per-node split rounding is identical across points). Per-job
    // reduce fan-in still grows with the cluster — reduces are capped while
    // maps scale — which shifts the event mix toward fluid merge work and
    // can only *lower* the per-event ratios. The gate is therefore
    // one-sided: only ratio growth (super-linear control-plane cost per
    // event) fails the probe.
    // One worker per point, capped at the host's parallelism: on a small
    // host, oversubscribing a single core with multiple whole-sim threads
    // thrashes (scheduler + cache pressure) and corrupts the wall numbers.
    let threads = rmr_bench::default_threads().min(points.len());
    let runs = rmr_bench::sweep::sweep_map(&points, threads, |&n, _| {
        let gb_point = gb * n as f64 / nodes as f64;
        scale_point(n, jobs, gb_point, seed)
    });

    println!(
        "\n{:>6} {:>9} {:>10} {:>12} {:>8} {:>14} {:>12}",
        "nodes", "attempts", "events", "fluid_work", "wall_s", "fluid/events", "polls/events"
    );
    let base = &runs[0];
    let base_fpe = base.fluid_work as f64 / base.events as f64;
    let base_ppe = base.polls as f64 / base.events as f64;
    let mut over_budget = false;
    let mut max_drift = 1.0f64;
    for r in &runs {
        let fpe = r.fluid_work as f64 / r.events as f64;
        let ppe = r.polls as f64 / r.events as f64;
        println!(
            "{:>6} {:>9} {:>10} {:>12} {:>8.2} {:>8.3} ({:>4.2}x) {:>6.3} ({:>4.2}x)",
            r.nodes,
            r.attempts,
            r.events,
            r.fluid_work,
            r.wall_s,
            fpe,
            fpe / base_fpe,
            ppe,
            ppe / base_ppe
        );
        for ratio in [fpe / base_fpe, ppe / base_ppe] {
            max_drift = max_drift.max(ratio);
        }
        if let Some(b) = budget_s {
            if r.wall_s > b {
                eprintln!(
                    "BUDGET EXCEEDED: n{} took {:.1}s > {:.1}s",
                    r.nodes, r.wall_s, b
                );
                over_budget = true;
            }
        }
    }
    println!(
        "max upward hot-path ratio drift vs n{}: {:.3}x (gate: 1.20x)",
        base.nodes, max_drift
    );
    rmr_bench::trajectory::write_results(&out_path, "scale", false, &runs);
    println!("appended {} scale rows to {out_path}", runs.len());
    let mut too_small = false;
    if let Some(min) = min_attempts {
        let got = runs.last().map_or(0, |r| r.attempts);
        if got < min {
            eprintln!("SMOKE TOO SMALL: target point ran {got} attempts < {min}");
            too_small = true;
        }
    }
    if over_budget || too_small || max_drift > 1.2 {
        std::process::exit(1);
    }
}

/// Open-arrival service probe: the canonical two-tenant workload (see
/// `rmr_bench::service`) under FIFO and capacity+preemption, with a replay
/// run for the determinism gate. Gates (non-zero exit on failure):
///
///  1. every submitted job finishes and the runtime state footprint drains
///     to zero (asserted inside `run_service`),
///  2. both tenants report non-empty latency tails under both policies,
///  3. the capacity-guaranteed interactive tenant's latency p99 beats FIFO
///     and its queue-wait p99 is no worse,
///  4. a second run of the capacity sim is trace-hash identical,
///  5. optional wall budget per run (`--budget-s`).
fn service(args: &[String]) {
    use rmr_bench::service::{service_rows, service_spec};
    use rmr_load::{run_service, ServicePolicy};

    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let jobs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut budget_s: Option<f64> = None;
    let mut out_path = "BENCH_wallclock.json".to_string();
    let mut hist_dir: Option<String> = None;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--budget-s" => {
                i += 1;
                budget_s = Some(args.get(i).expect("--budget-s value").parse().unwrap());
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out value").clone();
            }
            "--hist-dir" => {
                i += 1;
                hist_dir = Some(args.get(i).expect("--hist-dir value").clone());
            }
            _ => {}
        }
        i += 1;
    }

    // FIFO baseline and the capacity run (events recorded for the heatmap
    // artifacts — the recorder is perturbation-free, see the load gates)
    // fan out through the sweep pool; the replay twin runs after, so it
    // proves same-process determinism rather than racing its twin.
    let cases = [
        (ServicePolicy::Fifo, false),
        (ServicePolicy::Capacity { preempt: true }, true),
    ];
    let threads = rmr_bench::default_threads().min(cases.len());
    // simcheck: allow(wall-clock) -- host-side timing of the sims themselves
    let t0 = std::time::Instant::now();
    let mut reports = rmr_bench::sweep::sweep_map(&cases, threads, |&(policy, record), _| {
        let spec = service_spec(nodes, jobs, seed, policy, record);
        run_service(&spec)
    });
    let wall_s = t0.elapsed().as_secs_f64() / cases.len() as f64;
    let cap = reports.pop().expect("capacity report");
    let fifo = reports.pop().expect("fifo report");

    let replay = run_service(&service_spec(
        nodes,
        jobs,
        seed,
        ServicePolicy::Capacity { preempt: true },
        false,
    ));

    println!("{}", fifo.to_ascii());
    println!("{}", cap.to_ascii());

    let mut failed = false;
    for rep in [&fifo, &cap] {
        for t in &rep.tenants {
            if t.latency.p99() <= 0.0 {
                eprintln!(
                    "EMPTY TAIL: {} tenant {} has no p99",
                    rep.policy_label(),
                    t.queue
                );
                failed = true;
            }
        }
        if rep.footprint_total != 0 {
            eprintln!(
                "STATE LEAK: {} footprint {}",
                rep.policy_label(),
                rep.footprint_total
            );
            failed = true;
        }
    }
    let (f0, c0) = (fifo.tenant(0), cap.tenant(0));
    println!(
        "guaranteed-tenant p99: fifo {:.1}s vs capacity {:.1}s ({:.2}x); \
         wait-p99 {:.1}s vs {:.1}s",
        f0.latency.p99(),
        c0.latency.p99(),
        f0.latency.p99() / c0.latency.p99().max(1e-9),
        f0.wait.p99(),
        c0.wait.p99(),
    );
    if c0.latency.p99() >= f0.latency.p99() {
        eprintln!(
            "ISOLATION FAILED: capacity p99 {:.2}s not below FIFO {:.2}s",
            c0.latency.p99(),
            f0.latency.p99()
        );
        failed = true;
    }
    if c0.wait.p99() > f0.wait.p99() {
        eprintln!(
            "ISOLATION FAILED: capacity wait-p99 {:.2}s above FIFO {:.2}s",
            c0.wait.p99(),
            f0.wait.p99()
        );
        failed = true;
    }
    if replay.trace_hash != cap.trace_hash {
        eprintln!(
            "REPLAY DIVERGED: {:#x} vs {:#x}",
            replay.trace_hash, cap.trace_hash
        );
        failed = true;
    } else {
        println!(
            "replay gate: trace hash {:#x} identical across runs ({} events)",
            cap.trace_hash, cap.events_fired
        );
    }
    if let Some(b) = budget_s {
        if wall_s > b {
            eprintln!("BUDGET EXCEEDED: {wall_s:.1}s/run > {b:.1}s");
            failed = true;
        }
    }

    if let Some(dir) = hist_dir {
        std::fs::create_dir_all(&dir).expect("create hist dir");
        for rep in [&fifo, &cap] {
            let path = format!("{dir}/service_{}_tenants.jsonl", rep.policy_label());
            std::fs::write(&path, rep.tenants_jsonl()).expect("write tenant jsonl");
            println!("wrote {path}");
        }
        for (what, hm) in [
            (
                "recovery",
                rmr_obs::tenant_recovery_heatmap(&cap.events, 24),
            ),
            ("latency", rmr_obs::tenant_latency_heatmap(&cap.events, 24)),
        ] {
            let path = format!("{dir}/service_tenant_{what}.json");
            std::fs::write(&path, hm.to_json()).expect("write heatmap");
            println!("wrote {path}\n{}", hm.to_ascii());
        }
    }

    let mut rows = service_rows(&fifo);
    rows.extend(service_rows(&cap));
    for r in &mut rows {
        if r.case.ends_with(":all") {
            r.wall_s = wall_s;
        }
    }
    rmr_bench::trajectory::write_results(&out_path, "service", false, &rows);
    println!("appended {} service rows to {out_path}", rows.len());
    if failed {
        std::process::exit(1);
    }
}

/// One faulted (or fault-free) run of the chaos workload: `jobs` concurrent
/// jobs on `nodes` workers of `system` with `plan` armed before submission.
/// The workload is TeraSort sized by `gb_total`, or — with `wordcount` —
/// a fixed-size WordCount whose combiner is its reducer, the job shape the
/// in-node combiner engine aggregates.
struct ChaosRun {
    results: Vec<rmr_core::JobResult>,
    trace_hash: u64,
    footprint_total: usize,
    wall_s: f64,
}

impl ChaosRun {
    /// Total shuffle bytes actually served across the run's jobs.
    fn shuffled_bytes(&self) -> u64 {
        self.results.iter().map(|r| r.shuffled_bytes).sum()
    }
}

/// No lost work: every job's per-reducer output byte counts (and so the
/// concatenated output files) match the fault-free twin exactly.
fn lossless(twin: &ChaosRun, faulted: &ChaosRun) -> bool {
    faulted.results.len() == twin.results.len()
        && twin.results.iter().zip(&faulted.results).all(|(a, b)| {
            a.output_bytes == b.output_bytes
                && a.maps == b.maps
                && a.reduce_stats.len() == b.reduce_stats.len()
                && a.reduce_stats
                    .iter()
                    .zip(&b.reduce_stats)
                    .all(|(x, y)| x.output_bytes == y.output_bytes)
        })
}

fn chaos_run(
    system: System,
    wordcount: bool,
    nodes: usize,
    jobs: usize,
    gb_total: f64,
    seed: u64,
    plan: &rmr_core::FaultPlan,
) -> ChaosRun {
    let testbed = Testbed::compute(nodes, 1);
    let sim = rmr_des::Sim::new(seed);
    // WordCount blobs below run ~0.9 MB, so a 512 KB block turns every blob
    // into its own block: each job spans several map splits and the in-node
    // stage has co-located waves to fold.
    let (block_size, packet_size) = if wordcount {
        (512 << 10, 256 << 10)
    } else {
        (8 << 20, 4 << 20)
    };
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size,
            replication: 1,
            packet_size,
        },
    );
    let mut conf = tuned_conf(system, Bench::TeraSort, &testbed);
    conf.num_reduces = nodes.min(32);
    let bytes_per_job = ((gb_total / jobs as f64) * (1u64 << 30) as f64) as u64;
    let results: Rc<RefCell<Vec<rmr_core::JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let rt_slot: Rc<RefCell<Option<Runtime>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&results);
    let rt2 = Rc::clone(&rt_slot);
    let c2 = cluster.clone();
    let conf2 = conf.clone();
    let plan2 = plan.clone();
    sim.spawn_named("chaos-driver", async move {
        for i in 0..jobs {
            if wordcount {
                textgen_blocks(&c2, &format!("/chaos/in{i}"), 60_000, 10, 10_000).await;
            } else {
                teragen(&c2, &format!("/chaos/in{i}"), bytes_per_job, false).await;
            }
        }
        let rt = Runtime::with_policy(&c2, conf2.clone(), SchedulePolicy::Fifo);
        rt.apply_fault_plan(&plan2);
        *rt2.borrow_mut() = Some(rt.clone());
        let ids: Vec<_> = (0..jobs)
            .map(|i| {
                let spec = if wordcount {
                    wordcount_spec(&format!("/chaos/in{i}"), &format!("/chaos/out{i}"))
                } else {
                    terasort_spec(&format!("/chaos/in{i}"), &format!("/chaos/out{i}"))
                };
                rt.submit(conf2.clone(), spec)
            })
            .collect();
        for id in ids {
            let res = rt.join(id).await;
            r2.borrow_mut().push(res);
        }
    })
    .detach();
    // simcheck: allow(wall-clock) -- host-side timing of the sim itself
    let t0 = std::time::Instant::now();
    // RMR_LIMIT=<sim-seconds> bounds a hung faulted run and dumps the
    // runtime snapshot instead of spinning forever (debug aid, like
    // `probe phases`).
    match std::env::var("RMR_LIMIT")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(secs) => {
            sim.run_until(rmr_des::SimTime::from_nanos(secs * 1_000_000_000));
            if results.borrow().len() < jobs {
                eprintln!(
                    "CHAOS RUN HUNG at limit {secs}s ({}/{} jobs done):",
                    results.borrow().len(),
                    jobs
                );
                if let Some(rt) = rt_slot.borrow().as_ref() {
                    eprintln!("{}", rt.dump().render());
                }
                eprintln!("plan: {}", rmr_bench::chaos::render_plan(plan));
                for (k, v) in sim.metrics().snapshot() {
                    if v.abs() > 0.0 {
                        eprintln!("  {k} = {v:.3e}");
                    }
                }
                std::process::exit(2);
            }
        }
        None => {
            sim.run();
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    // Footprint is read after quiescence, not after the last join: a crash
    // task whose restart lands beyond the jobs' lifetime must still have
    // fired (sim.run drains it), so `down_nodes` is 0 for all-restart plans.
    let footprint_total = rt_slot
        .borrow()
        .as_ref()
        .map_or(usize::MAX, |rt| rt.state_footprint().total());
    ChaosRun {
        results: results.take(),
        trace_hash: sim.trace_hash(),
        footprint_total,
        wall_s,
    }
}

/// Deterministic chaos campaign: see module docs. Gates are per plan;
/// any failure exits non-zero after the whole table prints.
fn chaos(args: &[String]) {
    use rmr_bench::chaos::{derive_plan, render_plan, storm_plan, TwinTiming};

    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
    let jobs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let gb: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut plans: usize = 8;
    let mut budget_s: Option<f64> = None;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--plans" => {
                i += 1;
                plans = args.get(i).expect("--plans value").parse().unwrap();
            }
            "--budget-s" => {
                i += 1;
                budget_s = Some(args.get(i).expect("--budget-s value").parse().unwrap());
            }
            _ => {}
        }
        i += 1;
    }

    // One campaign point per plan index; each point runs its fault-free
    // twin, the faulted sim, and a determinism re-run of the faulted sim,
    // all on the same sim seed. Points are independent whole sims, so they
    // sweep in parallel like every other probe.
    let points: Vec<usize> = (0..plans).collect();
    let threads = rmr_bench::default_threads().min(points.len().max(1));
    let rows = rmr_bench::sweep::sweep_map(&points, threads, |&p, _| {
        let sim_seed = seed + p as u64;
        let twin = chaos_run(
            System::OsuIb,
            false,
            nodes,
            jobs,
            gb,
            sim_seed,
            &rmr_core::FaultPlan::none(),
        );
        assert_eq!(twin.results.len(), jobs, "plan {p}: fault-free twin hung");
        let timing = TwinTiming {
            submit_s: twin
                .results
                .iter()
                .map(|r| r.start_s)
                .fold(f64::INFINITY, f64::min),
            map_end_s: twin
                .results
                .iter()
                .map(|r| r.map_phase_end_s)
                .fold(0.0, f64::max),
            end_s: twin.results.iter().map(|r| r.end_s).fold(0.0, f64::max),
        };
        // Plan 0 is always the acceptance storm: 2 of `nodes` killed
        // mid-map-wave. Later plans are seed-derived mixes.
        let plan = if p == 0 {
            storm_plan(nodes, 2, &timing)
        } else {
            derive_plan(sim_seed, nodes, &timing)
        };
        let faulted = chaos_run(System::OsuIb, false, nodes, jobs, gb, sim_seed, &plan);
        let rerun = chaos_run(System::OsuIb, false, nodes, jobs, gb, sim_seed, &plan);
        (p, twin, timing, plan, faulted, rerun)
    });

    println!(
        "\n{:>4} {:>6} {:>7} {:>10} {:>10} {:>7}  gates",
        "plan", "seed", "events", "twin_s", "fault_s", "wall_s"
    );
    let mut failed = false;
    let mut over_budget = false;
    for (p, twin, _timing, plan, faulted, rerun) in &rows {
        let quiesced = faulted.results.len() == jobs && faulted.footprint_total == 0;
        let deterministic = faulted.trace_hash == rerun.trace_hash;
        let lossless = lossless(twin, faulted);
        let twin_d = twin.results.iter().map(|r| r.end_s).fold(0.0, f64::max);
        let fault_d = faulted.results.iter().map(|r| r.end_s).fold(0.0, f64::max);
        let wall = twin.wall_s + faulted.wall_s + rerun.wall_s;
        println!(
            "{:>4} {:>6} {:>7} {:>9.0}s {:>9.0}s {:>6.1}s  {} {} {}   [{}]",
            p,
            seed + *p as u64,
            plan.events.len(),
            twin_d,
            fault_d,
            wall,
            gate("quiesce", quiesced),
            gate("determinism", deterministic),
            gate("no-lost-work", lossless),
            render_plan(plan),
        );
        if !(quiesced && deterministic && lossless) {
            failed = true;
        }
        if let Some(b) = budget_s {
            if wall > b {
                eprintln!("BUDGET EXCEEDED: plan {p} took {wall:.1}s > {b:.1}s");
                over_budget = true;
            }
        }
    }
    let storms = rows
        .iter()
        .filter(|(p, ..)| *p == 0)
        .map(|(_, _, _, plan, ..)| plan.crashes())
        .next()
        .unwrap_or(0);
    println!(
        "{} plans swept ({} jobs x {:.2} GB on {} nodes; storm kills {} nodes mid-map-wave)",
        rows.len(),
        jobs,
        gb,
        nodes,
        storms
    );

    // Combiner-engine acceptance point: WordCount (combiner = reducer) on
    // the in-node combiner engine, one worker killed mid-shuffle and
    // restarted. The crash drops that node's staged aggregates, so passing
    // no-lost-work means the fold re-ran after node loss; the folded gate
    // (shuffle volume under an OSU-IB twin of the same workload) proves
    // aggregation was actually active, not passed through.
    let cnodes = nodes.clamp(3, 6);
    let cjobs = 2;
    let cseed = seed + 10_000;
    let none = rmr_core::FaultPlan::none();
    let osu_twin = chaos_run(System::OsuIb, true, cnodes, cjobs, gb, cseed, &none);
    let comb_twin = chaos_run(System::NodeCombiner, true, cnodes, cjobs, gb, cseed, &none);
    assert_eq!(
        comb_twin.results.len(),
        cjobs,
        "combiner fault-free twin hung"
    );
    let ctiming = TwinTiming {
        submit_s: comb_twin
            .results
            .iter()
            .map(|r| r.start_s)
            .fold(f64::INFINITY, f64::min),
        map_end_s: comb_twin
            .results
            .iter()
            .map(|r| r.map_phase_end_s)
            .fold(0.0, f64::max),
        end_s: comb_twin
            .results
            .iter()
            .map(|r| r.end_s)
            .fold(0.0, f64::max),
    };
    let cplan = rmr_bench::chaos::combiner_plan(&ctiming);
    let cfaulted = chaos_run(System::NodeCombiner, true, cnodes, cjobs, gb, cseed, &cplan);
    let crerun = chaos_run(System::NodeCombiner, true, cnodes, cjobs, gb, cseed, &cplan);
    let quiesced = cfaulted.results.len() == cjobs && cfaulted.footprint_total == 0;
    let deterministic = cfaulted.trace_hash == crerun.trace_hash;
    let no_lost_work = lossless(&comb_twin, &cfaulted);
    let folded = comb_twin.shuffled_bytes() < osu_twin.shuffled_bytes();
    println!(
        "comb {:>6} {:>7} {:>9.0}s {:>9.0}s {:>6.1}s  {} {} {} {}   [{}]",
        cseed,
        cplan.events.len(),
        comb_twin
            .results
            .iter()
            .map(|r| r.end_s)
            .fold(0.0, f64::max),
        cfaulted.results.iter().map(|r| r.end_s).fold(0.0, f64::max),
        comb_twin.wall_s + cfaulted.wall_s + crerun.wall_s,
        gate("quiesce", quiesced),
        gate("determinism", deterministic),
        gate("no-lost-work", no_lost_work),
        gate("folded", folded),
        render_plan(&cplan),
    );
    println!(
        "combiner point: WordCount x{cjobs} on {cnodes} nodes; shuffle {} B combined vs {} B OSU-IB",
        comb_twin.shuffled_bytes(),
        osu_twin.shuffled_bytes()
    );
    if !(quiesced && deterministic && no_lost_work && folded) {
        failed = true;
    }

    if failed || over_budget {
        std::process::exit(1);
    }
}

fn gate(name: &str, ok: bool) -> String {
    format!("{}:{}", name, if ok { "PASS" } else { "FAIL" })
}

/// A single point; prints sim duration and wall time.
fn one(args: &[String]) {
    let gb: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(4.0);
    let system = parse_system(args.get(1).map(String::as_str).unwrap_or("osu"));
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(4).map(|s| s == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let seed: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(42);
    // simcheck: allow(wall-clock) -- reports host-side run time to stderr only
    let t0 = std::time::Instant::now();
    let rec = run_experiment(&Experiment::new(
        "p1",
        bench,
        system,
        Testbed::compute(nodes, disks),
        gb,
        seed,
    ));
    println!(
        "{} {}GB: {:.3}s sim (map_end {:.3}s) in {:.1}s wall",
        rec.system,
        gb,
        rec.duration_s,
        rec.map_phase_end_s,
        t0.elapsed().as_secs_f64()
    );
}

/// A single point with a full phase/metrics breakdown.
fn phases(args: &[String]) {
    let gb: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let system = parse_system(args.get(1).map(String::as_str).unwrap_or("osu"));
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(4).map(|s| s.as_str() == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let ssd = args
        .get(4)
        .map(|s| s.as_str() == "ssdsort")
        .unwrap_or(false);

    let sim = rmr_des::Sim::new(42);
    let testbed = if ssd {
        Testbed::ssd(nodes)
    } else {
        Testbed::compute(nodes, disks)
    };
    let bench = if ssd { Bench::Sort } else { bench };
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size: tuned_block_size(system, bench),
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let conf = tuned_conf(system, bench, &testbed);
    let bytes = (gb * (1u64 << 30) as f64) as u64;
    let out: Rc<RefCell<Option<rmr_core::JobResult>>> = Rc::new(RefCell::new(None));
    let o2 = Rc::clone(&out);
    let c2 = cluster.clone();
    // simcheck: allow(wall-clock) -- reports host-side run time to stderr only
    let t_wall = std::time::Instant::now();
    sim.spawn_named("probe-driver", async move {
        let spec = match bench {
            Bench::TeraSort => {
                teragen(&c2, "/in", bytes, false).await;
                terasort_spec("/in", "/out")
            }
            Bench::Sort => {
                randomwriter(&c2, "/in", bytes, false).await;
                sort_spec("/in", "/out")
            }
        };
        let gen_end = c2.sim.now().as_secs_f64();
        eprintln!("  datagen done at {gen_end:.0}s");
        let res = run_job(&c2, conf, spec).await;
        *o2.borrow_mut() = Some(res);
    })
    .detach();
    match std::env::var("RMR_LIMIT")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(secs) => {
            sim.run_until(rmr_des::SimTime::from_nanos(secs * 1_000_000_000));
        }
        None => {
            sim.run();
        }
    }
    if out.borrow().is_none() {
        eprintln!("JOB DID NOT FINISH by limit; dumping metrics:");
        for (k, v) in sim.metrics().snapshot() {
            if v.abs() > 0.0 {
                eprintln!("  {k} = {v:.3e}");
            }
        }
        std::process::exit(2);
    }
    let res = out.borrow_mut().take().expect("hung");
    println!(
        "== {} {} {}GB n{} d{} ssd={} ==",
        res.name,
        system.label(),
        gb,
        nodes,
        disks,
        ssd
    );
    println!(
        "duration {:.0}s  start {:.0} map_end {:.0} end {:.0}",
        res.duration_s, res.start_s, res.map_phase_end_s, res.end_s
    );
    let n = res.reduce_stats.len() as f64;
    let avg = |f: &dyn Fn(&rmr_core::reduce::ReduceStats) -> f64| {
        res.reduce_stats.iter().map(f).sum::<f64>() / n
    };
    let max = |f: &dyn Fn(&rmr_core::reduce::ReduceStats) -> f64| {
        res.reduce_stats.iter().map(f).fold(0.0f64, f64::max)
    };
    println!("reduce phases (avg/max): shuffle_end {:.0}/{:.0}  merge_end {:.0}/{:.0}  reduce_end {:.0}/{:.0}",
        avg(&|s| s.shuffle_end_s), max(&|s| s.shuffle_end_s),
        avg(&|s| s.merge_end_s), max(&|s| s.merge_end_s),
        avg(&|s| s.reduce_end_s), max(&|s| s.reduce_end_s));
    println!(
        "cache: {} hits / {} misses",
        res.cache_hits, res.cache_misses
    );
    let m = sim.metrics();
    for key in [
        "fs.bytes_written",
        "fs.bytes_read",
        "fs.bytes_read_disk",
        "tt.disk_serve_bytes",
        "tt.cache_hit_bytes",
        "net.bytes_transferred",
        "hdfs.bytes_written",
        "disk.seeks",
        "prefetch.staged",
        "reduce.inmem_merges",
        "reduce.disk_merges",
        "reduce.shuffle_spill_bytes",
        "rdma.loop_iters",
        "rdma.emits",
        "rdma.emit_records",
        "rdma.stalls",
        "rdma.stall_dry",
    ] {
        println!("  {key:24} {:.2e}", m.get(key));
    }
    let mut disk_busy = 0.0;
    let mut cpu_busy = 0.0;
    for w in cluster.workers.iter() {
        disk_busy += w.fs.disks_busy_seconds();
        cpu_busy += w.cpu.busy_seconds();
    }
    println!("  disks busy total       {disk_busy:.0}s");
    println!("  cpu busy total         {cpu_busy:.0}s");
    println!("  events fired           {:.2e}", sim.events_fired() as f64);
    println!("  polls                  {:.2e}", sim.polls() as f64);
    println!(
        "  wall                   {:.1}s",
        t_wall.elapsed().as_secs_f64()
    );
    rmr_des::resource::fluid::FLUID_ADVANCE_WORK
        .with(|w| println!("  fluid advance work     {:.2e}", w.get() as f64));
}

/// A concurrent multi-job OSU-IB mix with the observability recorder on.
/// Writes every `rmr_obs` artifact to `outdir` and self-validates the
/// Chrome trace — a schema violation exits non-zero (the CI smoke job
/// relies on that).
fn obs(args: &[String]) {
    let jobs: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let gb: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let outdir = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| "obs-out".to_string());
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(91);

    let system = System::OsuIb;
    let testbed = Testbed::compute(nodes, 1);
    let sim = rmr_des::Sim::new(seed);
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size: tuned_block_size(system, Bench::TeraSort),
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let conf = tuned_conf(system, Bench::TeraSort, &testbed);
    let bytes = (gb * (1u64 << 30) as f64) as u64;

    let recorder = rmr_obs::Recorder::on(&sim);
    let snapshots: Rc<RefCell<Vec<rmr_obs::RuntimeSnapshot>>> = Rc::new(RefCell::new(Vec::new()));
    let c2 = cluster.clone();
    let rec2 = recorder.clone();
    let snaps2 = Rc::clone(&snapshots);
    let conf2 = conf.clone();
    sim.spawn_named("obs-driver", async move {
        for i in 0..jobs {
            teragen(&c2, &format!("/obs/in{i}"), bytes, false).await;
        }
        let rt = Runtime::with_obs(&c2, conf2.clone(), SchedulePolicy::Fifo, rec2);
        let mut ids = (0..jobs)
            .map(|i| {
                rt.submit(
                    conf2.clone(),
                    terasort_spec(&format!("/obs/in{i}"), &format!("/obs/out{i}")),
                )
            })
            .collect::<Vec<_>>()
            .into_iter();
        if let Some(first) = ids.next() {
            rt.join(first).await;
            // Mid-run snapshot: the remaining jobs are still in flight.
            snaps2.borrow_mut().push(rt.dump());
        }
        for id in ids {
            rt.join(id).await;
        }
        snaps2.borrow_mut().push(rt.dump());
    })
    .detach();
    sim.run();

    std::fs::create_dir_all(&outdir).expect("create outdir");
    let path = |name: &str| format!("{outdir}/{name}");
    let events = recorder.events();
    std::fs::write(path("events.jsonl"), recorder.to_jsonl()).expect("write events.jsonl");

    let trace = rmr_obs::chrome_trace(&events);
    std::fs::write(path("trace.json"), &trace).expect("write trace.json");
    match rmr_obs::validate_chrome_trace(&trace) {
        Ok(c) => println!(
            "trace.json: {} events ({} spans, {} counter samples, {} instants, {} processes)",
            c.n_events, c.n_spans, c.n_counters, c.n_instants, c.n_processes
        ),
        Err(e) => {
            eprintln!("Chrome trace FAILED validation: {e}");
            std::process::exit(1);
        }
    }

    let spans = rmr_obs::spans_from_events(&events);
    let heatmap = rmr_obs::slot_heatmap(&spans, nodes, 64);
    std::fs::write(path("heatmap.txt"), heatmap.to_ascii()).expect("write heatmap.txt");
    std::fs::write(path("heatmap.json"), heatmap.to_json()).expect("write heatmap.json");

    let mut lines = String::new();
    for pts in rmr_obs::queue_depth_traces(&events).values() {
        for pt in pts {
            lines.push_str(&pt.to_json());
            lines.push('\n');
        }
    }
    std::fs::write(path("queue_depth.jsonl"), lines).expect("write queue_depth.jsonl");

    let mut lines = String::new();
    for pts in rmr_obs::cache_pressure(&events).values() {
        for pt in pts {
            lines.push_str(&pt.to_json());
            lines.push('\n');
        }
    }
    std::fs::write(path("cache_pressure.jsonl"), lines).expect("write cache_pressure.jsonl");

    let mut lines = String::new();
    for pts in rmr_obs::shuffle_throughput(&events, 5.0).values() {
        for pt in pts {
            lines.push_str(&pt.to_json());
            lines.push('\n');
        }
    }
    std::fs::write(path("shuffle_throughput.jsonl"), lines)
        .expect("write shuffle_throughput.jsonl");

    let snaps = snapshots.borrow();
    let mut txt = String::new();
    let mut json = String::from("[");
    for (i, s) in snaps.iter().enumerate() {
        let label = if i + 1 == snaps.len() {
            "final"
        } else {
            "mid-run"
        };
        txt.push_str(&format!("== snapshot {} (t={:.1}s) ==\n", label, s.t_s));
        txt.push_str(&s.render());
        txt.push('\n');
        if i > 0 {
            json.push(',');
        }
        json.push_str(&s.to_json());
    }
    json.push(']');
    std::fs::write(path("snapshot.txt"), txt).expect("write snapshot.txt");
    std::fs::write(path("snapshot.json"), json).expect("write snapshot.json");

    let hb = rmr_obs::heartbeat_intervals(&events);
    let lat = rmr_obs::shuffle_latencies(&events);
    println!(
        "{} jobs x {} nodes ({} GB/job, seed {}): {} obs events -> {}/",
        jobs,
        nodes,
        gb,
        seed,
        events.len(),
        outdir
    );
    println!(
        "heartbeat interval: p50 {:.3}s p95 {:.3}s p99 {:.3}s (n={})",
        hb.p50(),
        hb.p95(),
        hb.p99(),
        hb.count()
    );
    println!(
        "shuffle serve time: p50 {:.6}s p95 {:.6}s p99 {:.6}s (n={})",
        lat.p50(),
        lat.p95(),
        lat.p99(),
        lat.count()
    );
    println!("trace_hash: {:016x}", sim.trace_hash());
}
