//! Calibration probe: one Fig 4(a)-style point per system.

use rmr_cluster::{run_all, Bench, Experiment, System, Testbed};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gb: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30.0);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let disks: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let bench = if args.get(4).map(|s| s == "sort").unwrap_or(false) {
        Bench::Sort
    } else {
        Bench::TeraSort
    };
    let systems = [
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
    ];
    let exps: Vec<Experiment> = systems
        .iter()
        .map(|&system| {
            Experiment::new(
                "probe",
                bench,
                system,
                Testbed::compute(nodes, disks),
                gb,
                42,
            )
        })
        .collect();
    let recs = run_all(&exps, 4);
    for r in &recs {
        println!(
            "{:28} {:6.0}s  (map_end {:5.0}s, shuffled {:.1} GB, cache {:.0}%)",
            r.system,
            r.duration_s,
            r.map_phase_end_s,
            r.shuffled_bytes as f64 / 1e9,
            r.cache_hit_rate * 100.0
        );
    }
}
