//! Regenerates the paper's fig4b (see rmr_bench::fig4b for the grid).

fn main() {
    let threads = rmr_bench::default_threads();
    rmr_bench::run_figure(&rmr_bench::fig4b(), threads);
}
