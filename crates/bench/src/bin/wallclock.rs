//! Wall-clock benchmark harness: times a fixed scenario set and maintains
//! `BENCH_wallclock.json` at the repo root — the simulator's host-performance
//! trajectory across PRs.
//!
//! Usage:
//!   wallclock [--quick] [--label NAME] [--out PATH] [--threads N]
//!
//! Scenarios (full mode):
//!   fig4a_30gb   — TeraSort 30 GB, 4 nodes × 1 HDD, all four Fig 4(a) systems
//!   fig4b_100gb  — TeraSort 100 GB, 8 nodes × 1 HDD, all four Fig 4(b) systems
//!   multijob     — 4 × 2 GB TeraSorts through one persistent OSU-IB runtime:
//!                  sequential joins ("seq", the old one-job-at-a-time shape)
//!                  vs a single concurrent FIFO submission ("fifo")
//!   engines      — the shuffle-volume engines: WordCount A/B rows (combiner
//!                  on/off × OSU-IB/in-node-combiner, pinning what each
//!                  aggregation layer takes off the wire), the in-node
//!                  combiner at the fig4a shape (TeraSort has no combiner,
//!                  so its row must match fig4a's OSU-IB bit-for-bit), and
//!                  striped multi-rail at the fig4b 100 GB shape (vs
//!                  fig4b's single-rail OSU-IB row)
//!   micro        — fluid-churn (three sizes, for the sub-quadratic check),
//!                  event-heap, and merge-PQ (real + synthetic) kernels
//!
//! `--quick` shrinks every scenario for CI smoke runs (~seconds): the numbers
//! are only good for "did it regress by 10x", not for the trajectory.
//!
//! The output file holds one flat JSON object per run, one per line, tagged
//! with `--label` (default "current"). Re-running with the same label
//! replaces that label's runs and keeps the others, so a before/after pair
//! lives in one committed file. When both the current label and "before" are
//! present, a speedup table is printed.
//!
//! Wall-clock timing is inherently host-specific; compare labels only within
//! one machine. Simulated results (`sim_s`) must NOT move between labels
//! beyond EXPERIMENTS.md tolerances — that is the correctness cross-check.

use std::cell::RefCell;
use std::rc::Rc;
// This harness exists to time the simulator itself on the host machine;
// wall-clock reads are its whole point and never feed sim state.
use std::time::Instant; // simcheck: allow(wall-clock)

use rmr_bench::sweep::sweep;
use rmr_bench::trajectory::{write_results, Run};
use rmr_cluster::{
    run_multijob, tuned_block_size, tuned_conf, Bench, MultiJobExperiment, System, Testbed,
};
use rmr_core::cluster::Cluster;
use rmr_core::merge::{Emit, StreamingMerge};
use rmr_core::record::{Record, Segment};
use rmr_core::run_job;
use rmr_core::SchedulePolicy;
use rmr_des::resource::fluid::{Fluid, FLUID_ADVANCE_WORK};
use rmr_des::{Sim, SimDuration};
use rmr_hdfs::HdfsConfig;
use rmr_workloads::{
    teragen, terasort_spec, textgen_vocab, wordcount_spec, wordcount_spec_no_combiner,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut label = "current".to_string();
    let mut out_path = "BENCH_wallclock.json".to_string();
    let mut threads = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--label" => {
                i += 1;
                label = args.get(i).expect("--label needs a value").clone();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a value").clone();
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads needs a number");
            }
            other => {
                eprintln!(
                    "unknown arg {other}; usage: wallclock [--quick] [--label NAME] \
                     [--out PATH] [--threads N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Scenario list, in trajectory-file order. Each task runs entirely on
    // one worker thread of the sweep pool, so per-run wall times and the
    // thread-local fluid counter stay clean; more than one thread trades
    // wall-time comparability (host contention) for turnaround, so the
    // default stays sequential.
    type Task = Box<dyn Fn() -> Run + Send + Sync>;
    let mut tasks: Vec<Task> = Vec::new();

    // -- Macro scenarios: the paper's headline figure points.
    let (gb_a, gb_b, nodes_a, nodes_b) = if quick {
        (2.0, 2.0, 2, 2)
    } else {
        (30.0, 100.0, 4, 8)
    };
    let fig4a = [
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
    ];
    let fig4b = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    for sys in fig4a {
        tasks.push(Box::new(move || {
            run_macro("fig4a_30gb", sys, gb_a, nodes_a)
        }));
    }
    for sys in fig4b {
        tasks.push(Box::new(move || {
            run_macro("fig4b_100gb", sys, gb_b, nodes_b)
        }));
    }

    // -- Multi-job runtime: the same job mix joined one at a time vs
    // submitted concurrently onto shared slots.
    for concurrent in [false, true] {
        tasks.push(Box::new(move || run_multijob_case(quick, concurrent)));
    }

    // -- Shuffle-volume engines: WordCount A/B and the new-engine macro
    // points at the headline figure shapes.
    let wc_lines = if quick { 20_000 } else { 120_000 };
    let wc_nodes = if quick { 3 } else { 4 };
    for (system, combine) in [
        (System::OsuIb, false),
        (System::OsuIb, true),
        (System::NodeCombiner, false),
        (System::NodeCombiner, true),
    ] {
        tasks.push(Box::new(move || {
            run_wordcount_ab(system, combine, wc_lines, wc_nodes)
        }));
    }
    tasks.push(Box::new(move || {
        run_macro("engines", System::NodeCombiner, gb_a, nodes_a)
    }));
    tasks.push(Box::new(move || {
        run_macro("engines", System::MultiRail, gb_b, nodes_b)
    }));

    // -- Micro kernels.
    let churn_sizes: &[usize] = if quick {
        &[100, 200]
    } else {
        &[500, 1000, 2000]
    };
    for &n in churn_sizes {
        tasks.push(Box::new(move || micro_fluid_churn(n)));
    }
    tasks.push(Box::new(move || {
        if quick {
            micro_event_heap(200, 20)
        } else {
            micro_event_heap(2000, 100)
        }
    }));
    let (k, per) = if quick { (32, 2_000) } else { (128, 20_000) };
    tasks.push(Box::new(move || micro_merge_pq(k, per, true)));
    tasks.push(Box::new(move || micro_merge_pq(k, per, false)));

    let runs = sweep(tasks.len(), threads, |i| tasks[i]());

    write_results(&out_path, &label, quick, &runs);
    println!(
        "\nwrote {} runs (label {label:?}) to {out_path}",
        runs.len()
    );
}

/// Runs one figure point in-process and captures host-side counters.
fn run_macro(scenario: &'static str, system: System, gb: f64, nodes: usize) -> Run {
    let bench = Bench::TeraSort;
    let testbed = Testbed::compute(nodes, 1);
    let sim = Sim::new(42);
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size: tuned_block_size(system, bench),
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let conf = tuned_conf(system, bench, &testbed);
    let bytes = (gb * (1u64 << 30) as f64) as u64;
    let out: Rc<RefCell<Option<rmr_core::JobResult>>> = Rc::new(RefCell::new(None));
    let o2 = Rc::clone(&out);
    let c2 = cluster.clone();
    sim.spawn_named("wallclock-driver", async move {
        teragen(&c2, "/in", bytes, false).await;
        let spec = terasort_spec("/in", "/out");
        let res = run_job(&c2, conf, spec).await;
        *o2.borrow_mut() = Some(res);
    })
    .detach();
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let fluid_work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    let res = out
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("{scenario}/{} hung", system.label()));
    let run = Run {
        scenario,
        case: system.label().to_string(),
        wall_s,
        sim_s: res.duration_s,
        events: sim.events_fired(),
        polls: sim.polls(),
        fluid_work,
        items: 0,
        nodes: nodes as u64,
        attempts: (res.maps + res.reduces + res.failed_map_attempts + res.failed_reduce_attempts)
            as u64,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: res.shuffled_bytes,
    };
    eprintln!(
        "  {scenario:12} {:12} sim {:6.0}s  wall {:6.2}s  events {:.2e}  fluid_work {:.2e}",
        run.case, run.sim_s, run.wall_s, run.events as f64, run.fluid_work as f64
    );
    run
}

/// Runs the multi-job mix through the persistent runtime and reports the
/// makespan: summed job durations when joined sequentially, the slowest
/// job's duration when everything is submitted at once.
fn run_multijob_case(quick: bool, concurrent: bool) -> Run {
    let (jobs, gb, nodes) = if quick { (2, 0.25, 2) } else { (4, 2.0, 4) };
    let exp = MultiJobExperiment {
        id: "wallclock-mj".to_string(),
        system: System::OsuIb,
        testbed: Testbed::compute(nodes, 1),
        jobs,
        data_gb_per_job: gb,
        policy: SchedulePolicy::Fifo,
        concurrent,
        seed: 42,
    };
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    let recs = run_multijob(&exp);
    let wall_s = t0.elapsed().as_secs_f64();
    let fluid_work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    let sim_s = if concurrent {
        recs.iter().map(|r| r.duration_s).fold(0.0, f64::max)
    } else {
        recs.iter().map(|r| r.duration_s).sum()
    };
    let attempts: usize = recs
        .iter()
        .map(|r| r.maps + r.reduces + r.failed_maps + r.failed_reduces)
        .sum();
    let run = Run {
        scenario: "multijob",
        case: format!(
            "{}x{}gb_{}",
            jobs,
            gb,
            if concurrent { "fifo" } else { "seq" }
        ),
        wall_s,
        sim_s,
        events: 0,
        polls: 0,
        fluid_work,
        items: jobs as u64,
        nodes: nodes as u64,
        attempts: attempts as u64,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: recs.iter().map(|r| r.shuffled_bytes).sum(),
    };
    eprintln!(
        "  {:12} {:16} sim {:6.0}s  wall {:6.2}s  jobs {}",
        "multijob", run.case, run.sim_s, run.wall_s, run.items
    );
    run
}

/// WordCount A/B: `system`'s engine with the job's combiner on or off
/// (`wordcount_spec` vs `wordcount_spec_no_combiner`). The no-combiner rows
/// pin the raw map-output volume the engines would otherwise shuffle; the
/// combined rows show what the per-map combiner and — on the in-node
/// combiner engine — the cross-map fold leave on the wire.
fn run_wordcount_ab(system: System, combine: bool, lines: usize, nodes: usize) -> Run {
    let testbed = Testbed::compute(nodes, 1);
    let sim = Sim::new(42);
    // ~0.9 MB textgen blobs over 512 KB blocks: every blob is its own block,
    // so the input spans several map splits and the in-node stage has
    // co-located waves to fold.
    let cluster = Cluster::build(
        &sim,
        system.fabric(),
        &testbed.node_specs(),
        HdfsConfig {
            block_size: 512 << 10,
            replication: 1,
            packet_size: 256 << 10,
        },
    );
    let mut conf = tuned_conf(system, Bench::TeraSort, &testbed);
    conf.num_reduces = nodes;
    let out: Rc<RefCell<Option<rmr_core::JobResult>>> = Rc::new(RefCell::new(None));
    let o2 = Rc::clone(&out);
    let c2 = cluster.clone();
    sim.spawn_named("wallclock-wc", async move {
        // A 30k-word vocabulary: one map's ~100k tokens cover most of it, so
        // the map-side combiner leaves ~a-vocabulary of records per map and the
        // cross-map in-node fold is what actually shrinks the wire volume.
        textgen_vocab(&c2, "/wc/in", lines, 10, 10_000, 30_000).await;
        let spec = if combine {
            wordcount_spec("/wc/in", "/wc/out")
        } else {
            wordcount_spec_no_combiner("/wc/in", "/wc/out")
        };
        let res = run_job(&c2, conf, spec).await;
        *o2.borrow_mut() = Some(res);
    })
    .detach();
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let fluid_work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    let case = format!(
        "wc_{}_{}",
        if combine { "combine" } else { "nocombine" },
        system.label()
    );
    let res = out
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("engines/{case} hung"));
    let run = Run {
        scenario: "engines",
        case,
        wall_s,
        sim_s: res.duration_s,
        events: sim.events_fired(),
        polls: sim.polls(),
        fluid_work,
        items: lines as u64,
        nodes: nodes as u64,
        attempts: (res.maps + res.reduces + res.failed_map_attempts + res.failed_reduce_attempts)
            as u64,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: res.shuffled_bytes,
    };
    eprintln!(
        "  {:12} {:32} sim {:6.1}s  wall {:6.2}s  shuffle {} B",
        "engines", run.case, run.sim_s, run.wall_s, run.shuffle_bytes
    );
    run
}

/// Fluid-solver churn: `n` consumers with staggered arrivals each run
/// `ROUNDS` transfers on one shared resource, so arrivals/completions happen
/// under persistently high concurrency. `fluid_work` per completion is the
/// quadratic-vs-linear tell: it must grow ~linearly with `n`.
fn micro_fluid_churn(n: usize) -> Run {
    const ROUNDS: usize = 4;
    let sim = Sim::new(7);
    let f = Fluid::new(&sim, 1e6);
    for i in 0..n {
        let f = f.clone();
        let s = sim.clone();
        sim.spawn_named(format!("churn-{i}"), async move {
            s.sleep(SimDuration::from_millis((i % 97) as u64)).await;
            for r in 0..ROUNDS {
                f.consume(1_000.0 + ((i * 31 + r * 7) % 500) as f64).await;
            }
        })
        .detach();
    }
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let fluid_work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    let run = Run {
        scenario: "micro",
        case: format!("fluid_churn_n{n}"),
        wall_s,
        sim_s: 0.0,
        events: sim.events_fired(),
        polls: sim.polls(),
        fluid_work,
        items: (n * ROUNDS) as u64,
        nodes: 0,
        attempts: 0,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: 0,
    };
    eprintln!(
        "  {:12} {:16} wall {:6.3}s  completions {}  fluid_work {}  (work/completion {:.1})",
        "micro",
        run.case,
        run.wall_s,
        run.items,
        run.fluid_work,
        run.fluid_work as f64 / run.items as f64
    );
    run
}

/// Event-heap churn: many concurrent timers exercise schedule/fire/poll.
fn micro_event_heap(tasks: usize, rounds: usize) -> Run {
    let sim = Sim::new(11);
    for i in 0..tasks {
        let s = sim.clone();
        sim.spawn_named(format!("timer-{i}"), async move {
            for r in 0..rounds {
                let us = ((i * 37 + r * 11) % 1_000 + 1) as u64;
                s.sleep(SimDuration::from_micros(us)).await;
            }
        })
        .detach();
    }
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let run = Run {
        scenario: "micro",
        case: "event_heap".to_string(),
        wall_s,
        sim_s: 0.0,
        events: sim.events_fired(),
        polls: sim.polls(),
        fluid_work: 0,
        items: (tasks * rounds) as u64,
        nodes: 0,
        attempts: 0,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: 0,
    };
    eprintln!(
        "  {:12} {:16} wall {:6.3}s  events {}  polls {}",
        "micro", run.case, run.wall_s, run.events, run.polls
    );
    run
}

/// Merge-PQ kernel: a k-way [`StreamingMerge`] fed packet-by-packet, drained
/// through `emit`. Real mode heap-merges records by key; synthetic mode
/// exercises the proportional-draw path the paper-scale runs use.
fn micro_merge_pq(k: usize, per_source: u64, real: bool) -> Run {
    const PKT_RECORDS: u64 = 1_024;
    let mut packets: Vec<VecPackets> = (0..k)
        .map(|i| VecPackets::build(i, k, per_source, PKT_RECORDS, real))
        .collect();
    let mut m = StreamingMerge::new(vec![per_source; k]);
    for (i, p) in packets.iter_mut().enumerate() {
        if let Some(seg) = p.next() {
            m.append(i, seg);
        }
    }
    let mut emitted = 0u64;
    let t0 = Instant::now(); // simcheck: allow(wall-clock) host-side timing
    loop {
        match m.emit(4_096) {
            Emit::Data(seg) => emitted += seg.records,
            Emit::Stalled(dry) => {
                for i in dry {
                    let seg = packets[i].next().expect("stalled source has no more data");
                    m.append(i, seg);
                }
            }
            Emit::Done => break,
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(emitted, per_source * k as u64);
    let run = Run {
        scenario: "micro",
        case: format!("merge_pq_{}", if real { "real" } else { "synth" }),
        wall_s,
        sim_s: 0.0,
        events: 0,
        polls: 0,
        fluid_work: 0,
        items: emitted,
        nodes: 0,
        attempts: 0,
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
        shuffle_bytes: 0,
    };
    eprintln!(
        "  {:12} {:16} wall {:6.3}s  records {}",
        "micro", run.case, run.wall_s, run.items
    );
    run
}

/// Per-source packet generator for the merge kernel. Real keys interleave
/// globally (source i holds keys i, i+k, i+2k, …) so the PQ switches source
/// on every record — the worst case for the head-selection scan.
struct VecPackets {
    source: usize,
    stride: usize,
    next_j: u64,
    remaining: u64,
    pkt_records: u64,
    real: bool,
}

impl VecPackets {
    fn build(source: usize, stride: usize, total: u64, pkt_records: u64, real: bool) -> Self {
        VecPackets {
            source,
            stride,
            next_j: 0,
            remaining: total,
            pkt_records,
            real,
        }
    }

    fn next(&mut self) -> Option<Segment> {
        if self.remaining == 0 {
            return None;
        }
        let n = self.remaining.min(self.pkt_records);
        self.remaining -= n;
        if self.real {
            let recs: Vec<Record> = (0..n)
                .map(|d| {
                    let key = (self.source as u64 + (self.next_j + d) * self.stride as u64)
                        .to_be_bytes()
                        .to_vec();
                    Record::new(key, b"valuevalue".to_vec())
                })
                .collect();
            self.next_j += n;
            Some(Segment::from_sorted(recs))
        } else {
            self.next_j += n;
            Some(Segment::synthetic(n, n * 100))
        }
    }
}
