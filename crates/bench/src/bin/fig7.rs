//! Regenerates the paper's fig7 (see rmr_bench::fig7 for the grid).

fn main() {
    let threads = rmr_bench::default_threads();
    rmr_bench::run_figure(&rmr_bench::fig7(), threads);
}
