//! Seed-derived fault plans for the chaos campaign (`probe chaos`).
//!
//! A chaos campaign is a sweep of deterministic [`FaultPlan`]s, each derived
//! from a seed and from the timing of a fault-free *twin* run of the same
//! workload. Deriving from the twin is what makes "mid-map-wave" a real
//! guarantee rather than a guess: the twin tells us when the map wave and
//! shuffle actually happen for this cluster size and data volume, and the
//! plan places crashes and network-fault windows inside those phases.
//!
//! Everything here is plain arithmetic on a splitmix64 stream — no host
//! randomness, no wall clock — so a (seed, workload) pair always produces
//! the same plan, and the driver can replay any failing campaign point.

use rmr_core::{FaultEvent, FaultPlan};
use rmr_des::{SimDuration, SimTime};

/// splitmix64: a tiny, well-mixed deterministic stream. Good enough to
/// scatter fault times; never used for anything statistical.
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Stream seeded so that nearby seeds still diverge immediately.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Phase timing extracted from the fault-free twin, in virtual seconds.
#[derive(Debug, Clone, Copy)]
pub struct TwinTiming {
    /// Earliest job submission.
    pub submit_s: f64,
    /// Latest map-phase end across jobs.
    pub map_end_s: f64,
    /// Latest job end.
    pub end_s: f64,
}

impl TwinTiming {
    fn at(&self, frac: f64) -> SimTime {
        let s = self.submit_s + frac * (self.end_s - self.submit_s);
        SimTime::from_nanos((s.max(0.0) * 1e9) as u64)
    }

    /// A point inside the map wave (`frac` ∈ [0, 1] across it).
    pub fn mid_map_wave(&self, frac: f64) -> SimTime {
        let s = self.submit_s + frac * (self.map_end_s - self.submit_s);
        SimTime::from_nanos((s.max(0.0) * 1e9) as u64)
    }

    /// A point inside the shuffle/reduce tail (`frac` ∈ [0, 1] from map-wave
    /// end to job end) — where staged in-node aggregates are at risk.
    pub fn mid_shuffle(&self, frac: f64) -> SimTime {
        let s = self.map_end_s + frac * (self.end_s - self.map_end_s);
        SimTime::from_nanos((s.max(0.0) * 1e9) as u64)
    }
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_nanos((s * 1e9) as u64)
}

/// The campaign's fixed opening number: kill `victims` of `nodes` workers
/// mid-map-wave (staggered by a couple of seconds, like a rack PDU browning
/// out), and bring both back while the job is still running. This is the
/// acceptance-gate storm — it must survive on every seed.
pub fn storm_plan(nodes: usize, victims: usize, twin: &TwinTiming) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let victims = victims.min(nodes.saturating_sub(1));
    for v in 0..victims {
        // Spread victims across the cluster; never the same node twice.
        let tt_idx = 1 + v * (nodes - 1) / victims.max(1);
        plan = plan.with(FaultEvent::Crash {
            tt_idx,
            at: twin.mid_map_wave(0.45) + secs(2.0) * v as u64,
            restart_after: Some(secs(20.0 + 15.0 * v as f64)),
        });
    }
    plan
}

/// The combiner-engine acceptance plan: one worker killed mid-shuffle and
/// restarted while the job is still running. Against the in-node combiner
/// engine the crash drops that node's staged per-node aggregates, so a
/// campaign point passing no-lost-work with this plan proves the fold
/// re-runs after node loss.
pub fn combiner_plan(twin: &TwinTiming) -> FaultPlan {
    FaultPlan::none().with(FaultEvent::Crash {
        tt_idx: 1,
        at: twin.mid_shuffle(0.30),
        restart_after: Some(secs(15.0)),
    })
}

/// A seed-derived plan: 1–3 staggered crash+restart cycles placed across
/// the job's lifetime, plus up to two link-degradation windows and at most
/// one (lossless) partition window. All crashes restart, so a campaign
/// point can also gate on the runtime's state footprint draining to zero.
pub fn derive_plan(seed: u64, nodes: usize, twin: &TwinTiming) -> FaultPlan {
    let mut rng = ChaosRng::new(seed);
    let mut plan = FaultPlan::none();

    let crashes = 1 + rng.below(3) as usize;
    let mut used = std::collections::BTreeSet::new();
    for _ in 0..crashes {
        let tt_idx = rng.below(nodes as u64) as usize;
        // Distinct victims keep the plan readable; a double-kill of one
        // node is covered by restart epochs anyway.
        if !used.insert(tt_idx) {
            continue;
        }
        plan = plan.with(FaultEvent::Crash {
            tt_idx,
            at: twin.at(rng.range(0.10, 0.80)),
            restart_after: Some(secs(rng.range(10.0, 60.0))),
        });
    }

    for _ in 0..rng.below(3) {
        let tt_idx = rng.below(nodes as u64) as usize;
        let start = rng.range(0.05, 0.70);
        let len = rng.range(0.05, 0.25);
        plan = plan.with(FaultEvent::Degrade {
            tt_idx,
            start: twin.at(start),
            end: twin.at((start + len).min(0.95)),
            factor: rng.range(0.2, 0.8),
        });
    }

    if rng.below(2) == 1 {
        let tt_idx = rng.below(nodes as u64) as usize;
        let start = rng.range(0.10, 0.70);
        plan = plan.with(FaultEvent::Partition {
            tt_idx,
            start: twin.at(start),
            end: twin.at(start) + secs(rng.range(2.0, 12.0)),
        });
    }
    plan
}

/// One-line human rendering of a plan for campaign logs.
pub fn render_plan(plan: &FaultPlan) -> String {
    let mut parts = Vec::new();
    for ev in &plan.events {
        parts.push(match ev {
            FaultEvent::Crash {
                tt_idx,
                at,
                restart_after,
            } => match restart_after {
                Some(d) => format!(
                    "crash tt{} @{:.0}s +{:.0}s",
                    tt_idx,
                    at.as_secs_f64(),
                    d.as_secs_f64()
                ),
                None => format!("crash tt{} @{:.0}s (down)", tt_idx, at.as_secs_f64()),
            },
            FaultEvent::Degrade {
                tt_idx,
                start,
                end,
                factor,
            } => format!(
                "degrade tt{} [{:.0},{:.0}]s x{:.2}",
                tt_idx,
                start.as_secs_f64(),
                end.as_secs_f64(),
                factor
            ),
            FaultEvent::Partition { tt_idx, start, end } => format!(
                "partition tt{} [{:.0},{:.0}]s",
                tt_idx,
                start.as_secs_f64(),
                end.as_secs_f64()
            ),
            FaultEvent::FailMapOnce { job_ord, map_idx } => {
                format!("fail-map j{job_ord}#{map_idx}")
            }
            FaultEvent::FailReduceOnce {
                job_ord,
                reduce_idx,
            } => format!("fail-reduce j{job_ord}#{reduce_idx}"),
        });
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWIN: TwinTiming = TwinTiming {
        submit_s: 10.0,
        map_end_s: 110.0,
        end_s: 210.0,
    };

    #[test]
    fn storm_kills_two_of_sixteen_mid_map_wave() {
        let plan = storm_plan(16, 2, &TWIN);
        assert_eq!(plan.crashes(), 2);
        let mut victims = std::collections::BTreeSet::new();
        for ev in &plan.events {
            if let FaultEvent::Crash {
                tt_idx,
                at,
                restart_after,
            } = ev
            {
                victims.insert(*tt_idx);
                let t = at.as_secs_f64();
                assert!(
                    t > TWIN.submit_s && t < TWIN.map_end_s,
                    "storm crash at {t:.0}s is outside the map wave"
                );
                assert!(restart_after.is_some(), "storm victims must come back");
            }
        }
        assert_eq!(victims.len(), 2, "storm victims are distinct nodes");
    }

    #[test]
    fn combiner_plan_kills_one_mid_shuffle_and_restarts() {
        let plan = combiner_plan(&TWIN);
        assert_eq!(plan.crashes(), 1);
        match &plan.events[0] {
            FaultEvent::Crash {
                at, restart_after, ..
            } => {
                let t = at.as_secs_f64();
                assert!(
                    t > TWIN.map_end_s && t < TWIN.end_s,
                    "crash at {t:.0}s is not inside the shuffle tail"
                );
                assert!(restart_after.is_some(), "the victim must come back");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn derived_plans_are_seed_deterministic() {
        let a = derive_plan(7, 16, &TWIN);
        let b = derive_plan(7, 16, &TWIN);
        assert_eq!(a, b);
        let c = derive_plan(8, 16, &TWIN);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn derived_plans_always_restart_their_victims() {
        for seed in 0..64 {
            let plan = derive_plan(seed, 12, &TWIN);
            assert!(plan.crashes() >= 1, "seed {seed}: at least one crash");
            for ev in &plan.events {
                if let FaultEvent::Crash { restart_after, .. } = ev {
                    assert!(restart_after.is_some(), "seed {seed}: permanent kill");
                }
                if let FaultEvent::Degrade { factor, .. } = ev {
                    assert!(*factor > 0.0 && *factor <= 1.0, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn render_covers_every_variant() {
        let plan = FaultPlan::fail_map_once(0, 3)
            .with(FaultEvent::Crash {
                tt_idx: 1,
                at: SimTime::ZERO,
                restart_after: None,
            })
            .with(FaultEvent::Partition {
                tt_idx: 2,
                start: SimTime::ZERO,
                end: SimTime::ZERO,
            });
        let s = render_plan(&plan);
        assert!(s.contains("fail-map"));
        assert!(s.contains("crash tt1"));
        assert!(s.contains("partition tt2"));
    }
}
