//! A hand-rolled scoped worker pool for running many independent
//! single-threaded simulations in parallel, with deterministic output
//! ordering.
//!
//! Every harness sweep (figure grids, wall-clock scenarios, scale probes)
//! funnels through [`sweep`]: `n` work items are claimed off a shared atomic
//! counter by `threads` scoped workers, and each result lands in its item's
//! own slot. Which *thread* runs which item varies run to run; which *slot*
//! an item's result occupies never does, so the returned `Vec` — and
//! anything serialised from it — is byte-identical at any thread count.
//! Determinism inside an item is the simulator's job (each item owns a whole
//! single-threaded [`rmr_des::Sim`]); determinism across items is this
//! module's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `run(0..n)` across `threads` OS-thread workers and returns the
/// results in index order.
///
/// `run` must not communicate between items (no shared mutable state beyond
/// its own index) — that is what keeps the sweep replay-deterministic.
/// Panics in `run` propagate: the scope unwinds and re-raises after all
/// workers stop.
pub fn sweep<T, F>(n: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Host-side parallelism only: each item owns a whole single-threaded
    // Sim, workers share nothing but the claim counter, and results are
    // written to per-item slots, so output order (and every byte derived
    // from it) is identical at any thread count.
    // simcheck: allow(thread-spawn)
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                *slots[i].lock().unwrap() = Some(run(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker skipped a slot"))
        .collect()
}

/// [`sweep`] over a slice: `f` sees each item (and its index) and the
/// results come back in input order.
pub fn sweep_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    sweep(items.len(), threads, |i| f(&items[i], i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_at_any_thread_count() {
        for threads in [1, 2, 8, 64] {
            let out = sweep(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<u32> = sweep(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_map_passes_items_and_indices() {
        let items = ["a", "bb", "ccc"];
        let out = sweep_map(&items, 2, |s, i| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = sweep(100, 8, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }
}
