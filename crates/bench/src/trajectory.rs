//! The `BENCH_wallclock.json` trajectory file: flat JSON run lines keyed by
//! label, shared by the `wallclock` harness and `probe scale`.
//!
//! One [`Run`] per line. Re-writing with a label replaces that label's rows
//! and keeps every other label's, so before/after pairs (and the scale
//! probe's node-count series) accumulate in one committed file.

/// One benchmark run, serialised as a flat JSON object.
pub struct Run {
    /// Scenario family ("fig4a_30gb", "micro", "scale", ...).
    pub scenario: &'static str,
    /// Case within the scenario ("OSU-IB (32Gbps)", "n1024_j8", ...).
    pub case: String,
    /// Host wall-clock seconds for the run.
    pub wall_s: f64,
    /// Simulated job duration (macro runs; 0 for micro kernels).
    pub sim_s: f64,
    /// Executor events fired.
    pub events: u64,
    /// Task polls.
    pub polls: u64,
    /// Fluid-solver advance work (thread-local counter delta).
    pub fluid_work: u64,
    /// Work items processed by the kernel under test (micro runs; for the
    /// macro runs, the record count is not the interesting denominator).
    pub items: u64,
    /// Worker node count (scale runs; 0 where the cluster size is implied
    /// by the scenario).
    pub nodes: u64,
    /// Task attempts launched (scale runs; 0 elsewhere).
    pub attempts: u64,
    /// Job-latency percentiles, virtual seconds (service runs; 0 elsewhere).
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    /// Shuffle bytes actually served to reducers (macro runs; 0 for the
    /// micro kernels, which move no shuffle traffic).
    pub shuffle_bytes: u64,
}

impl Run {
    /// A run with every counter zeroed — fill in what the scenario measures.
    pub fn blank(scenario: &'static str, case: String) -> Run {
        Run {
            scenario,
            case,
            wall_s: 0.0,
            sim_s: 0.0,
            events: 0,
            polls: 0,
            fluid_work: 0,
            items: 0,
            nodes: 0,
            attempts: 0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            shuffle_bytes: 0,
        }
    }
}

pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialises one run line. Field order is part of the file format: the
/// determinism gates byte-compare these lines across thread counts.
pub fn run_line(label: &str, quick: bool, r: &Run) -> String {
    format!(
        "{{\"label\":\"{}\",\"scenario\":\"{}\",\"case\":\"{}\",\"quick\":{},\
         \"wall_s\":{:.4},\"sim_s\":{:.2},\"events\":{},\"polls\":{},\
         \"fluid_work\":{},\"items\":{},\"nodes\":{},\"attempts\":{},\
         \"p50_s\":{:.4},\"p95_s\":{:.4},\"p99_s\":{:.4},\
         \"shuffle_bytes\":{}}}",
        json_escape(label),
        json_escape(r.scenario),
        json_escape(&r.case),
        quick,
        r.wall_s,
        r.sim_s,
        r.events,
        r.polls,
        r.fluid_work,
        r.items,
        r.nodes,
        r.attempts,
        r.p50_s,
        r.p95_s,
        r.p99_s,
        r.shuffle_bytes,
    )
}

/// Pulls a numeric field out of a flat run line (good enough for our own
/// serialisation format).
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Writes the trajectory file: keeps run lines from other labels, replaces
/// this label's, and prints a speedup table against "before" if present.
pub fn write_results(path: &str, label: &str, quick: bool, runs: &[Run]) {
    let kept: Vec<String> = std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| l.starts_with("{\"label\""))
                .map(|l| l.trim_end_matches(',').to_string())
                .filter(|l| field_str(l, "label") != Some(label))
                .collect()
        })
        .unwrap_or_default();

    let mut lines = kept.clone();
    for r in runs {
        lines.push(run_line(label, quick, r));
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"generated_by\": \"rmr-bench wallclock\",\n");
    out.push_str("  \"runs\": [\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(l);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write trajectory file");

    // Speedup table vs "before" (same scenario/case, same machine assumed).
    if label != "before" {
        let mut printed_header = false;
        for r in runs {
            let before = kept.iter().find(|l| {
                field_str(l, "label") == Some("before")
                    && field_str(l, "scenario") == Some(r.scenario)
                    && field_str(l, "case").map(str::to_string) == Some(r.case.clone())
            });
            if let Some(b) = before {
                let (Some(bw), w) = (field_f64(b, "wall_s"), r.wall_s) else {
                    continue;
                };
                if !printed_header {
                    println!(
                        "\n{:12} {:16} {:>9} {:>9} {:>8}",
                        "scenario", "case", "before", label, "speedup"
                    );
                    printed_header = true;
                }
                println!(
                    "{:12} {:16} {:8.2}s {:8.2}s {:7.2}x",
                    r.scenario,
                    r.case,
                    bw,
                    w,
                    bw / w.max(1e-9)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_line_has_the_full_column_set_in_order() {
        let mut r = Run::blank("scale", "n64_j2".to_string());
        r.wall_s = 1.5;
        r.nodes = 64;
        r.attempts = 1234;
        let line = run_line("lbl", false, &r);
        let keys: Vec<&str> = [
            "label",
            "scenario",
            "case",
            "quick",
            "wall_s",
            "sim_s",
            "events",
            "polls",
            "fluid_work",
            "items",
            "nodes",
            "attempts",
            "p50_s",
            "p95_s",
            "p99_s",
            "shuffle_bytes",
        ]
        .to_vec();
        let mut at = 0;
        for k in keys {
            let pat = format!("\"{k}\":");
            let pos = line[at..].find(&pat).unwrap_or_else(|| {
                panic!("missing or out-of-order key {k} in {line}");
            });
            at += pos + pat.len();
        }
        assert!(line.contains("\"nodes\":64"));
        assert!(line.contains("\"attempts\":1234"));
    }

    #[test]
    fn field_parsers_round_trip() {
        let mut r = Run::blank("micro", "kernel".to_string());
        r.wall_s = 0.25;
        r.events = 42;
        let line = run_line("x", true, &r);
        assert_eq!(field_str(&line, "scenario"), Some("micro"));
        assert_eq!(field_f64(&line, "wall_s"), Some(0.25));
        assert_eq!(field_f64(&line, "events"), Some(42.0));
    }
}
