//! # rmr-bench — the per-figure benchmark harness
//!
//! One binary per table/figure in the paper's evaluation (§IV): each defines
//! the experiment grid exactly as the figure sweeps it, runs every point as
//! an independent deterministic simulation (in parallel across OS threads),
//! prints the figure's series, and checks the paper's quantified claims
//! against the measured improvements. Raw rows are written as JSON lines
//! under `results/` for EXPERIMENTS.md.

use std::io::Write as _;

use rmr_cluster::{
    format_table, run_experiment_traced, Bench, Experiment, RunRecord, System, Testbed,
};

pub mod chaos;
pub mod service;
pub mod sweep;
pub mod trajectory;

/// A quantified claim from the paper's text, checked against measurements.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Free-text source ("§IV-B, 100GB, 1 disk").
    pub context: &'static str,
    /// Dataset size the claim is about.
    pub data_gb: f64,
    /// Disks per node.
    pub disks: usize,
    /// SSD testbed?
    pub ssd: bool,
    /// System OSU-IB is compared against.
    pub baseline: System,
    /// The paper's reported improvement of OSU-IB over the baseline, %.
    pub paper_pct: f64,
}

/// One reproducible figure.
pub struct Figure {
    /// Identifier ("fig4a").
    pub id: &'static str,
    /// Caption-level description.
    pub title: &'static str,
    /// The grid.
    pub experiments: Vec<Experiment>,
    /// Quantified claims to verify.
    pub claims: Vec<Claim>,
}

fn grid(
    id: &'static str,
    bench: Bench,
    systems: &[System],
    sizes_gb: &[f64],
    testbeds: &[Testbed],
) -> Vec<Experiment> {
    let mut out = Vec::new();
    for tb in testbeds {
        for &system in systems {
            for &gb in sizes_gb {
                out.push(Experiment::new(id, bench, system, tb.clone(), gb, 42));
            }
        }
    }
    out
}

/// Fig 4(a): TeraSort on four DataNodes, single and dual HDD.
pub fn fig4a() -> Figure {
    let systems = [
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
    ];
    Figure {
        id: "fig4a",
        title: "TeraSort job execution time, 4-node cluster, 1 vs 2 HDDs",
        experiments: grid(
            "fig4a",
            Bench::TeraSort,
            &systems,
            &[20.0, 30.0, 40.0],
            &[Testbed::compute(4, 1), Testbed::compute(4, 2)],
        ),
        claims: vec![
            Claim {
                context: "§IV-B: 30GB, 1 HDD, vs Hadoop-A",
                data_gb: 30.0,
                disks: 1,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 9.0,
            },
            Claim {
                context: "§IV-B: 30GB, 1 HDD, vs IPoIB",
                data_gb: 30.0,
                disks: 1,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 35.0,
            },
            Claim {
                context: "§IV-B: 30GB, 1 HDD, vs 10GigE",
                data_gb: 30.0,
                disks: 1,
                ssd: false,
                baseline: System::GigE10,
                paper_pct: 38.0,
            },
            Claim {
                context: "§IV-B: 30GB, 2 HDD, vs Hadoop-A",
                data_gb: 30.0,
                disks: 2,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 13.0,
            },
            Claim {
                context: "§IV-B: 30GB, 2 HDD, vs IPoIB",
                data_gb: 30.0,
                disks: 2,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 38.0,
            },
            Claim {
                context: "§IV-B: 40GB, 2 HDD, vs Hadoop-A",
                data_gb: 40.0,
                disks: 2,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 17.0,
            },
            Claim {
                context: "§IV-B: 40GB, 2 HDD, vs IPoIB",
                data_gb: 40.0,
                disks: 2,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 48.0,
            },
        ],
    }
}

/// Fig 4(b): TeraSort on eight DataNodes, single and dual HDD.
pub fn fig4b() -> Figure {
    let systems = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    Figure {
        id: "fig4b",
        title: "TeraSort job execution time, 8-node cluster, 1 vs 2 HDDs",
        experiments: grid(
            "fig4b",
            Bench::TeraSort,
            &systems,
            &[60.0, 80.0, 100.0],
            &[Testbed::compute(8, 1), Testbed::compute(8, 2)],
        ),
        claims: vec![
            Claim {
                context: "§I/§IV-B headline: 100GB, 1 HDD, vs Hadoop-A",
                data_gb: 100.0,
                disks: 1,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 21.0,
            },
            Claim {
                context: "§I headline: 100GB, 1 HDD, vs IPoIB",
                data_gb: 100.0,
                disks: 1,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 32.0,
            },
            Claim {
                context: "§IV-B: 100GB, 2 HDD, vs Hadoop-A",
                data_gb: 100.0,
                disks: 2,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 31.0,
            },
            Claim {
                context: "§I headline: 100GB, 2 HDD, vs IPoIB",
                data_gb: 100.0,
                disks: 2,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 39.0,
            },
        ],
    }
}

/// Fig 5: TeraSort at larger scale on storage-class nodes (24 GB RAM).
pub fn fig5() -> Figure {
    let systems = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    let mut experiments = grid(
        "fig5",
        Bench::TeraSort,
        &systems,
        &[100.0],
        &[Testbed::storage(12, 2)],
    );
    experiments.extend(grid(
        "fig5",
        Bench::TeraSort,
        &systems,
        &[200.0],
        &[Testbed::storage(24, 2)],
    ));
    Figure {
        id: "fig5",
        title: "TeraSort at larger scale: 100GB on 12 nodes, 200GB on 24 nodes (storage nodes)",
        experiments,
        claims: vec![
            Claim {
                context: "§IV-B: 100GB @ 12 nodes vs IPoIB",
                data_gb: 100.0,
                disks: 2,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 41.0,
            },
            Claim {
                context: "§IV-B: 100GB @ 12 nodes vs Hadoop-A",
                data_gb: 100.0,
                disks: 2,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 7.0,
            },
        ],
    }
}

/// Fig 6(a): Sort on four DataNodes (single HDD).
pub fn fig6a() -> Figure {
    let systems = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    Figure {
        id: "fig6a",
        title: "Sort job execution time, 4-node cluster, 1 HDD",
        experiments: grid(
            "fig6a",
            Bench::Sort,
            &systems,
            &[5.0, 10.0, 15.0, 20.0],
            &[Testbed::compute(4, 1)],
        ),
        claims: vec![
            Claim {
                context: "§IV-C: 20GB vs IPoIB",
                data_gb: 20.0,
                disks: 1,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 26.0,
            },
            Claim {
                context: "§IV-C: 20GB vs Hadoop-A (HA loses to IPoIB here)",
                data_gb: 20.0,
                disks: 1,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 38.0,
            },
        ],
    }
}

/// Fig 6(b): Sort on eight DataNodes (single HDD).
pub fn fig6b() -> Figure {
    let systems = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    Figure {
        id: "fig6b",
        title: "Sort job execution time, 8-node cluster, 1 HDD",
        experiments: grid(
            "fig6b",
            Bench::Sort,
            &systems,
            &[25.0, 30.0, 35.0, 40.0],
            &[Testbed::compute(8, 1)],
        ),
        claims: vec![
            Claim {
                context: "§IV-C/§I: 40GB vs IPoIB",
                data_gb: 40.0,
                disks: 1,
                ssd: false,
                baseline: System::IpoIb,
                paper_pct: 27.0,
            },
            Claim {
                context: "§IV-C/§I: 40GB vs Hadoop-A",
                data_gb: 40.0,
                disks: 1,
                ssd: false,
                baseline: System::HadoopA,
                paper_pct: 32.0,
            },
        ],
    }
}

/// Fig 7: Sort with SSD HDFS data stores.
pub fn fig7() -> Figure {
    let systems = [System::GigE1, System::IpoIb, System::HadoopA, System::OsuIb];
    Figure {
        id: "fig7",
        title: "Sort job execution time with SSD data stores, 4 nodes",
        experiments: grid(
            "fig7",
            Bench::Sort,
            &systems,
            &[5.0, 10.0, 15.0, 20.0],
            &[Testbed::ssd(4)],
        ),
        claims: vec![
            Claim {
                context: "§IV-C: 15GB on SSD vs Hadoop-A",
                data_gb: 15.0,
                disks: 1,
                ssd: true,
                baseline: System::HadoopA,
                paper_pct: 22.0,
            },
            Claim {
                context: "§IV-C: 15GB on SSD vs IPoIB",
                data_gb: 15.0,
                disks: 1,
                ssd: true,
                baseline: System::IpoIb,
                paper_pct: 46.0,
            },
        ],
    }
}

/// Fig 8: effect of the caching mechanism (SSD Sort, caching on vs off).
pub fn fig8() -> Figure {
    let systems = [System::IpoIb, System::OsuIbNoCache, System::OsuIb];
    Figure {
        id: "fig8",
        title: "Effect of the PrefetchCache: Sort on SSD, caching enabled vs disabled",
        experiments: grid(
            "fig8",
            Bench::Sort,
            &systems,
            &[5.0, 10.0, 15.0, 20.0],
            &[Testbed::ssd(4)],
        ),
        claims: vec![Claim {
            context: "§IV-D: 20GB, caching on vs off",
            data_gb: 20.0,
            disks: 1,
            ssd: true,
            baseline: System::OsuIbNoCache,
            paper_pct: 18.39,
        }],
    }
}

/// All figures, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![fig4a(), fig4b(), fig5(), fig6a(), fig6b(), fig7(), fig8()]
}

/// Measured improvement of OSU-IB over `claim.baseline` at the claim's
/// point, in percent (positive = OSU-IB faster).
pub fn measured_improvement(records: &[RunRecord], claim: &Claim) -> Option<f64> {
    let find = |sys: System| {
        records.iter().find(|r| {
            r.system == sys.label()
                && (r.data_gb - claim.data_gb).abs() < 1e-9
                && r.disks == claim.disks
                && r.ssd == claim.ssd
        })
    };
    let osu = find(System::OsuIb)?;
    let base = find(claim.baseline)?;
    Some((base.duration_s - osu.duration_s) / base.duration_s * 100.0)
}

/// Runs a figure end to end: executes the grid, prints the series table and
/// the claim comparison, writes `results/<id>.jsonl`.
pub fn run_figure(fig: &Figure, threads: usize) -> Vec<RunRecord> {
    eprintln!(
        "=== {}: {} ({} runs) ===",
        fig.id,
        fig.title,
        fig.experiments.len()
    );
    let records = run_grid(&fig.experiments, threads);
    println!("\n{} — {}", fig.id, fig.title);
    println!("{}", format_table(&records));
    if !fig.claims.is_empty() {
        println!("paper-vs-measured (OSU-IB improvement over baseline):");
        for claim in &fig.claims {
            match measured_improvement(&records, claim) {
                Some(m) => println!(
                    "  {:55} paper {:>5.1}%   measured {:>5.1}%",
                    claim.context, claim.paper_pct, m
                ),
                None => println!(
                    "  {:55} paper {:>5.1}%   (point missing)",
                    claim.context, claim.paper_pct
                ),
            }
        }
    }
    write_results(fig.id, &records);
    records
}

/// Runs an experiment grid through the [`sweep`] worker pool, preserving
/// grid order in the output regardless of thread count.
pub fn run_grid(experiments: &[Experiment], threads: usize) -> Vec<RunRecord> {
    run_grid_traced(experiments, threads)
        .into_iter()
        .map(|(rec, _)| rec)
        .collect()
}

/// [`run_grid`] plus each run's replay-identity trace hash — what the
/// determinism gates compare across thread counts.
pub fn run_grid_traced(experiments: &[Experiment], threads: usize) -> Vec<(RunRecord, u64)> {
    sweep::sweep_map(experiments, threads, |exp, _| {
        let (rec, hash) = run_experiment_traced(exp);
        eprintln!(
            "  [{}] {} {} {}GB n{} d{} → {:.0}s",
            exp.id, rec.bench, rec.system, rec.data_gb, rec.nodes, rec.disks, rec.duration_s
        );
        (rec, hash)
    })
}

/// Writes records as JSON lines under `results/`.
pub fn write_results(id: &str, records: &[RunRecord]) {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{id}.jsonl");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            for r in records {
                let _ = writeln!(f, "{}", r.to_json());
            }
            eprintln!("wrote {path}");
        }
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Default parallelism for harness binaries.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_cover_every_paper_figure() {
        let ids: Vec<&str> = all_figures().iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["fig4a", "fig4b", "fig5", "fig6a", "fig6b", "fig7", "fig8"]
        );
    }

    #[test]
    fn grids_have_expected_shapes() {
        assert_eq!(fig4a().experiments.len(), 4 * 3 * 2);
        assert_eq!(fig4b().experiments.len(), 4 * 3 * 2);
        assert_eq!(fig5().experiments.len(), 8);
        assert_eq!(fig6a().experiments.len(), 16);
        assert_eq!(fig6b().experiments.len(), 16);
        assert_eq!(fig7().experiments.len(), 16);
        assert_eq!(fig8().experiments.len(), 12);
    }

    #[test]
    fn every_claim_references_a_grid_point() {
        for fig in all_figures() {
            for c in &fig.claims {
                let osu_point = fig.experiments.iter().any(|e| {
                    e.system == System::OsuIb
                        && (e.data_gb - c.data_gb).abs() < 1e-9
                        && e.testbed.disks == c.disks
                        && e.testbed.ssd == c.ssd
                });
                let base_point = fig.experiments.iter().any(|e| {
                    e.system == c.baseline
                        && (e.data_gb - c.data_gb).abs() < 1e-9
                        && e.testbed.disks == c.disks
                        && e.testbed.ssd == c.ssd
                });
                assert!(
                    osu_point && base_point,
                    "{}: claim {:?} dangling",
                    fig.id,
                    c.context
                );
            }
        }
    }
}
