//! Shared-capacity resource models.

pub mod fluid;

pub use fluid::{ConsumeFuture, Fluid};
