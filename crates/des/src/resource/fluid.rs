//! Fluid-flow (processor-sharing) resources.
//!
//! A [`Fluid`] models a capacity that concurrent consumers share fairly:
//! a NIC direction (bytes/s split across active transfers), a node's CPU
//! (core-seconds/s split across runnable workers, each capped at one core),
//! or an SSD's internal bandwidth. Each consumer asks to move `amount` units;
//! while `n` consumers are active each progresses at
//! `min(entry_cap * weight, capacity * weight / total_weight)` units per
//! second.
//!
//! # Virtual-service-time formulation
//!
//! The solver does *not* store per-entry remaining work. Because both the
//! fair share (`capacity * w / W`) and the per-entry cap (`entry_cap * w`)
//! scale linearly with the entry's weight, every active entry progresses at
//! the *same per-unit-weight rate* `r = min(capacity / W, entry_cap)` — in
//! both the contended and the cap-bound regime. So a single global virtual
//! clock `vt` with `dvt/dt = r` describes everyone: an entry arriving at
//! virtual time `v0` with `amount` units and weight `w` finishes exactly when
//! `vt` reaches `F = v0 + amount / w`, no matter how membership (and hence
//! `r`) changes in between. This is the classic fair-queuing virtual-time
//! argument, and here it is *exact* — no fallback is needed when `entry_cap`
//! binds, because the cap is also weight-proportional.
//!
//! Finish tags `F` live in a lazy-deletion min-heap. An arrival, departure,
//! or completion is O(log n); advancing the clock between events is O(1).
//! The previous implementation re-scanned every active entry on every event
//! (O(n) per event, O(n^2) per batch of n transfers); [`FLUID_ADVANCE_WORK`]
//! counts solver work (one per advance, one per heap pop) and is kept as the
//! regression oracle for that behaviour.
//!
//! The implementation schedules exactly one kernel event — the earliest
//! completion — recomputing it whenever a consumer arrives, departs, or
//! completes. This is the standard fluid approximation used by
//! packet-level-accurate-enough network simulators; it reproduces bandwidth
//! contention without per-packet events.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{EventId, Sim};
use crate::time::{SimDuration, SimTime};

/// Residual work below this many units counts as complete (sub-microbyte /
/// sub-pico-core-second — far below anything the models can observe).
const EPS: f64 = 1e-6;

/// Relative slack on the virtual clock: residuals below `vt * VT_REL_EPS`
/// are float noise from accumulating `vt` over a long busy period (the tags
/// are absolute, so `F - vt` cancels catastrophically near completion) and
/// count as complete. ~4500 ulps; at `vt = 1e11` bytes this is 0.1 byte.
const VT_REL_EPS: f64 = 1e-12;

thread_local! {
    /// Diagnostic: units of solver work — one per clock advance plus one per
    /// heap pop. Scans linearly with completed transfers for the O(log n)
    /// solver; the old per-entry scan made it quadratic (see the
    /// `fluid_work_grows_linearly` regression test).
    pub static FLUID_ADVANCE_WORK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct Entry {
    /// Virtual finish tag: completes when `vt` reaches this.
    finish_v: f64,
    weight: f64,
    waker: Option<Waker>,
    done: bool,
    gen: u32,
}

/// Min-heap item (via `Reverse`): earliest finish tag first, slot index as
/// the deterministic tie-break (matching the old scan's slot-order wakes).
struct HeapItem {
    finish_v: f64,
    idx: u32,
    gen: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_v
            .total_cmp(&other.finish_v)
            .then(self.idx.cmp(&other.idx))
            .then(self.gen.cmp(&other.gen))
    }
}

struct Inner {
    capacity: f64,
    entry_cap: f64,
    entries: Vec<Option<Entry>>,
    /// Per-slot generation, monotonically bumped on release so stale heap
    /// items (from cancelled consumers) never match a reused slot.
    slot_gens: Vec<u32>,
    free: Vec<usize>,
    heap: BinaryHeap<Reverse<HeapItem>>,
    active: usize,
    total_weight: f64,
    /// The virtual clock: per-unit-weight service since the last idle period.
    vt: f64,
    last: SimTime,
    /// The scheduled next-completion kernel event and its firing time.
    /// Tracking the time lets [`Fluid::reschedule`] keep the event in place
    /// when a membership change didn't move the earliest completion
    /// (cap-bound regimes), skipping a cancel+push pair of heap churn.
    next_event: Option<(EventId, SimTime)>,
    /// Reused wake-batch buffer for [`Inner::complete_finished`].
    wake_batch: Vec<usize>,
    served: f64,
    busy: f64,
    metrics_key: Option<String>,
}

impl Inner {
    /// Per-unit-weight service rate while `active > 0`.
    fn unit_rate(&self) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        (self.capacity / self.total_weight).min(self.entry_cap)
    }

    /// Advances the virtual clock from `self.last` to `now`. O(1).
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        if elapsed <= 0.0 || self.active == 0 {
            return;
        }
        FLUID_ADVANCE_WORK.with(|w| w.set(w.get() + 1));
        self.busy += elapsed;
        let r = self.unit_rate();
        self.vt += r * elapsed;
        self.served += r * elapsed * self.total_weight;
    }

    fn is_stale(&self, item: &HeapItem) -> bool {
        match &self.entries[item.idx as usize] {
            Some(e) => e.gen != item.gen || e.done,
            None => true,
        }
    }

    /// An entry's residual counts as complete once it is below the absolute
    /// EPS or below the virtual clock's float-noise floor.
    fn finished(&self, finish_v: f64, weight: f64) -> bool {
        let residual_v = finish_v - self.vt;
        residual_v * weight <= EPS || residual_v <= self.vt * VT_REL_EPS
    }

    /// Pops and wakes every entry whose finish tag the clock has reached.
    /// Returns whether any entry completed (membership changed).
    ///
    /// Wakes are issued in slot order within the batch, matching the old
    /// per-entry scan's wake order exactly — downstream models (spill
    /// thresholds, disk stream interleaving) are sensitive to it.
    fn complete_finished(&mut self) -> bool {
        // Reuse the wake-batch buffer across calls: at 1k-node churn this
        // path runs once per completion batch and the per-call Vec alloc
        // shows up in profiles. Host-side only — wake order is unchanged.
        let mut batch = std::mem::take(&mut self.wake_batch);
        batch.clear();
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.is_stale(top) {
                FLUID_ADVANCE_WORK.with(|w| w.set(w.get() + 1));
                self.heap.pop();
                continue;
            }
            let idx = top.idx as usize;
            let (finish_v, weight) = {
                let e = self.entries[idx].as_ref().unwrap();
                (e.finish_v, e.weight)
            };
            if !self.finished(finish_v, weight) {
                break;
            }
            FLUID_ADVANCE_WORK.with(|w| w.set(w.get() + 1));
            self.heap.pop();
            // `advance` billed this entry through `vt`; refund the overshoot
            // past its own finish tag so `served` stays exact.
            self.served -= (self.vt - finish_v).max(0.0) * weight;
            self.active -= 1;
            self.total_weight -= weight;
            self.entries[idx].as_mut().unwrap().done = true;
            batch.push(idx);
        }
        let changed = !batch.is_empty();
        batch.sort_unstable();
        for idx in batch.drain(..) {
            let e = self.entries[idx].as_mut().unwrap();
            if let Some(w) = e.waker.take() {
                w.wake();
            }
        }
        self.wake_batch = batch;
        if self.active == 0 {
            self.reset_clock();
        }
        changed
    }

    /// With no active entries, rebase the virtual clock (kills accumulated
    /// float error) and drop stale heap leftovers from cancellations.
    fn reset_clock(&mut self) {
        self.total_weight = 0.0;
        self.vt = 0.0;
        self.heap.clear();
    }

    /// Seconds until the earliest active entry finishes at current rates.
    fn time_to_next_completion(&mut self) -> Option<f64> {
        if self.active == 0 {
            return None;
        }
        let r = self.unit_rate();
        if r <= 0.0 {
            return None;
        }
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.is_stale(top) {
                FLUID_ADVANCE_WORK.with(|w| w.set(w.get() + 1));
                self.heap.pop();
                continue;
            }
            let residual_v = (top.finish_v - self.vt).max(0.0);
            return Some(residual_v / r);
        }
        None
    }
}

/// A shared-capacity resource. Cheap to clone (handle).
#[derive(Clone)]
pub struct Fluid {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl Fluid {
    /// Creates a resource with `capacity` units/second and no per-consumer
    /// cap (a transfer alone gets the whole capacity).
    pub fn new(sim: &Sim, capacity: f64) -> Self {
        Self::with_entry_cap(sim, capacity, f64::INFINITY)
    }

    /// Creates a resource where a single consumer of weight 1 can progress at
    /// most `entry_cap` units/second even when the resource is idle. Used for
    /// CPUs: capacity = cores, entry_cap = 1 core.
    pub fn with_entry_cap(sim: &Sim, capacity: f64, entry_cap: f64) -> Self {
        assert!(capacity > 0.0, "fluid capacity must be positive");
        Fluid {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                entry_cap,
                entries: Vec::new(),
                slot_gens: Vec::new(),
                free: Vec::new(),
                heap: BinaryHeap::new(),
                active: 0,
                total_weight: 0.0,
                vt: 0.0,
                last: sim.now(),
                next_event: None,
                wake_batch: Vec::new(),
                served: 0.0,
                busy: 0.0,
                metrics_key: None,
            })),
        }
    }

    /// Tags the resource so that, on demand, busy time and served units are
    /// published to the simulation metrics under `<key>.busy_s` and
    /// `<key>.served`.
    pub fn with_metrics_key(self, key: impl Into<String>) -> Self {
        self.inner.borrow_mut().metrics_key = Some(key.into());
        self
    }

    /// The configured capacity in units/second.
    pub fn capacity(&self) -> f64 {
        self.inner.borrow().capacity
    }

    /// Number of in-flight consumers.
    pub fn active(&self) -> usize {
        self.inner.borrow().active
    }

    /// Total units served so far (progressed to `sim.now()`).
    pub fn served(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.served
    }

    /// Seconds during which at least one consumer was active.
    pub fn busy_seconds(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.busy
    }

    /// Publishes `busy_s` / `served` to the metrics registry (if a key was
    /// set with [`Fluid::with_metrics_key`]).
    pub fn publish_metrics(&self) {
        let key = self.inner.borrow().metrics_key.clone();
        if let Some(key) = key {
            let busy = self.busy_seconds();
            let served = self.inner.borrow().served;
            let m = self.sim.metrics();
            m.add(
                &format!("{key}.busy_s"),
                busy - m.get(&format!("{key}.busy_s")),
            );
            m.add(
                &format!("{key}.served"),
                served - m.get(&format!("{key}.served")),
            );
        }
    }

    /// Consumes `amount` units with weight 1.
    pub fn consume(&self, amount: f64) -> ConsumeFuture {
        self.consume_weighted(amount, 1.0)
    }

    /// Consumes `amount` units with the given fair-share `weight`.
    ///
    /// The consumer starts progressing immediately (at call time), even
    /// before the returned future is first polled; dropping the future
    /// cancels the remaining work.
    pub fn consume_weighted(&self, amount: f64, weight: f64) -> ConsumeFuture {
        assert!(weight > 0.0, "weight must be positive");
        assert!(amount.is_finite() && amount >= 0.0, "bad amount {amount}");
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        inner.advance(now);
        inner.complete_finished();
        let done = amount <= EPS;
        let finish_v = inner.vt + amount / weight;
        let idx = if let Some(idx) = inner.free.pop() {
            idx
        } else {
            inner.entries.push(None);
            inner.slot_gens.push(0);
            inner.entries.len() - 1
        };
        let gen = inner.slot_gens[idx];
        inner.entries[idx] = Some(Entry {
            finish_v,
            weight,
            waker: None,
            done,
            gen,
        });
        if !done {
            inner.active += 1;
            inner.total_weight += weight;
            inner.heap.push(Reverse(HeapItem {
                finish_v,
                idx: idx as u32,
                gen,
            }));
        }
        drop(inner);
        self.reschedule();
        ConsumeFuture {
            fluid: self.clone(),
            idx,
            gen,
            finished: false,
        }
    }

    /// Recomputes and reschedules the next-completion event.
    ///
    /// Always cancel + schedule fresh: an in-place "keep the event when the
    /// time is unchanged" variant was measured to reorder same-instant event
    /// seqs against other schedulers, which perturbs verbs-engine results —
    /// the replay-identity gates forbid it. The cancel is O(1) (lazy).
    fn reschedule(&self) {
        let mut inner = self.inner.borrow_mut();
        if let Some((ev, _)) = inner.next_event.take() {
            drop(inner);
            self.sim.cancel(ev);
            inner = self.inner.borrow_mut();
        }
        if let Some(dt) = inner.time_to_next_completion() {
            let at = self.sim.now() + SimDuration::from_secs_f64(dt);
            let handle = self.clone();
            drop(inner);
            let ev = self.sim.schedule_fn(at, move |_| handle.tick());
            self.inner.borrow_mut().next_event = Some((ev, at));
        }
    }

    /// Event callback: advance, complete, reschedule.
    fn tick(&self) {
        let now = self.sim.now();
        {
            let mut inner = self.inner.borrow_mut();
            inner.next_event = None;
            inner.advance(now);
            inner.complete_finished();
        }
        self.reschedule();
    }

    fn release_slot(&self, idx: usize) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        // Settle progress up to `now` before changing membership, otherwise
        // the departing consumer's share is retroactively handed to the
        // survivors.
        inner.advance(now);
        inner.complete_finished();
        if let Some(e) = inner.entries[idx].take() {
            // Bump the slot generation so this entry's heap item goes stale.
            inner.slot_gens[idx] = inner.slot_gens[idx].wrapping_add(1);
            inner.free.push(idx);
            if !e.done {
                // Cancelled mid-flight.
                inner.active -= 1;
                inner.total_weight -= e.weight;
                if inner.active == 0 {
                    inner.reset_clock();
                }
                drop(inner);
                self.reschedule();
            }
        }
    }
}

/// Future returned by [`Fluid::consume`]; resolves when the requested amount
/// has been transferred.
pub struct ConsumeFuture {
    fluid: Fluid,
    idx: usize,
    gen: u32,
    finished: bool,
}

impl Future for ConsumeFuture {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.fluid.inner.borrow_mut();
        let entry = inner.entries[self.idx]
            .as_mut()
            .filter(|e| e.gen == self.gen)
            .expect("ConsumeFuture entry vanished");
        if entry.done {
            drop(inner);
            self.finished = true;
            let idx = self.idx;
            self.fluid.release_slot(idx);
            Poll::Ready(())
        } else {
            entry.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for ConsumeFuture {
    fn drop(&mut self) {
        if !self.finished {
            // Verify generation before releasing (slot may have been reused
            // after normal completion path already released it).
            let matches = {
                let inner = self.fluid.inner.borrow();
                inner.entries[self.idx]
                    .as_ref()
                    .map(|e| e.gen == self.gen)
                    .unwrap_or(false)
            };
            if matches {
                self.fluid.release_slot(self.idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;

    fn at_secs(ns: u64) -> SimTime {
        SimTime::from_nanos(ns * 1_000_000_000)
    }

    #[test]
    fn lone_consumer_gets_full_capacity() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0); // 100 units/s
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d2 = Rc::clone(&done);
        let sim2 = sim.clone();
        sim.spawn(async move {
            f.consume(200.0).await;
            d2.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), at_secs(2));
    }

    #[test]
    fn two_consumers_share_fairly() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t_small = Rc::new(Cell::new(SimTime::ZERO));
        let t_big = Rc::new(Cell::new(SimTime::ZERO));
        {
            let f = f.clone();
            let t = Rc::clone(&t_small);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(100.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            let t = Rc::clone(&t_big);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(300.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        // Shared 50/50 until small (100u) finishes at t=2s; big then has
        // 200u left alone at 100u/s → finishes at t=4s.
        assert_eq!(t_small.get(), at_secs(2));
        assert_eq!(t_big.get(), at_secs(4));
    }

    #[test]
    fn late_arrival_slows_first_consumer() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t_first = Rc::new(Cell::new(SimTime::ZERO));
        {
            let f = f.clone();
            let t = Rc::clone(&t_first);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(150.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_secs(1)).await;
                f.consume(1000.0).await;
            })
            .detach();
        }
        sim.run();
        // First mover does 100u in [0,1), then shares: 50u left at 50u/s →
        // finishes at t=2s.
        assert_eq!(t_first.get(), at_secs(2));
    }

    #[test]
    fn entry_cap_limits_lone_consumer() {
        let sim = Sim::new(1);
        // 8 "cores", each consumer capped at 1 core.
        let f = Fluid::with_entry_cap(&sim, 8.0, 1.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        let t2 = Rc::clone(&t);
        let sim2 = sim.clone();
        sim.spawn(async move {
            f.consume(3.0).await; // 3 core-seconds at 1 core
            t2.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(t.get(), at_secs(3));
    }

    #[test]
    fn oversubscribed_cpu_shares() {
        let sim = Sim::new(1);
        let f = Fluid::with_entry_cap(&sim, 2.0, 1.0); // 2 cores
        let finishes = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let f = f.clone();
            let sim2 = sim.clone();
            let fin = Rc::clone(&finishes);
            sim.spawn(async move {
                f.consume(1.0).await; // 1 core-second each
                fin.borrow_mut().push(sim2.now());
            })
            .detach();
        }
        sim.run();
        // 4 consumers on 2 cores → each runs at 0.5 core → all done at 2s.
        for t in finishes.borrow().iter() {
            assert_eq!(*t, at_secs(2));
        }
    }

    #[test]
    fn zero_amount_completes_immediately() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 10.0);
        let hit = Rc::new(Cell::new(false));
        let h2 = Rc::clone(&hit);
        sim.spawn(async move {
            f.consume(0.0).await;
            h2.set(true);
        })
        .detach();
        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn cancelled_consumer_frees_bandwidth() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        // Consumer A: 100u, will race a 0.5s timer and lose, cancelling.
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                use crate::sync::select::{select2, Either};
                let r = select2(
                    f.consume(1_000.0),
                    sim2.sleep(SimDuration::from_millis(500)),
                )
                .await;
                assert!(matches!(r, Either::Right(())));
            })
            .detach();
        }
        // Consumer B: 100u, should finish at 0.5s(shared)+0.5s... compute:
        // [0,0.5]: both share 50u/s → B has 75u left; A cancels at 0.5s;
        // B alone: 75u at 100u/s → done at 1.25s.
        {
            let f = f.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                f.consume(100.0).await;
                t2.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        assert_eq!(t.get().as_nanos(), 1_250_000_000);
    }

    #[test]
    fn weighted_sharing_splits_proportionally() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        {
            // weight 3 → 75 u/s while both active
            let f = f.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                f.consume_weighted(150.0, 3.0).await;
                t2.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            sim.spawn(async move {
                f.consume_weighted(1_000.0, 1.0).await;
            })
            .detach();
        }
        sim.run();
        assert_eq!(t.get(), at_secs(2)); // 150u at 75u/s
    }

    #[test]
    fn served_and_busy_account_correctly() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 10.0);
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(10.0).await; // busy [0,1]
                sim2.sleep(SimDuration::from_secs(1)).await; // idle [1,2]
                f.consume(20.0).await; // busy [2,4]
            })
            .detach();
        }
        sim.run();
        assert!((f.served() - 30.0).abs() < 1e-3);
        assert!((f.busy_seconds() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn slot_reuse_after_cancel_ignores_stale_heap_items() {
        // A cancelled consumer leaves a stale heap item behind; a new
        // consumer reusing the slot must not be completed by it.
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        {
            // Cancels at 0.1s with ~990u left → stale tag far in the future.
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                use crate::sync::select::{select2, Either};
                let r = select2(
                    f.consume(1_000.0),
                    sim2.sleep(SimDuration::from_millis(100)),
                )
                .await;
                assert!(matches!(r, Either::Right(())));
            })
            .detach();
        }
        {
            // Starts after the cancel, reuses the freed slot.
            let f = f.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(200)).await;
                f.consume(100.0).await;
                t2.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        // Sole consumer of 100u at 100u/s from t=0.2 → done at 1.2s.
        assert_eq!(t.get().as_nanos(), 1_200_000_000);
    }
}
