//! Fluid-flow (processor-sharing) resources.
//!
//! A [`Fluid`] models a capacity that concurrent consumers share fairly:
//! a NIC direction (bytes/s split across active transfers), a node's CPU
//! (core-seconds/s split across runnable workers, each capped at one core),
//! or an SSD's internal bandwidth. Each consumer asks to move `amount` units;
//! while `n` consumers are active each progresses at
//! `min(entry_cap, capacity * weight / total_weight)` units per second.
//!
//! The implementation keeps per-entry remaining work and schedules exactly
//! one kernel event — the earliest completion — recomputing it whenever a
//! consumer arrives, departs, or completes. This is the standard fluid
//! approximation used by packet-level-accurate-enough network simulators;
//! it reproduces bandwidth contention without per-packet events.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{EventId, Sim};
use crate::time::{SimDuration, SimTime};

/// Residual work below this many units counts as complete (sub-microbyte /
/// sub-pico-core-second — far below anything the models can observe).
const EPS: f64 = 1e-6;

thread_local! {
    /// Diagnostic: total entry-visits in `advance` (O(n-squared) detector).
    pub static FLUID_ADVANCE_WORK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct Entry {
    remaining: f64,
    weight: f64,
    waker: Option<Waker>,
    done: bool,
    gen: u32,
}

struct Inner {
    capacity: f64,
    entry_cap: f64,
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    active: usize,
    total_weight: f64,
    last: SimTime,
    next_event: Option<EventId>,
    served: f64,
    busy: f64,
    metrics_key: Option<String>,
}

impl Inner {
    fn rate_of(&self, e: &Entry) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        (self.capacity * e.weight / self.total_weight).min(self.entry_cap * e.weight)
    }

    /// Applies progress from `self.last` to `now` to every active entry.
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        if elapsed <= 0.0 || self.active == 0 {
            return;
        }
        FLUID_ADVANCE_WORK.with(|w| w.set(w.get() + self.entries.len() as u64));
        self.busy += elapsed;
        let total_weight = self.total_weight;
        let capacity = self.capacity;
        let entry_cap = self.entry_cap;
        for e in self.entries.iter_mut().flatten() {
            if e.done {
                continue;
            }
            let rate = (capacity * e.weight / total_weight).min(entry_cap * e.weight);
            let progress = rate * elapsed;
            self.served += progress.min(e.remaining);
            e.remaining = (e.remaining - progress).max(0.0);
        }
    }

    /// Marks entries that have finished and wakes their consumers. Returns
    /// whether any entry completed (membership changed).
    fn complete_finished(&mut self) -> bool {
        let mut changed = false;
        for e in self.entries.iter_mut().flatten() {
            if !e.done && e.remaining <= EPS {
                e.done = true;
                e.remaining = 0.0;
                self.active -= 1;
                self.total_weight -= e.weight;
                changed = true;
                if let Some(w) = e.waker.take() {
                    w.wake();
                }
            }
        }
        if self.active == 0 {
            self.total_weight = 0.0; // kill accumulated float error
        }
        changed
    }

    /// Seconds until the earliest active entry finishes at current rates.
    fn time_to_next_completion(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for e in self.entries.iter().flatten() {
            if e.done {
                continue;
            }
            let rate = self.rate_of(e);
            if rate <= 0.0 {
                continue;
            }
            let t = e.remaining / rate;
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best
    }
}

/// A shared-capacity resource. Cheap to clone (handle).
#[derive(Clone)]
pub struct Fluid {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl Fluid {
    /// Creates a resource with `capacity` units/second and no per-consumer
    /// cap (a transfer alone gets the whole capacity).
    pub fn new(sim: &Sim, capacity: f64) -> Self {
        Self::with_entry_cap(sim, capacity, f64::INFINITY)
    }

    /// Creates a resource where a single consumer of weight 1 can progress at
    /// most `entry_cap` units/second even when the resource is idle. Used for
    /// CPUs: capacity = cores, entry_cap = 1 core.
    pub fn with_entry_cap(sim: &Sim, capacity: f64, entry_cap: f64) -> Self {
        assert!(capacity > 0.0, "fluid capacity must be positive");
        Fluid {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                entry_cap,
                entries: Vec::new(),
                free: Vec::new(),
                active: 0,
                total_weight: 0.0,
                last: sim.now(),
                next_event: None,
                served: 0.0,
                busy: 0.0,
                metrics_key: None,
            })),
        }
    }

    /// Tags the resource so that, on demand, busy time and served units are
    /// published to the simulation metrics under `<key>.busy_s` and
    /// `<key>.served`.
    pub fn with_metrics_key(self, key: impl Into<String>) -> Self {
        self.inner.borrow_mut().metrics_key = Some(key.into());
        self
    }

    /// The configured capacity in units/second.
    pub fn capacity(&self) -> f64 {
        self.inner.borrow().capacity
    }

    /// Number of in-flight consumers.
    pub fn active(&self) -> usize {
        self.inner.borrow().active
    }

    /// Total units served so far (progressed to `sim.now()`).
    pub fn served(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.served
    }

    /// Seconds during which at least one consumer was active.
    pub fn busy_seconds(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.busy
    }

    /// Publishes `busy_s` / `served` to the metrics registry (if a key was
    /// set with [`Fluid::with_metrics_key`]).
    pub fn publish_metrics(&self) {
        let key = self.inner.borrow().metrics_key.clone();
        if let Some(key) = key {
            let busy = self.busy_seconds();
            let served = self.inner.borrow().served;
            let m = self.sim.metrics();
            m.add(
                &format!("{key}.busy_s"),
                busy - m.get(&format!("{key}.busy_s")),
            );
            m.add(
                &format!("{key}.served"),
                served - m.get(&format!("{key}.served")),
            );
        }
    }

    /// Consumes `amount` units with weight 1.
    pub fn consume(&self, amount: f64) -> ConsumeFuture {
        self.consume_weighted(amount, 1.0)
    }

    /// Consumes `amount` units with the given fair-share `weight`.
    ///
    /// The consumer starts progressing immediately (at call time), even
    /// before the returned future is first polled; dropping the future
    /// cancels the remaining work.
    pub fn consume_weighted(&self, amount: f64, weight: f64) -> ConsumeFuture {
        assert!(weight > 0.0, "weight must be positive");
        assert!(amount.is_finite() && amount >= 0.0, "bad amount {amount}");
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        inner.advance(now);
        inner.complete_finished();
        let entry = Entry {
            remaining: amount,
            weight,
            waker: None,
            done: amount <= EPS,
            gen: 0,
        };
        let idx = if let Some(idx) = inner.free.pop() {
            let gen = inner.entries[idx]
                .as_ref()
                .map(|e| e.gen)
                .unwrap_or(0)
                .wrapping_add(1);
            inner.entries[idx] = Some(Entry { gen, ..entry });
            idx
        } else {
            inner.entries.push(Some(entry));
            inner.entries.len() - 1
        };
        let gen = inner.entries[idx].as_ref().unwrap().gen;
        let instant_done = inner.entries[idx].as_ref().unwrap().done;
        if !instant_done {
            inner.active += 1;
            inner.total_weight += weight;
        }
        drop(inner);
        self.reschedule();
        ConsumeFuture {
            fluid: self.clone(),
            idx,
            gen,
            finished: false,
        }
    }

    /// Recomputes and reschedules the next-completion event.
    fn reschedule(&self) {
        let mut inner = self.inner.borrow_mut();
        if let Some(ev) = inner.next_event.take() {
            drop(inner);
            self.sim.cancel(ev);
            inner = self.inner.borrow_mut();
        }
        if let Some(dt) = inner.time_to_next_completion() {
            let at = self.sim.now() + SimDuration::from_secs_f64(dt);
            let handle = self.clone();
            drop(inner);
            let ev = self.sim.schedule_fn(at, move |_| handle.tick());
            self.inner.borrow_mut().next_event = Some(ev);
        }
    }

    /// Event callback: advance, complete, reschedule.
    fn tick(&self) {
        let now = self.sim.now();
        {
            let mut inner = self.inner.borrow_mut();
            inner.next_event = None;
            inner.advance(now);
            inner.complete_finished();
        }
        self.reschedule();
    }

    fn release_slot(&self, idx: usize) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        // Settle progress up to `now` before changing membership, otherwise
        // the departing consumer's share is retroactively handed to the
        // survivors.
        inner.advance(now);
        inner.complete_finished();
        if let Some(e) = inner.entries[idx].take() {
            // Keep generation alive in a tombstone for ABA protection.
            inner.entries[idx] = None;
            inner.free.push(idx);
            if !e.done {
                // Cancelled mid-flight.
                inner.active -= 1;
                inner.total_weight -= e.weight;
                if inner.active == 0 {
                    inner.total_weight = 0.0;
                }
                drop(inner);
                self.reschedule();
            }
        }
    }
}

/// Future returned by [`Fluid::consume`]; resolves when the requested amount
/// has been transferred.
pub struct ConsumeFuture {
    fluid: Fluid,
    idx: usize,
    gen: u32,
    finished: bool,
}

impl Future for ConsumeFuture {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.fluid.inner.borrow_mut();
        let entry = inner.entries[self.idx]
            .as_mut()
            .filter(|e| e.gen == self.gen)
            .expect("ConsumeFuture entry vanished");
        if entry.done {
            drop(inner);
            self.finished = true;
            let idx = self.idx;
            self.fluid.release_slot(idx);
            Poll::Ready(())
        } else {
            entry.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for ConsumeFuture {
    fn drop(&mut self) {
        if !self.finished {
            // Verify generation before releasing (slot may have been reused
            // after normal completion path already released it).
            let matches = {
                let inner = self.fluid.inner.borrow();
                inner.entries[self.idx]
                    .as_ref()
                    .map(|e| e.gen == self.gen)
                    .unwrap_or(false)
            };
            if matches {
                self.fluid.release_slot(self.idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;

    fn at_secs(ns: u64) -> SimTime {
        SimTime::from_nanos(ns * 1_000_000_000)
    }

    #[test]
    fn lone_consumer_gets_full_capacity() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0); // 100 units/s
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d2 = Rc::clone(&done);
        let sim2 = sim.clone();
        sim.spawn(async move {
            f.consume(200.0).await;
            d2.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), at_secs(2));
    }

    #[test]
    fn two_consumers_share_fairly() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t_small = Rc::new(Cell::new(SimTime::ZERO));
        let t_big = Rc::new(Cell::new(SimTime::ZERO));
        {
            let f = f.clone();
            let t = Rc::clone(&t_small);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(100.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            let t = Rc::clone(&t_big);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(300.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        // Shared 50/50 until small (100u) finishes at t=2s; big then has
        // 200u left alone at 100u/s → finishes at t=4s.
        assert_eq!(t_small.get(), at_secs(2));
        assert_eq!(t_big.get(), at_secs(4));
    }

    #[test]
    fn late_arrival_slows_first_consumer() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t_first = Rc::new(Cell::new(SimTime::ZERO));
        {
            let f = f.clone();
            let t = Rc::clone(&t_first);
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(150.0).await;
                t.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_secs(1)).await;
                f.consume(1000.0).await;
            })
            .detach();
        }
        sim.run();
        // First mover does 100u in [0,1), then shares: 50u left at 50u/s →
        // finishes at t=2s.
        assert_eq!(t_first.get(), at_secs(2));
    }

    #[test]
    fn entry_cap_limits_lone_consumer() {
        let sim = Sim::new(1);
        // 8 "cores", each consumer capped at 1 core.
        let f = Fluid::with_entry_cap(&sim, 8.0, 1.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        let t2 = Rc::clone(&t);
        let sim2 = sim.clone();
        sim.spawn(async move {
            f.consume(3.0).await; // 3 core-seconds at 1 core
            t2.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(t.get(), at_secs(3));
    }

    #[test]
    fn oversubscribed_cpu_shares() {
        let sim = Sim::new(1);
        let f = Fluid::with_entry_cap(&sim, 2.0, 1.0); // 2 cores
        let finishes = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let f = f.clone();
            let sim2 = sim.clone();
            let fin = Rc::clone(&finishes);
            sim.spawn(async move {
                f.consume(1.0).await; // 1 core-second each
                fin.borrow_mut().push(sim2.now());
            })
            .detach();
        }
        sim.run();
        // 4 consumers on 2 cores → each runs at 0.5 core → all done at 2s.
        for t in finishes.borrow().iter() {
            assert_eq!(*t, at_secs(2));
        }
    }

    #[test]
    fn zero_amount_completes_immediately() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 10.0);
        let hit = Rc::new(Cell::new(false));
        let h2 = Rc::clone(&hit);
        sim.spawn(async move {
            f.consume(0.0).await;
            h2.set(true);
        })
        .detach();
        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn cancelled_consumer_frees_bandwidth() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        // Consumer A: 100u, will race a 0.5s timer and lose, cancelling.
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                use crate::sync::select::{select2, Either};
                let r = select2(
                    f.consume(1_000.0),
                    sim2.sleep(SimDuration::from_millis(500)),
                )
                .await;
                assert!(matches!(r, Either::Right(())));
            })
            .detach();
        }
        // Consumer B: 100u, should finish at 0.5s(shared)+0.5s... compute:
        // [0,0.5]: both share 50u/s → B has 75u left; A cancels at 0.5s;
        // B alone: 75u at 100u/s → done at 1.25s.
        {
            let f = f.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                f.consume(100.0).await;
                t2.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        assert_eq!(t.get().as_nanos(), 1_250_000_000);
    }

    #[test]
    fn weighted_sharing_splits_proportionally() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 100.0);
        let t = Rc::new(Cell::new(SimTime::ZERO));
        {
            // weight 3 → 75 u/s while both active
            let f = f.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                f.consume_weighted(150.0, 3.0).await;
                t2.set(sim2.now());
            })
            .detach();
        }
        {
            let f = f.clone();
            sim.spawn(async move {
                f.consume_weighted(1_000.0, 1.0).await;
            })
            .detach();
        }
        sim.run();
        assert_eq!(t.get(), at_secs(2)); // 150u at 75u/s
    }

    #[test]
    fn served_and_busy_account_correctly() {
        let sim = Sim::new(1);
        let f = Fluid::new(&sim, 10.0);
        {
            let f = f.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                f.consume(10.0).await; // busy [0,1]
                sim2.sleep(SimDuration::from_secs(1)).await; // idle [1,2]
                f.consume(20.0).await; // busy [2,4]
            })
            .detach();
        }
        sim.run();
        assert!((f.served() - 30.0).abs() < 1e-3);
        assert!((f.busy_seconds() - 3.0).abs() < 1e-6);
    }
}
