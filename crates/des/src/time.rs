//! Virtual time for the simulation.
//!
//! Time advances only when the event loop fires a scheduled event; nothing in
//! the kernel ever consults the wall clock, which keeps every run bit-for-bit
//! deterministic. Resolution is one nanosecond carried in a `u64`, which
//! covers simulations of ~584 years — far beyond the multi-hour MapReduce
//! jobs modelled here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only; all
    /// kernel arithmetic stays in integer nanoseconds).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding up to the next
    /// nanosecond so that a nonzero float never becomes a zero duration
    /// (a zero-length "transfer" would complete instantaneously and can mask
    /// ordering bugs). Negative and NaN inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (s * 1e9).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns worth of seconds must not truncate to 1 ns silently; we
        // round up so repeated small charges never stall the clock.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500_000)), "0.001500s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "0.002000s");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3).as_nanos(), 30_000);
        assert_eq!((d / 2).as_nanos(), 5_000);
    }
}
