//! A fair (FIFO) counting semaphore.
//!
//! Used wherever the simulated systems limit concurrency or budget a finite
//! quantity: TaskTracker map/reduce slots, per-node memory budgets, shuffle
//! copier thread pools, HDFS transfer threads. Fairness matters: Hadoop's
//! slot scheduler is queue-ordered, and an unfair semaphore would let the
//! simulation starve early tasks in ways the real system cannot.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::note_current_blocked;

struct Waiter {
    id: u64,
    need: u64,
    waker: Option<Waker>,
    granted: bool,
}

struct Inner {
    permits: u64,
    next_id: u64,
    waiters: VecDeque<Waiter>,
    /// Diagnostic name; shows up in deadlock reports as
    /// "acquire(n) on <name>".
    name: Rc<str>,
}

impl Inner {
    /// Grants permits to waiters strictly in FIFO order; a large request at
    /// the head blocks smaller ones behind it (no barging).
    fn grant(&mut self) {
        while let Some(head) = self.waiters.front_mut() {
            if head.granted {
                // Already granted, waiting to be polled; look no further —
                // FIFO means nothing behind it may overtake.
                break;
            }
            if head.need <= self.permits {
                self.permits -= head.need;
                head.granted = true;
                if let Some(w) = head.waker.take() {
                    w.wake();
                }
            } else {
                break;
            }
        }
        // Drop granted-and-consumed entries from the front lazily; actual
        // removal happens in AcquireFuture::poll / drop.
    }

    fn remove_waiter(&mut self, id: u64) -> Option<Waiter> {
        let pos = self.waiters.iter().position(|w| w.id == id)?;
        self.waiters.remove(pos)
    }
}

/// A fair async counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<Inner>>,
}

impl Semaphore {
    /// Creates a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Self::new_named("semaphore", permits)
    }

    /// Creates a named semaphore. Tasks stalled acquiring it appear as
    /// "acquire(n) on <name>" in
    /// [`crate::executor::Sim::step_until_no_events`] reports.
    pub fn new_named(name: &str, permits: u64) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(Inner {
                permits,
                next_id: 0,
                waiters: VecDeque::new(),
                name: Rc::from(name),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.inner.borrow().permits
    }

    /// Number of queued waiters.
    pub fn queued(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Acquires `n` permits, suspending until they are available. The permits
    /// are returned when the [`Permit`] guard drops (or leak with
    /// [`Permit::forget`]).
    pub fn acquire(&self, n: u64) -> AcquireFuture {
        AcquireFuture {
            sem: self.clone(),
            need: n,
            id: None,
            label: None,
        }
    }

    /// Tries to acquire `n` permits without waiting. Fails if other waiters
    /// are queued, preserving FIFO fairness.
    pub fn try_acquire(&self, n: u64) -> Option<Permit> {
        let mut inner = self.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.permits >= n {
            inner.permits -= n;
            Some(Permit {
                sem: self.clone(),
                n,
            })
        } else {
            None
        }
    }

    /// Adds `n` permits (used to model releasing budget acquired elsewhere,
    /// e.g. when a cached buffer is evicted by a different component).
    pub fn release_raw(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += n;
        inner.grant();
    }
}

/// RAII guard for acquired permits.
pub struct Permit {
    sem: Semaphore,
    n: u64,
}

impl Permit {
    /// Number of permits held.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Releases part of the permits early, keeping the rest.
    pub fn release_partial(&mut self, n: u64) {
        let n = n.min(self.n);
        self.n -= n;
        self.sem.release_raw(n);
    }

    /// Leaks the permits: they are never returned. Models permanently
    /// consumed budget.
    pub fn forget(mut self) {
        self.n = 0;
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.n > 0 {
            self.sem.release_raw(self.n);
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct AcquireFuture {
    sem: Semaphore,
    need: u64,
    id: Option<u64>,
    /// Blocking label ("acquire(n) on <name>"), formatted lazily on the
    /// first `Pending` poll and reused (an `Rc` clone) on every later one.
    label: Option<Rc<str>>,
}

impl AcquireFuture {
    fn blocked_label(&mut self, name: &Rc<str>) -> Rc<str> {
        if self.label.is_none() {
            self.label = Some(Rc::from(
                format!("acquire({}) on {name}", self.need).as_str(),
            ));
        }
        Rc::clone(self.label.as_ref().unwrap())
    }
}

impl Future for AcquireFuture {
    type Output = Permit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let mut inner = self.sem.inner.borrow_mut();
        match self.id {
            None => {
                // Fast path only when nobody is queued (fairness).
                if inner.waiters.is_empty() && inner.permits >= self.need {
                    inner.permits -= self.need;
                    drop(inner);
                    let n = self.need;
                    return Poll::Ready(Permit {
                        sem: self.sem.clone(),
                        n,
                    });
                }
                let id = inner.next_id;
                inner.next_id += 1;
                inner.waiters.push_back(Waiter {
                    id,
                    need: self.need,
                    waker: Some(cx.waker().clone()),
                    granted: false,
                });
                inner.grant();
                // grant() may have granted us synchronously.
                let granted = inner
                    .waiters
                    .iter()
                    .find(|w| w.id == id)
                    .map(|w| w.granted)
                    .unwrap_or(false);
                if granted {
                    inner.remove_waiter(id);
                    inner.grant();
                    drop(inner);
                    let n = self.need;
                    return Poll::Ready(Permit {
                        sem: self.sem.clone(),
                        n,
                    });
                }
                let name = Rc::clone(&inner.name);
                drop(inner);
                let label = self.blocked_label(&name);
                note_current_blocked(label);
                self.id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                let granted = inner
                    .waiters
                    .iter()
                    .find(|w| w.id == id)
                    .map(|w| w.granted)
                    .unwrap_or(false);
                if granted {
                    inner.remove_waiter(id);
                    inner.grant();
                    drop(inner);
                    self.id = None;
                    let n = self.need;
                    Poll::Ready(Permit {
                        sem: self.sem.clone(),
                        n,
                    })
                } else {
                    if let Some(w) = inner.waiters.iter_mut().find(|w| w.id == id) {
                        w.waker = Some(cx.waker().clone());
                    }
                    let name = Rc::clone(&inner.name);
                    drop(inner);
                    let label = self.blocked_label(&name);
                    note_current_blocked(label);
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for AcquireFuture {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut inner = self.sem.inner.borrow_mut();
            if let Some(w) = inner.remove_waiter(id) {
                if w.granted {
                    // Granted but never observed: return the permits.
                    inner.permits += w.need;
                }
                inner.grant();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn limits_concurrency() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let peak = Rc::new(RefCell::new((0u32, 0u32))); // (current, peak)
        for _ in 0..6 {
            let sem = sem.clone();
            let sim2 = sim.clone();
            let peak2 = Rc::clone(&peak);
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                {
                    let mut g = peak2.borrow_mut();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                sim2.sleep(SimDuration::from_secs(1)).await;
                peak2.borrow_mut().0 -= 1;
            })
            .detach();
        }
        let end = sim.run();
        assert_eq!(peak.borrow().1, 2);
        assert_eq!(end.as_nanos(), 3_000_000_000); // 6 jobs / 2 wide / 1s each
    }

    #[test]
    fn fifo_no_barging() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let order = Rc::new(RefCell::new(Vec::new()));
        // t=0: task A takes both permits for 1s.
        {
            let sem = sem.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire(2).await;
                sim2.sleep(SimDuration::from_secs(1)).await;
            })
            .detach();
        }
        // B needs 2 (queued first), C needs 1 (queued second). C must NOT
        // sneak past B when 1 permit frees transiently.
        for (name, need) in [("B", 2u64), ("C", 1u64)] {
            let sem = sem.clone();
            let sim2 = sim.clone();
            let order2 = Rc::clone(&order);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(1)).await;
                if name == "C" {
                    sim2.sleep(SimDuration::from_millis(1)).await;
                }
                let _p = sem.acquire(need).await;
                order2.borrow_mut().push(name);
                sim2.sleep(SimDuration::from_secs(1)).await;
            })
            .detach();
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["B", "C"]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let p = sem.try_acquire(1).unwrap();
        // A waiter queues up.
        {
            let sem = sem.clone();
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
            })
            .detach();
        }
        // Poll the waiter into the queue.
        sim.run_until(crate::time::SimTime::from_nanos(1));
        assert!(
            sem.try_acquire(1).is_none(),
            "queue is empty but waiter exists"
        );
        drop(p);
        sim.run();
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn release_partial_and_forget() {
        let sem = Semaphore::new(10);
        let mut p = sem.try_acquire(8).unwrap();
        p.release_partial(3);
        assert_eq!(sem.available(), 5);
        p.forget();
        assert_eq!(sem.available(), 5); // 5 permits leaked
    }

    #[test]
    fn permits_return_on_drop() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(3);
        {
            let sem = sem.clone();
            sim.spawn(async move {
                let _a = sem.acquire(2).await;
            })
            .detach();
        }
        sim.run();
        assert_eq!(sem.available(), 3);
    }
}
