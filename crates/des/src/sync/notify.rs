//! Edge-triggered notification, the building block for condition-variable
//! style waiting inside the simulation.
//!
//! A waiter snapshots the notify epoch when the [`Notified`] future is
//! *created*; the future resolves once the epoch moves past the snapshot.
//! This gives the usual "no lost wakeups between check and wait" guarantee:
//! create the future while the predicate is false, re-check, then await.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::note_current_blocked;

struct Inner {
    epoch: u64,
    waiters: Vec<Waker>,
    /// Recycled buffer for the multi-waiter `notify_all` path so repeated
    /// fan-outs reuse one allocation instead of re-growing the waiter list
    /// from empty on every cycle.
    scratch: Vec<Waker>,
    /// Pre-formatted blocking label ("notified on <name>"), built once at
    /// construction so `Pending` polls record it with an `Rc` clone instead
    /// of a `format!` allocation.
    label: Rc<str>,
}

/// A cloneable, edge-triggered event.
#[derive(Clone)]
pub struct Notify {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates a new notifier.
    pub fn new() -> Self {
        Self::new_named("notify")
    }

    /// Creates a named notifier. Tasks stalled waiting on it appear as
    /// "notified on <name>" in
    /// [`crate::executor::Sim::step_until_no_events`] reports.
    pub fn new_named(name: &str) -> Self {
        Notify {
            inner: Rc::new(RefCell::new(Inner {
                epoch: 0,
                waiters: Vec::new(),
                scratch: Vec::new(),
                label: Rc::from(format!("notified on {name}").as_str()),
            })),
        }
    }

    /// Wakes every waiter whose [`Notified`] future was created before this
    /// call.
    ///
    /// The common runtime pattern is a single daemon parked on one notifier
    /// (per-node heartbeats on `work`, one joiner on `done`), so the hot
    /// path is exactly one waiter. That case pops the waker directly and
    /// keeps the waiter buffer; the fan-out case swaps the buffer with a
    /// recycled scratch vector. Wake *order* is identical to the naive
    /// drain in both cases, so replay trace hashes are unaffected.
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        match inner.waiters.len() {
            0 => {}
            1 => {
                // Single-waiter fast path: no buffer churn at all.
                let w = inner.waiters.pop().expect("len checked");
                drop(inner);
                w.wake();
            }
            _ => {
                let mut waiters = std::mem::take(&mut inner.scratch);
                std::mem::swap(&mut inner.waiters, &mut waiters);
                drop(inner);
                for w in waiters.drain(..) {
                    w.wake();
                }
                // Hand the (drained, still-allocated) buffer back for reuse.
                self.inner.borrow_mut().scratch = waiters;
            }
        }
    }

    /// Returns a future that resolves at the next `notify_all` after this
    /// call.
    pub fn notified(&self) -> Notified {
        Notified {
            inner: Rc::clone(&self.inner),
            seen: self.inner.borrow().epoch,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    inner: Rc<RefCell<Inner>>,
    seen: u64,
}

impl Future for Notified {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.epoch > self.seen {
            Poll::Ready(())
        } else {
            inner.waiters.push(cx.waker().clone());
            let label = Rc::clone(&inner.label);
            drop(inner);
            note_current_blocked(label);
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn notified_wakes_waiter() {
        let sim = Sim::new(1);
        let n = Notify::new();
        let hit = Rc::new(Cell::new(false));

        let n2 = n.clone();
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            n2.notified().await;
            hit2.set(true);
        })
        .detach();

        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_secs(1)).await;
            n.notify_all();
        })
        .detach();

        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end.as_nanos(), 1_000_000_000);
    }

    #[test]
    fn notification_before_creation_is_missed() {
        // Edge semantics: a notify_all that happened before the future was
        // created must not satisfy it.
        let sim = Sim::new(1);
        let n = Notify::new();
        n.notify_all();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        let fut = n.notified(); // created AFTER the notify above
        sim.spawn(async move {
            fut.await;
            hit2.set(true);
        })
        .detach();
        sim.run();
        assert!(!hit.get());
    }

    #[test]
    fn notification_between_creation_and_await_is_caught() {
        // The "check-then-wait" pattern: future created first, notify fires,
        // then the await must complete immediately.
        let sim = Sim::new(1);
        let n = Notify::new();
        let fut = n.notified();
        n.notify_all();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            fut.await;
            hit2.set(true);
        })
        .detach();
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn repeated_cycles_hit_both_fast_paths() {
        // Alternating single-waiter and fan-out rounds through the same
        // notifier: the scratch-buffer recycling and the pop fast path must
        // both deliver every wakeup, round after round.
        let sim = Sim::new(7);
        let n = Notify::new();
        let count = Rc::new(Cell::new(0u32));
        let mut expected = 0u32;
        for round in 0..6u64 {
            let waiters = if round % 2 == 0 { 1 } else { 4 };
            expected += waiters;
            for _ in 0..waiters {
                let n2 = n.clone();
                let c = Rc::clone(&count);
                sim.spawn(async move {
                    n2.notified().await;
                    c.set(c.get() + 1);
                })
                .detach();
            }
            let n2 = n.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(round + 1)).await;
                n2.notify_all();
            })
            .detach();
            sim.run();
        }
        assert_eq!(count.get(), expected);
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let sim = Sim::new(1);
        let n = Notify::new();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let n2 = n.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                n2.notified().await;
                c.set(c.get() + 1);
            })
            .detach();
        }
        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(1)).await;
            n.notify_all();
        })
        .detach();
        sim.run();
        assert_eq!(count.get(), 5);
    }
}
