//! Edge-triggered notification, the building block for condition-variable
//! style waiting inside the simulation.
//!
//! A waiter snapshots the notify epoch when the [`Notified`] future is
//! *created*; the future resolves once the epoch moves past the snapshot.
//! This gives the usual "no lost wakeups between check and wait" guarantee:
//! create the future while the predicate is false, re-check, then await.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::note_current_blocked;

struct Inner {
    epoch: u64,
    waiters: Vec<Waker>,
    /// Pre-formatted blocking label ("notified on <name>"), built once at
    /// construction so `Pending` polls record it with an `Rc` clone instead
    /// of a `format!` allocation.
    label: Rc<str>,
}

/// A cloneable, edge-triggered event.
#[derive(Clone)]
pub struct Notify {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates a new notifier.
    pub fn new() -> Self {
        Self::new_named("notify")
    }

    /// Creates a named notifier. Tasks stalled waiting on it appear as
    /// "notified on <name>" in
    /// [`crate::executor::Sim::step_until_no_events`] reports.
    pub fn new_named(name: &str) -> Self {
        Notify {
            inner: Rc::new(RefCell::new(Inner {
                epoch: 0,
                waiters: Vec::new(),
                label: Rc::from(format!("notified on {name}").as_str()),
            })),
        }
    }

    /// Wakes every waiter whose [`Notified`] future was created before this
    /// call.
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        let waiters = std::mem::take(&mut inner.waiters);
        drop(inner);
        for w in waiters {
            w.wake();
        }
    }

    /// Returns a future that resolves at the next `notify_all` after this
    /// call.
    pub fn notified(&self) -> Notified {
        Notified {
            inner: Rc::clone(&self.inner),
            seen: self.inner.borrow().epoch,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    inner: Rc<RefCell<Inner>>,
    seen: u64,
}

impl Future for Notified {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.epoch > self.seen {
            Poll::Ready(())
        } else {
            inner.waiters.push(cx.waker().clone());
            let label = Rc::clone(&inner.label);
            drop(inner);
            note_current_blocked(label);
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn notified_wakes_waiter() {
        let sim = Sim::new(1);
        let n = Notify::new();
        let hit = Rc::new(Cell::new(false));

        let n2 = n.clone();
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            n2.notified().await;
            hit2.set(true);
        })
        .detach();

        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_secs(1)).await;
            n.notify_all();
        })
        .detach();

        let end = sim.run();
        assert!(hit.get());
        assert_eq!(end.as_nanos(), 1_000_000_000);
    }

    #[test]
    fn notification_before_creation_is_missed() {
        // Edge semantics: a notify_all that happened before the future was
        // created must not satisfy it.
        let sim = Sim::new(1);
        let n = Notify::new();
        n.notify_all();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        let fut = n.notified(); // created AFTER the notify above
        sim.spawn(async move {
            fut.await;
            hit2.set(true);
        })
        .detach();
        sim.run();
        assert!(!hit.get());
    }

    #[test]
    fn notification_between_creation_and_await_is_caught() {
        // The "check-then-wait" pattern: future created first, notify fires,
        // then the await must complete immediately.
        let sim = Sim::new(1);
        let n = Notify::new();
        let fut = n.notified();
        n.notify_all();
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            fut.await;
            hit2.set(true);
        })
        .detach();
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let sim = Sim::new(1);
        let n = Notify::new();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let n2 = n.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                n2.notified().await;
                c.set(c.get() + 1);
            })
            .detach();
        }
        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(1)).await;
            n.notify_all();
        })
        .detach();
        sim.run();
        assert_eq!(count.get(), 5);
    }
}
