//! Minimal future combinators: `select2` (first of two) and `join_all`.
//!
//! The kernel deliberately avoids pulling in a futures library; simulated
//! components need only these two shapes — racing a timer against a
//! notification, and waiting for a batch of spawned children.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Outcome of [`select2`]: which future finished first, with its output.
/// The losing future is dropped.
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Races two futures, resolving with the first to finish. If both are ready
/// on the same poll, the left future wins (deterministic tie-break).
pub fn select2<A: Future, B: Future>(a: A, b: B) -> Select2<A, B> {
    Select2 { a, b }
}

/// Future returned by [`select2`].
pub struct Select2<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Select2<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning; `a` and `b` are never moved out of
        // `self` while pinned, only polled in place or dropped with the whole.
        let this = unsafe { self.get_unchecked_mut() };
        let a = unsafe { Pin::new_unchecked(&mut this.a) };
        if let Poll::Ready(v) = a.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        let b = unsafe { Pin::new_unchecked(&mut this.b) };
        if let Poll::Ready(v) = b.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Awaits every future in `futs`, returning outputs in input order.
pub async fn join_all<F: Future>(futs: Vec<F>) -> Vec<F::Output> {
    let mut futs: Vec<Pin<Box<F>>> = futs.into_iter().map(Box::pin).collect();
    let mut out: Vec<Option<F::Output>> = futs.iter().map(|_| None).collect();
    JoinAll {
        futs: &mut futs,
        out: &mut out,
    }
    .await;
    out.into_iter().map(|v| v.expect("join_all slot")).collect()
}

struct JoinAll<'a, F: Future> {
    futs: &'a mut Vec<Pin<Box<F>>>,
    out: &'a mut Vec<Option<F::Output>>,
}

impl<F: Future> Future for JoinAll<'_, F> {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut all_done = true;
        for (i, fut) in this.futs.iter_mut().enumerate() {
            if this.out[i].is_some() {
                continue;
            }
            match fut.as_mut().poll(cx) {
                Poll::Ready(v) => this.out[i] = Some(v),
                Poll::Pending => all_done = false,
            }
        }
        if all_done {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn select_picks_earlier_timer() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let won = Rc::new(Cell::new(' '));
        let won2 = Rc::clone(&won);
        sim.spawn(async move {
            let r = select2(
                sim2.sleep(SimDuration::from_secs(2)),
                sim2.sleep(SimDuration::from_secs(1)),
            )
            .await;
            won2.set(match r {
                Either::Left(()) => 'L',
                Either::Right(()) => 'R',
            });
        })
        .detach();
        let end = sim.run();
        assert_eq!(won.get(), 'R');
        // The losing 2 s timer must have been cancelled: sim ends at 1 s.
        assert_eq!(end.as_nanos(), 1_000_000_000);
    }

    #[test]
    fn select_tie_breaks_left() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let won = Rc::new(Cell::new(' '));
        let won2 = Rc::clone(&won);
        sim.spawn(async move {
            let d = SimDuration::from_secs(1);
            let r = select2(sim2.sleep(d), sim2.sleep(d)).await;
            won2.set(if matches!(r, Either::Left(())) {
                'L'
            } else {
                'R'
            });
        })
        .detach();
        sim.run();
        assert_eq!(won.get(), 'L');
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let mut futs = Vec::new();
            for i in [3u64, 1, 2] {
                let s = sim2.clone();
                futs.push(async move {
                    s.sleep(SimDuration::from_secs(i)).await;
                    i * 10
                });
            }
            let results = join_all(futs).await;
            assert_eq!(results, vec![30, 10, 20]);
            out2.set(1);
        })
        .detach();
        let end = sim.run();
        assert_eq!(out.get(), 1);
        assert_eq!(end.as_nanos(), 3_000_000_000);
    }

    #[test]
    fn join_all_empty_is_immediate() {
        let sim = Sim::new(1);
        sim.spawn(async move {
            let v: Vec<u32> = join_all(Vec::<std::future::Ready<u32>>::new()).await;
            assert!(v.is_empty());
        })
        .detach();
        assert_eq!(sim.run(), crate::time::SimTime::ZERO);
    }
}
