//! Async multi-producer multi-consumer channels for simulated processes.
//!
//! Channels carry work items between simulated threads exactly the way
//! Hadoop's internal queues do (`DataRequestQueue`, `DataToMergeQueue`,
//! `DataToReduceQueue` from the paper all map onto these). Both unbounded
//! and bounded (back-pressure) flavours are provided. Delivery order is
//! strict FIFO and receivers are served in arrival order, which keeps the
//! simulation deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::note_current_blocked;

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
    recv_wakers: VecDeque<Waker>,
    send_wakers: VecDeque<Waker>,
    /// Pre-formatted blocking labels ("send on <name>" / "recv on <name>"),
    /// built once at construction so `Pending` polls record them with an
    /// `Rc` clone instead of a `format!` allocation.
    send_label: Rc<str>,
    recv_label: Rc<str>,
}

impl<T> Inner<T> {
    fn wake_one_recv(&mut self) {
        if let Some(w) = self.recv_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_one_send(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_all(&mut self) {
        for w in self.recv_wakers.drain(..) {
            w.wake();
        }
        for w in self.send_wakers.drain(..) {
            w.wake();
        }
    }
}

/// Creates an unbounded FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity_opt(None, "channel")
}

/// Creates an unbounded FIFO channel with a diagnostic name. Tasks stalled
/// on this channel appear as "recv on <name>" / "send on <name>" in
/// [`crate::executor::Sim::step_until_no_events`] reports.
pub fn channel_named<T>(name: &str) -> (Sender<T>, Receiver<T>) {
    with_capacity_opt(None, name)
}

/// Creates a bounded FIFO channel; `send` suspends while `cap` items are
/// queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be positive");
    with_capacity_opt(Some(cap), "channel")
}

/// Creates a bounded FIFO channel with a diagnostic name (see
/// [`channel_named`]).
pub fn bounded_named<T>(name: &str, cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be positive");
    with_capacity_opt(Some(cap), name)
}

fn with_capacity_opt<T>(capacity: Option<usize>, name: &str) -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(Inner {
        queue: VecDeque::new(),
        capacity,
        senders: 1,
        receivers: 1,
        recv_wakers: VecDeque::new(),
        send_wakers: VecDeque::new(),
        send_label: Rc::from(format!("send on {name}").as_str()),
        recv_label: Rc::from(format!("recv on {name}").as_str()),
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Sending half of a channel.
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Error returned when sending into a channel with no live receivers.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().receivers += 1;
        Receiver {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            inner.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            inner.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends without waiting; only valid on unbounded channels (panics on a
    /// bounded channel — use `send().await` there).
    pub fn send_now(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.capacity.is_none(),
            "send_now on a bounded channel would break back-pressure"
        );
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        inner.wake_one_recv();
        Ok(())
    }

    /// Sends, suspending while a bounded channel is full. Resolves to an
    /// error if every receiver has been dropped.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            sender: self,
            value: Some(value),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, suspending while the channel is empty.
    /// Resolves to `None` once the channel is empty *and* every sender has
    /// been dropped.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let v = inner.queue.pop_front();
        if v.is_some() {
            inner.wake_one_send();
        }
        v
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

// `SendFuture` owns no self-referential state; moving it between polls is
// sound, so it is `Unpin` and `poll` can use `DerefMut` directly.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.sender.inner.borrow_mut();
        let value = self
            .value
            .take()
            .expect("SendFuture polled after completion");
        if inner.receivers == 0 {
            return Poll::Ready(Err(SendError(value)));
        }
        match inner.capacity {
            Some(cap) if inner.queue.len() >= cap => {
                inner.send_wakers.push_back(cx.waker().clone());
                let label = Rc::clone(&inner.send_label);
                drop(inner);
                note_current_blocked(label);
                self.value = Some(value);
                Poll::Pending
            }
            _ => {
                inner.queue.push_back(value);
                inner.wake_one_recv();
                Poll::Ready(Ok(()))
            }
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.receiver.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            inner.wake_one_send();
            return Poll::Ready(Some(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(None);
        }
        inner.recv_wakers.push_back(cx.waker().clone());
        let label = Rc::clone(&inner.recv_label);
        drop(inner);
        note_current_blocked(label);
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn fifo_order_is_preserved() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let got = Rc::new(StdRefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                got2.borrow_mut().push(v);
            }
        })
        .detach();
        sim.spawn(async move {
            for i in 0..5 {
                tx.send_now(i).unwrap();
            }
        })
        .detach();
        sim.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let done = Rc::new(StdRefCell::new(Vec::new()));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                done2.borrow_mut().push(v);
            }
            done2.borrow_mut().push(999);
        })
        .detach();
        tx.send_now(1).unwrap();
        drop(tx);
        sim.run();
        assert_eq!(*done.borrow(), vec![1, 999]);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let sim = Sim::new(1);
        let (tx, rx) = bounded::<u32>(2);
        let sent_at = Rc::new(StdRefCell::new(Vec::new()));
        let sa = Rc::clone(&sent_at);
        let sim2 = sim.clone();
        sim.spawn(async move {
            for i in 0..4 {
                tx.send(i).await.unwrap();
                sa.borrow_mut().push(sim2.now().as_nanos());
            }
        })
        .detach();
        let sim3 = sim.clone();
        sim.spawn(async move {
            // Drain one item per second.
            loop {
                sim3.sleep(SimDuration::from_secs(1)).await;
                if rx.recv().await.is_none() {
                    break;
                }
            }
        })
        .detach();
        sim.run();
        let sent_at = sent_at.borrow();
        // First two fit immediately; 3rd waits for drain at t=1s, 4th at 2s.
        assert_eq!(sent_at[0], 0);
        assert_eq!(sent_at[1], 0);
        assert_eq!(sent_at[2], 1_000_000_000);
        assert_eq!(sent_at[3], 2_000_000_000);
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send_now(5), Err(SendError(5)));
        sim.run();
    }

    #[test]
    fn multiple_consumers_each_get_items() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let total = Rc::new(StdRefCell::new(0u32));
        for _ in 0..3 {
            let rx = rx.clone();
            let t = Rc::clone(&total);
            sim.spawn(async move {
                while let Some(v) = rx.recv().await {
                    *t.borrow_mut() += v;
                }
            })
            .detach();
        }
        drop(rx);
        sim.spawn(async move {
            for i in 1..=10 {
                tx.send_now(i).unwrap();
            }
        })
        .detach();
        sim.run();
        assert_eq!(*total.borrow(), 55);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send_now(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
    }
}
