//! Synchronisation primitives for simulated processes.

pub mod channel;
pub mod notify;
pub mod select;
pub mod semaphore;

pub use channel::{bounded, bounded_named, channel, channel_named, Receiver, SendError, Sender};
pub use notify::{Notified, Notify};
pub use select::{join_all, select2, Either, Select2};
pub use semaphore::{Permit, Semaphore};
