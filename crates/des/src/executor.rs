//! A deterministic single-threaded async executor driven by a virtual clock.
//!
//! Simulated processes are ordinary `async` blocks spawned onto a [`Sim`].
//! The event loop alternates two phases:
//!
//! 1. drain the ready queue, polling every runnable task at the current
//!    virtual instant;
//! 2. when no task is runnable, pop the earliest scheduled event, advance the
//!    clock to its timestamp, and fire it (waking tasks or running a closure).
//!
//! All state lives behind a single `Rc<RefCell<Core>>`; user code is never
//! invoked while the core is borrowed, so re-entrant calls into the [`Sim`]
//! handle from inside tasks and event closures are always safe.
//!
//! Determinism: ties in the event heap break on a monotonically increasing
//! sequence number, the ready queue is FIFO, and nothing consults wall-clock
//! time or OS entropy (randomness comes from the seeded [`rand`] generator on
//! the [`Sim`] handle).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task. Carries a generation so stale wakers for a
/// recycled slot are ignored instead of waking an unrelated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    index: u32,
    gen: u32,
}

/// Identifier of a scheduled event; cancellable until it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    index: u32,
    gen: u32,
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;
type EventFn = Box<dyn FnOnce(&Sim) + 'static>;

enum EventAction {
    Wake(Waker),
    Call(EventFn),
}

struct EventSlot {
    gen: u32,
    /// `None` when the slot is vacant or the event was cancelled.
    action: Option<EventAction>,
}

struct TaskSlot {
    gen: u32,
    /// Taken out of the slot while the future is being polled.
    future: Option<LocalFuture>,
    live: bool,
}

/// The shared FIFO of tasks made runnable by wakers. `Waker` must be
/// `Send + Sync`, hence the `Arc<Mutex<..>>` even though the executor itself
/// is single-threaded (the mutex is never contended).
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct WakeEntry {
    task: TaskId,
    ready: ReadyQueue,
}

impl Wake for WakeEntry {
    fn wake(self: Arc<Self>) {
        self.ready.lock().unwrap().push_back(self.task);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.lock().unwrap().push_back(self.task);
    }
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    event: EventId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Core {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    events: Vec<EventSlot>,
    free_events: Vec<u32>,
    tasks: Vec<TaskSlot>,
    free_tasks: Vec<u32>,
    live_tasks: usize,
    ready: ReadyQueue,
    rng: SmallRng,
    events_fired: u64,
    polls: u64,
}

impl Core {
    fn alloc_event(&mut self, action: EventAction) -> EventId {
        if let Some(index) = self.free_events.pop() {
            let slot = &mut self.events[index as usize];
            slot.action = Some(action);
            EventId {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.events.len() as u32;
            self.events.push(EventSlot {
                gen: 0,
                action: Some(action),
            });
            EventId { index, gen: 0 }
        }
    }

    fn release_event(&mut self, id: EventId) {
        let slot = &mut self.events[id.index as usize];
        debug_assert_eq!(slot.gen, id.gen);
        slot.gen = slot.gen.wrapping_add(1);
        slot.action = None;
        self.free_events.push(id.index);
    }
}

/// Cloneable handle to a running simulation. All simulation primitives
/// (timers, channels, resources) are built on this handle.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    metrics: Metrics,
}

impl Sim {
    /// Creates a fresh simulation whose random generator is seeded with
    /// `seed`. Equal seeds (and equal programs) produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                events: Vec::new(),
                free_events: Vec::new(),
                tasks: Vec::new(),
                free_tasks: Vec::new(),
                live_tasks: 0,
                ready: Arc::new(Mutex::new(VecDeque::new())),
                rng: SmallRng::seed_from_u64(seed),
                events_fired: 0,
                polls: 0,
            })),
            metrics: Metrics::new(),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// The metrics registry shared by every component of this simulation.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs `f` with the simulation's deterministic random generator.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.core.borrow_mut().rng)
    }

    /// Number of events fired so far (diagnostic).
    pub fn events_fired(&self) -> u64 {
        self.core.borrow().events_fired
    }

    /// Number of task polls so far (diagnostic).
    pub fn polls(&self) -> u64 {
        self.core.borrow().polls
    }

    /// Schedules `action` to run at absolute time `at` (clamped to now if in
    /// the past). Returns an id that can cancel the event before it fires.
    pub fn schedule_fn(&self, at: SimTime, action: impl FnOnce(&Sim) + 'static) -> EventId {
        self.schedule(at, EventAction::Call(Box::new(action)))
    }

    /// Schedules `waker` to be woken at absolute time `at`.
    pub fn schedule_wake(&self, at: SimTime, waker: Waker) -> EventId {
        self.schedule(at, EventAction::Wake(waker))
    }

    fn schedule(&self, at: SimTime, action: EventAction) -> EventId {
        let mut core = self.core.borrow_mut();
        let at = at.max(core.now);
        let id = core.alloc_event(action);
        let seq = core.seq;
        core.seq += 1;
        core.heap.push(Reverse(HeapEntry {
            time: at,
            seq,
            event: id,
        }));
        id
    }

    /// Cancels a pending event. Harmless if the event already fired (the
    /// generation check rejects stale ids).
    pub fn cancel(&self, id: EventId) {
        let mut core = self.core.borrow_mut();
        let slot = &mut core.events[id.index as usize];
        if slot.gen == id.gen {
            // Leave the heap entry in place; it is skipped when popped.
            slot.action = None;
        }
    }

    /// Replaces the waker of a pending timer event (used when a timer future
    /// is polled again with a different waker).
    pub(crate) fn reset_wake(&self, id: EventId, waker: Waker) {
        let mut core = self.core.borrow_mut();
        let slot = &mut core.events[id.index as usize];
        if slot.gen == id.gen && slot.action.is_some() {
            slot.action = Some(EventAction::Wake(waker));
        }
    }

    pub(crate) fn event_is_pending(&self, id: EventId) -> bool {
        let core = self.core.borrow();
        let slot = &core.events[id.index as usize];
        slot.gen == id.gen && slot.action.is_some()
    }

    /// Spawns a task and returns a [`JoinHandle`] yielding its output.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            detached: false,
        }));
        let state2 = Rc::clone(&state);
        self.spawn_unit(async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        JoinHandle { state }
    }

    fn spawn_unit(&self, fut: impl Future<Output = ()> + 'static) {
        let mut core = self.core.borrow_mut();
        let future: LocalFuture = Box::pin(fut);
        let id = if let Some(index) = core.free_tasks.pop() {
            let slot = &mut core.tasks[index as usize];
            slot.future = Some(future);
            slot.live = true;
            TaskId {
                index,
                gen: slot.gen,
            }
        } else {
            let index = core.tasks.len() as u32;
            core.tasks.push(TaskSlot {
                gen: 0,
                future: Some(future),
                live: true,
            });
            TaskId { index, gen: 0 }
        };
        core.live_tasks += 1;
        core.ready.lock().unwrap().push_back(id);
    }

    /// Sleeps for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Timer {
        Timer {
            sim: self.clone(),
            deadline: self.now() + d,
            event: None,
        }
    }

    /// Sleeps until the absolute instant `at`.
    pub fn sleep_until(&self, at: SimTime) -> Timer {
        Timer {
            sim: self.clone(),
            deadline: at,
            event: None,
        }
    }

    /// Yields once, letting every other currently-runnable task proceed
    /// before this one resumes (still at the same virtual instant).
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn poll_task(&self, id: TaskId) {
        let (future, ready) = {
            let mut core = self.core.borrow_mut();
            core.polls += 1;
            let slot = match core.tasks.get_mut(id.index as usize) {
                Some(s) if s.gen == id.gen && s.live => s,
                _ => return, // stale waker
            };
            match slot.future.take() {
                Some(f) => (f, Arc::clone(&core.ready)),
                // Already being polled higher up the stack (a waker fired
                // synchronously during poll); the re-queued id handles it.
                None => return,
            }
        };
        let waker = Waker::from(Arc::new(WakeEntry { task: id, ready }));
        let mut cx = Context::from_waker(&waker);
        let mut future = future;
        let poll = future.as_mut().poll(&mut cx);
        let mut core = self.core.borrow_mut();
        let slot = &mut core.tasks[id.index as usize];
        match poll {
            Poll::Ready(()) => {
                slot.live = false;
                slot.gen = slot.gen.wrapping_add(1);
                core.free_tasks.push(id.index);
                core.live_tasks -= 1;
            }
            Poll::Pending => {
                slot.future = Some(future);
            }
        }
    }

    /// Runs the event loop until no runnable task and no pending event
    /// remains, or until `limit` (if given) — whichever comes first.
    /// Returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.run_with_limit(None)
    }

    /// [`Sim::run`] with a hard virtual-time limit; events scheduled past the
    /// limit are left unfired.
    pub fn run_until(&self, limit: SimTime) -> SimTime {
        self.run_with_limit(Some(limit))
    }

    fn run_with_limit(&self, limit: Option<SimTime>) -> SimTime {
        // Diagnostic heartbeat: RMR_TRACE=<N> prints progress every N polls
        // (any non-numeric value selects 10M).
        let trace: Option<u64> = std::env::var("RMR_TRACE")
            .ok()
            .map(|v| v.parse().unwrap_or(10_000_000));
        let mut last_trace: u64 = 0;
        loop {
            if let Some(every) = trace {
                let (polls, fired, now) = {
                    let core = self.core.borrow();
                    (core.polls, core.events_fired, core.now)
                };
                if polls / every > last_trace {
                    last_trace = polls / every;
                    eprintln!("[sim-trace] polls={polls} events={fired} t={now}");
                }
            }
            // Phase 1: drain runnable tasks at the current instant.
            loop {
                let next = self.core.borrow().ready.lock().unwrap().pop_front();
                match next {
                    Some(id) => self.poll_task(id),
                    None => break,
                }
            }
            // Phase 2: advance to the next event.
            let fired = {
                let mut core = self.core.borrow_mut();
                loop {
                    match core.heap.pop() {
                        Some(Reverse(entry)) => {
                            {
                                let slot = &core.events[entry.event.index as usize];
                                if slot.gen != entry.event.gen || slot.action.is_none() {
                                    continue; // cancelled or stale
                                }
                            }
                            if let Some(limit) = limit {
                                if entry.time > limit {
                                    // Push back and stop at the limit.
                                    core.heap.push(Reverse(entry));
                                    core.now = limit;
                                    return limit;
                                }
                            }
                            core.now = entry.time;
                            core.events_fired += 1;
                            let id = entry.event;
                            let action = core.events[id.index as usize].action.take();
                            // Release after take so the id can be reused.
                            core.release_event(id);
                            break action;
                        }
                        None => break None,
                    }
                }
            };
            match fired {
                Some(EventAction::Wake(w)) => w.wake(),
                Some(EventAction::Call(f)) => f(self),
                None => {
                    let core = self.core.borrow();
                    debug_assert!(
                        core.ready.lock().unwrap().is_empty(),
                        "ready queue must be empty at quiescence"
                    );
                    return core.now;
                }
            }
        }
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    detached: bool,
}

/// Awaitable completion of a spawned task.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Drops the handle without cancelling the task (tasks are never
    /// cancelled by handle drop in this executor; `detach` just documents
    /// intent).
    pub fn detach(self) {
        self.state.borrow_mut().detached = true;
    }

    /// True once the task has finished.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Timer {
    sim: Sim,
    deadline: SimTime,
    event: Option<EventId>,
}

impl Future for Timer {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            if let Some(ev) = self.event.take() {
                self.sim.cancel(ev);
            }
            return Poll::Ready(());
        }
        match self.event {
            Some(ev) if self.sim.event_is_pending(ev) => {
                self.sim.reset_wake(ev, cx.waker().clone());
            }
            _ => {
                let ev = self.sim.schedule_wake(self.deadline, cx.waker().clone());
                self.event = Some(ev);
            }
        }
        Poll::Pending
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(ev) = self.event.take() {
            self.sim.cancel(ev);
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero_and_advances_with_sleep() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(5)).await;
            done2.set(sim2.now());
        })
        .detach();
        let end = sim.run();
        assert_eq!(done.get(), SimTime::from_nanos(5_000_000));
        assert_eq!(end, SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b", "c"] {
            let sim2 = sim.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                for i in 0..3u32 {
                    sim2.sleep(SimDuration::from_millis(1)).await;
                    log2.borrow_mut().push(format!("{name}{i}"));
                }
            })
            .detach();
        }
        sim.run();
        let got = log.borrow().join(",");
        // FIFO spawn order is preserved at every shared instant.
        assert_eq!(got, "a0,b0,c0,a1,b1,c1,a2,b2,c2");
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let sim3 = sim.clone();
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let h = sim2.spawn(async move {
                sim3.sleep(SimDuration::from_secs(1)).await;
                42u64
            });
            out2.set(h.await);
        })
        .detach();
        sim.run();
        assert_eq!(out.get(), 42);
    }

    #[test]
    fn schedule_fn_runs_at_requested_time() {
        let sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        for ms in [30u64, 10, 20] {
            let hits2 = Rc::clone(&hits);
            sim.schedule_fn(SimTime::from_nanos(ms * 1_000_000), move |s| {
                hits2.borrow_mut().push((ms, s.now()));
            });
        }
        sim.run();
        let hits = hits.borrow();
        assert_eq!(
            hits.iter().map(|(ms, _)| *ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        for (ms, t) in hits.iter() {
            assert_eq!(t.as_nanos(), ms * 1_000_000);
        }
    }

    #[test]
    fn cancelled_event_does_not_fire() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let fired2 = Rc::clone(&fired);
        let id = sim.schedule_fn(SimTime::from_nanos(100), move |_| fired2.set(true));
        sim.cancel(id);
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn run_until_stops_at_limit() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        sim.spawn(async move {
            loop {
                sim2.sleep(SimDuration::from_secs(1)).await;
            }
        })
        .detach();
        let end = sim.run_until(SimTime::from_nanos(3_500_000_000));
        assert_eq!(end.as_nanos(), 3_500_000_000);
        assert_eq!(sim.now().as_nanos(), 3_500_000_000);
    }

    #[test]
    fn yield_now_lets_peers_run_first() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push(1);
            s1.yield_now().await;
            l1.borrow_mut().push(3);
        })
        .detach();
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push(2);
        })
        .detach();
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn identical_seeds_reproduce_rng_streams() {
        use rand::Rng;
        let a = Sim::new(7);
        let b = Sim::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.with_rng(|r| r.gen())).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.with_rng(|r| r.gen())).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn timer_drop_cancels_event() {
        let sim = Sim::new(1);
        {
            let _t = sim.sleep(SimDuration::from_secs(10));
            // dropped immediately without being polled — no event scheduled
        }
        let sim2 = sim.clone();
        sim.spawn(async move {
            // Poll a timer once, then drop it via select-like abandonment:
            // emulate by polling manually inside a wrapper future.
            struct PollOnce(Timer);
            impl Future for PollOnce {
                type Output = ();
                fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    // SAFETY: structural pinning of the only field.
                    let timer = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
                    let _ = timer.poll(cx);
                    Poll::Ready(())
                }
            }
            PollOnce(sim2.sleep(SimDuration::from_secs(100))).await;
        })
        .detach();
        let end = sim.run();
        // The abandoned 100 s timer must not hold the clock hostage.
        assert_eq!(end, SimTime::ZERO);
    }
}
