//! A deterministic single-threaded async executor driven by a virtual clock.
//!
//! Simulated processes are ordinary `async` blocks spawned onto a [`Sim`].
//! The event loop alternates two phases:
//!
//! 1. drain the ready queue, polling every runnable task at the current
//!    virtual instant;
//! 2. when no task is runnable, pop the earliest scheduled event, advance the
//!    clock to its timestamp, and fire it (waking tasks or running a closure).
//!
//! All state lives behind a single `Rc<RefCell<Core>>`; user code is never
//! invoked while the core is borrowed, so re-entrant calls into the [`Sim`]
//! handle from inside tasks and event closures are always safe.
//!
//! Determinism: ties in the event heap break on a monotonically increasing
//! sequence number, the ready queue is FIFO, and nothing consults wall-clock
//! time or OS entropy (randomness comes from the seeded [`rand`] generator on
//! the [`Sim`] handle).
//!
//! Runtime checkers: every task carries a name ([`Sim::spawn_named`]); sync
//! primitives record what a pending task is blocked on
//! ([`note_current_blocked`]); the executor folds every event firing and task
//! poll into a running trace hash ([`Sim::trace_hash`]), which
//! [`assert_deterministic`] uses to diff two runs of the same seed; and
//! [`Sim::step_until_no_events`] reports tasks that are still live when the
//! event heap drains — the lost-waker/deadlock detector.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task. Carries a generation so stale wakers for a
/// recycled slot are ignored instead of waking an unrelated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    index: u32,
    gen: u32,
}

/// Identifier of a scheduled event; cancellable until it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    index: u32,
    gen: u32,
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;
type EventFn = Box<dyn FnOnce(&Sim) + 'static>;

enum EventAction {
    Wake(Waker),
    Call(EventFn),
}

struct EventSlot {
    gen: u32,
    /// `None` when the slot is vacant or the event was cancelled.
    action: Option<EventAction>,
}

struct TaskSlot {
    gen: u32,
    /// Taken out of the slot while the future is being polled.
    future: Option<LocalFuture>,
    live: bool,
    /// Diagnostic name; defaults to `task-<n>` in spawn order.
    name: Rc<str>,
    /// What the task reported waiting on at its last `Pending` poll
    /// (set by sync primitives via [`note_current_blocked`]).
    blocked_on: Option<BlockedLabel>,
    /// Daemon tasks (server loops that live as long as the sim) are
    /// excluded from quiescence stall reports, like Java daemon threads.
    daemon: bool,
    /// Waker for this (slot, generation), built once at spawn and cloned
    /// (an `Arc` bump) on every poll instead of allocating a fresh
    /// `WakeEntry` per poll.
    waker: Waker,
    /// Shared with this generation's [`WakeEntry`]: true while the task sits
    /// in the ready queue, so broadcast wake fan-out (a fluid completion
    /// batch finishing every leg of one transfer's `join_all` at the same
    /// instant) collapses to a single queue entry and a single poll.
    queued: Arc<AtomicBool>,
}

/// The shared FIFO of tasks made runnable by wakers. `Waker` must be
/// `Send + Sync`, hence the `Arc<Mutex<..>>` even though the executor itself
/// is single-threaded (the mutex is never contended).
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct WakeEntry {
    task: TaskId,
    ready: ReadyQueue,
    /// See [`TaskSlot::queued`]. Redundant wakes while the task is already
    /// queued are dropped; the executor clears the flag when it pops the
    /// task, so wakes arriving during a poll still re-queue it.
    queued: Arc<AtomicBool>,
}

impl Wake for WakeEntry {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::Relaxed) {
            self.ready.lock().unwrap().push_back(self.task);
        }
    }
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    event: EventId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Core {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    events: Vec<EventSlot>,
    free_events: Vec<u32>,
    tasks: Vec<TaskSlot>,
    free_tasks: Vec<u32>,
    live_tasks: usize,
    ready: ReadyQueue,
    rng: SmallRng,
    events_fired: u64,
    polls: u64,
    spawns: u64,
    /// FNV-1a fold of every (time, seq) event firing and every
    /// (time, poll-seq, task) poll. Identical programs on identical seeds
    /// must produce identical hashes — `assert_deterministic` diffs them.
    trace_hash: u64,
}

/// FNV-1a fold of `bytes` into `hash`.
fn fold_hash(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

thread_local! {
    /// The task currently being polled by the executor on this thread, so
    /// sync primitives can attribute their `Pending` to it without holding
    /// a reference into the core.
    static CURRENT_TASK: RefCell<Option<(std::rc::Weak<RefCell<Core>>, TaskId)>> =
        const { RefCell::new(None) };
}

/// A blocking-reason label: either a static description or a shared,
/// pre-formatted string owned by the sync primitive that records it. Sync
/// primitives format their label once at construction and hand out `Rc`
/// clones on every `Pending` poll, so the per-poll cost is a refcount bump
/// rather than a `format!` allocation.
#[derive(Clone)]
pub enum BlockedLabel {
    /// A compile-time constant reason (e.g. `"join on spawned task"`).
    Static(&'static str),
    /// A shared, pre-formatted reason (e.g. `"recv on map-output"`).
    Shared(Rc<str>),
}

impl BlockedLabel {
    fn as_str(&self) -> &str {
        match self {
            BlockedLabel::Static(s) => s,
            BlockedLabel::Shared(s) => s,
        }
    }
}

impl From<&'static str> for BlockedLabel {
    fn from(s: &'static str) -> Self {
        BlockedLabel::Static(s)
    }
}

impl From<Rc<str>> for BlockedLabel {
    fn from(s: Rc<str>) -> Self {
        BlockedLabel::Shared(s)
    }
}

impl From<&Rc<str>> for BlockedLabel {
    fn from(s: &Rc<str>) -> Self {
        BlockedLabel::Shared(Rc::clone(s))
    }
}

impl From<String> for BlockedLabel {
    fn from(s: String) -> Self {
        BlockedLabel::Shared(Rc::from(s.as_str()))
    }
}

/// Records what the currently-polled task is blocked on. Called by the sync
/// primitives (channels, semaphores, notify, join handles) on their
/// `Pending` path; a no-op outside a task poll. The label surfaces in
/// [`Sim::step_until_no_events`]'s stall report.
pub fn note_current_blocked(label: impl Into<BlockedLabel>) {
    CURRENT_TASK.with(|c| {
        if let Some((core, id)) = c.borrow().as_ref() {
            if let Some(core) = core.upgrade() {
                let mut core = core.borrow_mut();
                if let Some(slot) = core.tasks.get_mut(id.index as usize) {
                    if slot.gen == id.gen && slot.live {
                        slot.blocked_on = Some(label.into());
                    }
                }
            }
        }
    });
}

impl Core {
    fn alloc_event(&mut self, action: EventAction) -> EventId {
        if let Some(index) = self.free_events.pop() {
            let slot = &mut self.events[index as usize];
            slot.action = Some(action);
            EventId {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.events.len() as u32;
            self.events.push(EventSlot {
                gen: 0,
                action: Some(action),
            });
            EventId { index, gen: 0 }
        }
    }

    fn release_event(&mut self, id: EventId) {
        let slot = &mut self.events[id.index as usize];
        debug_assert_eq!(slot.gen, id.gen);
        slot.gen = slot.gen.wrapping_add(1);
        slot.action = None;
        self.free_events.push(id.index);
    }
}

/// Cloneable handle to a running simulation. All simulation primitives
/// (timers, channels, resources) are built on this handle.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    metrics: Metrics,
}

impl Sim {
    /// Creates a fresh simulation whose random generator is seeded with
    /// `seed`. Equal seeds (and equal programs) produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::with_capacity(1024),
                events: Vec::with_capacity(1024),
                free_events: Vec::with_capacity(1024),
                tasks: Vec::with_capacity(256),
                free_tasks: Vec::with_capacity(256),
                live_tasks: 0,
                ready: Arc::new(Mutex::new(VecDeque::with_capacity(256))),
                rng: SmallRng::seed_from_u64(seed),
                events_fired: 0,
                polls: 0,
                spawns: 0,
                trace_hash: 0xcbf2_9ce4_8422_2325,
            })),
            metrics: Metrics::new(),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// The metrics registry shared by every component of this simulation.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Runs `f` with the simulation's deterministic random generator.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.core.borrow_mut().rng)
    }

    /// Number of events fired so far (diagnostic).
    pub fn events_fired(&self) -> u64 {
        self.core.borrow().events_fired
    }

    /// Number of task polls so far (diagnostic).
    pub fn polls(&self) -> u64 {
        self.core.borrow().polls
    }

    /// Running hash of the event trace: every event firing folds its
    /// `(time, seq)` and every task poll folds `(time, poll-seq, task)`.
    /// Two runs of the same program on the same seed must agree; see
    /// [`assert_deterministic`].
    pub fn trace_hash(&self) -> u64 {
        self.core.borrow().trace_hash
    }

    /// Schedules `action` to run at absolute time `at` (clamped to now if in
    /// the past). Returns an id that can cancel the event before it fires.
    pub fn schedule_fn(&self, at: SimTime, action: impl FnOnce(&Sim) + 'static) -> EventId {
        self.schedule(at, EventAction::Call(Box::new(action)))
    }

    /// Schedules `waker` to be woken at absolute time `at`.
    pub fn schedule_wake(&self, at: SimTime, waker: Waker) -> EventId {
        self.schedule(at, EventAction::Wake(waker))
    }

    fn schedule(&self, at: SimTime, action: EventAction) -> EventId {
        let mut core = self.core.borrow_mut();
        let at = at.max(core.now);
        let id = core.alloc_event(action);
        let seq = core.seq;
        core.seq += 1;
        core.heap.push(Reverse(HeapEntry {
            time: at,
            seq,
            event: id,
        }));
        id
    }

    /// Cancels a pending event. Harmless if the event already fired (the
    /// generation check rejects stale ids).
    pub fn cancel(&self, id: EventId) {
        let mut core = self.core.borrow_mut();
        let slot = &mut core.events[id.index as usize];
        if slot.gen == id.gen {
            // Leave the heap entry in place; it is skipped when popped.
            slot.action = None;
        }
    }

    /// Replaces the waker of a pending timer event (used when a timer future
    /// is polled again with a different waker).
    pub(crate) fn reset_wake(&self, id: EventId, waker: Waker) {
        let mut core = self.core.borrow_mut();
        let slot = &mut core.events[id.index as usize];
        if slot.gen == id.gen && slot.action.is_some() {
            slot.action = Some(EventAction::Wake(waker));
        }
    }

    pub(crate) fn event_is_pending(&self, id: EventId) -> bool {
        let core = self.core.borrow();
        let slot = &core.events[id.index as usize];
        slot.gen == id.gen && slot.action.is_some()
    }

    /// Spawns an anonymous task (named `task-<n>` in spawn order) and
    /// returns a [`JoinHandle`] yielding its output. Prefer
    /// [`Sim::spawn_named`]: names are what the deadlock detector and stall
    /// reports print.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.spawn_inner(None, false, fut)
    }

    /// Spawns a task under a diagnostic name. The name surfaces in
    /// [`Sim::step_until_no_events`]'s stall report when the task is still
    /// live after the event heap drains.
    pub fn spawn_named<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(Some(name.into()), false, fut)
    }

    /// Spawns a named daemon task: a server loop meant to stay alive (and
    /// blocked) for the whole simulation — accept loops, responder pools,
    /// prefetcher threads. Daemons are excluded from
    /// [`Sim::step_until_no_events`] stall reports, exactly like Java's
    /// daemon threads don't block JVM exit.
    pub fn spawn_daemon<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(Some(name.into()), true, fut)
    }

    fn spawn_inner<T: 'static>(
        &self,
        name: Option<String>,
        daemon: bool,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_tracked(name, daemon, fut).0
    }

    fn spawn_tracked<T: 'static>(
        &self,
        name: Option<String>,
        daemon: bool,
        fut: impl Future<Output = T> + 'static,
    ) -> (JoinHandle<T>, TaskId) {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            detached: false,
        }));
        let state2 = Rc::clone(&state);
        let id = self.spawn_unit(name, daemon, async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        (JoinHandle { state }, id)
    }

    fn spawn_unit(
        &self,
        name: Option<String>,
        daemon: bool,
        fut: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let mut core = self.core.borrow_mut();
        let name: Rc<str> = match name {
            Some(n) => Rc::from(n.as_str()),
            None => Rc::from(format!("task-{}", core.spawns).as_str()),
        };
        core.spawns += 1;
        // Spawn order and names are part of the program shape: fold them so
        // a renamed or reordered task set changes the trace hash.
        let mut h = core.trace_hash;
        fold_hash(&mut h, name.as_bytes());
        core.trace_hash = h;
        let future: LocalFuture = Box::pin(fut);
        let ready = Arc::clone(&core.ready);
        // Spawned tasks are enqueued immediately below, so the flag starts
        // true: a wake landing before the first poll must not double-queue.
        let queued = Arc::new(AtomicBool::new(true));
        let id = if let Some(index) = core.free_tasks.pop() {
            let slot = &mut core.tasks[index as usize];
            let id = TaskId {
                index,
                gen: slot.gen,
            };
            slot.future = Some(future);
            slot.live = true;
            slot.name = name;
            slot.blocked_on = None;
            slot.daemon = daemon;
            // The slot's generation changed since it was last occupied, so
            // the cached waker must be rebuilt for the new id.
            slot.queued = Arc::clone(&queued);
            slot.waker = Waker::from(Arc::new(WakeEntry {
                task: id,
                ready,
                queued,
            }));
            id
        } else {
            let index = core.tasks.len() as u32;
            let id = TaskId { index, gen: 0 };
            core.tasks.push(TaskSlot {
                gen: 0,
                future: Some(future),
                live: true,
                name,
                blocked_on: None,
                daemon,
                queued: Arc::clone(&queued),
                waker: Waker::from(Arc::new(WakeEntry {
                    task: id,
                    ready,
                    queued,
                })),
            });
            id
        };
        core.live_tasks += 1;
        core.ready.lock().unwrap().push_back(id);
        id
    }

    /// Creates a [`TaskGroup`]: a cancellable scope for tasks that share a
    /// lifetime (all the daemons and attempts owned by one simulated node).
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            sim: self.clone(),
            members: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Aborts a live task: its future is dropped in place, which cancels any
    /// pending timers it owns (`Timer::drop`), closes its channel endpoints
    /// (peers observe `None` / send errors), and releases held semaphore
    /// permits. Harmless on completed or already-aborted ids (generation
    /// check). Safe to call from inside the aborted task's own poll: the
    /// slot is retired immediately and the in-flight poll result discarded.
    fn abort_task(&self, id: TaskId) {
        let future = {
            let mut core = self.core.borrow_mut();
            let slot = match core.tasks.get_mut(id.index as usize) {
                Some(s) if s.gen == id.gen && s.live => s,
                _ => return,
            };
            // `future` is `None` when the task is currently being polled;
            // retiring the slot here makes `poll_task`'s post-poll
            // generation re-check discard the future instead of restoring
            // it into the recycled slot.
            let future = slot.future.take();
            slot.live = false;
            slot.gen = slot.gen.wrapping_add(1);
            slot.blocked_on = None;
            core.free_tasks.push(id.index);
            core.live_tasks -= 1;
            future
        };
        // Drop outside the core borrow: destructors re-enter the Sim handle
        // (timer cancellation, channel close wakes, permit release).
        drop(future);
    }

    /// Sleeps for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Timer {
        Timer {
            sim: self.clone(),
            deadline: self.now() + d,
            event: None,
        }
    }

    /// Sleeps until the absolute instant `at`.
    pub fn sleep_until(&self, at: SimTime) -> Timer {
        Timer {
            sim: self.clone(),
            deadline: at,
            event: None,
        }
    }

    /// Yields once, letting every other currently-runnable task proceed
    /// before this one resumes (still at the same virtual instant).
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn poll_task(&self, id: TaskId) {
        let (future, waker) = {
            let mut core = self.core.borrow_mut();
            core.polls += 1;
            let (polls, now) = (core.polls, core.now);
            let mut h = core.trace_hash;
            fold_hash(&mut h, &now.as_nanos().to_le_bytes());
            fold_hash(&mut h, &polls.to_le_bytes());
            fold_hash(&mut h, &id.index.to_le_bytes());
            fold_hash(&mut h, &id.gen.to_le_bytes());
            core.trace_hash = h;
            let slot = match core.tasks.get_mut(id.index as usize) {
                Some(s) if s.gen == id.gen && s.live => s,
                _ => return, // stale waker
            };
            // Popped out of the ready queue: clear the dedup flag first so a
            // wake arriving during the poll below re-queues the task.
            slot.queued.store(false, Ordering::Relaxed);
            // Cleared before every poll; a primitive that suspends the task
            // again will re-record the reason.
            slot.blocked_on = None;
            match slot.future.take() {
                Some(f) => (f, slot.waker.clone()),
                // Already being polled higher up the stack (a waker fired
                // synchronously during poll); the re-queued id handles it.
                None => return,
            }
        };
        let mut cx = Context::from_waker(&waker);
        let mut future = future;
        let prev = CURRENT_TASK.with(|c| c.borrow_mut().replace((Rc::downgrade(&self.core), id)));
        let poll = future.as_mut().poll(&mut cx);
        CURRENT_TASK.with(|c| *c.borrow_mut() = prev);
        let mut core = self.core.borrow_mut();
        let slot = &mut core.tasks[id.index as usize];
        if slot.gen != id.gen || !slot.live {
            // Aborted while its own poll was on the stack: the slot is
            // already retired (possibly reused). Discard the future without
            // touching the slot — and without holding the core borrow, since
            // its destructors re-enter the Sim handle.
            drop(core);
            drop(future);
            return;
        }
        match poll {
            Poll::Ready(()) => {
                slot.live = false;
                slot.gen = slot.gen.wrapping_add(1);
                core.free_tasks.push(id.index);
                core.live_tasks -= 1;
            }
            Poll::Pending => {
                slot.future = Some(future);
            }
        }
    }

    /// Runs the event loop until no runnable task and no pending event
    /// remains, or until `limit` (if given) — whichever comes first.
    /// Returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.run_with_limit(None)
    }

    /// [`Sim::run`] with a hard virtual-time limit; events scheduled past the
    /// limit are left unfired.
    pub fn run_until(&self, limit: SimTime) -> SimTime {
        self.run_with_limit(Some(limit))
    }

    fn run_with_limit(&self, limit: Option<SimTime>) -> SimTime {
        // Diagnostic heartbeat: RMR_TRACE=<N> prints progress every N polls
        // (any non-numeric value selects 10M).
        let trace: Option<u64> = std::env::var("RMR_TRACE")
            .ok()
            .map(|v| v.parse().unwrap_or(10_000_000));
        let mut last_trace: u64 = 0;
        loop {
            if let Some(every) = trace {
                let (polls, fired, now) = {
                    let core = self.core.borrow();
                    (core.polls, core.events_fired, core.now)
                };
                if polls / every > last_trace {
                    last_trace = polls / every;
                    eprintln!("[sim-trace] polls={polls} events={fired} t={now}");
                }
            }
            // Phase 1: drain runnable tasks at the current instant.
            loop {
                let next = self.core.borrow().ready.lock().unwrap().pop_front();
                match next {
                    Some(id) => self.poll_task(id),
                    None => break,
                }
            }
            // Phase 2: advance to the next event.
            let fired = {
                let mut core = self.core.borrow_mut();
                loop {
                    match core.heap.pop() {
                        Some(Reverse(entry)) => {
                            {
                                let slot = &core.events[entry.event.index as usize];
                                if slot.gen != entry.event.gen || slot.action.is_none() {
                                    continue; // cancelled or stale
                                }
                            }
                            if let Some(limit) = limit {
                                if entry.time > limit {
                                    // Push back and stop at the limit.
                                    core.heap.push(Reverse(entry));
                                    core.now = limit;
                                    return limit;
                                }
                            }
                            core.now = entry.time;
                            core.events_fired += 1;
                            let mut h = core.trace_hash;
                            fold_hash(&mut h, &entry.time.as_nanos().to_le_bytes());
                            fold_hash(&mut h, &entry.seq.to_le_bytes());
                            core.trace_hash = h;
                            let id = entry.event;
                            let action = core.events[id.index as usize].action.take();
                            // Release after take so the id can be reused.
                            core.release_event(id);
                            break action;
                        }
                        None => break None,
                    }
                }
            };
            match fired {
                Some(EventAction::Wake(w)) => w.wake(),
                Some(EventAction::Call(f)) => f(self),
                None => {
                    let core = self.core.borrow();
                    debug_assert!(
                        core.ready.lock().unwrap().is_empty(),
                        "ready queue must be empty at quiescence"
                    );
                    return core.now;
                }
            }
        }
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }

    /// Runs until the ready queue and the event heap are both empty, then
    /// reports quiescence. Any task still live at that point can never run
    /// again — no event will wake it — so a non-empty `stalled` list is a
    /// deadlock or a lost waker, named task by task.
    pub fn step_until_no_events(&self) -> QuiescenceReport {
        let time = self.run_with_limit(None);
        let core = self.core.borrow();
        let stalled = core
            .tasks
            .iter()
            .filter(|t| t.live && !t.daemon)
            .map(|t| StalledTask {
                name: t.name.to_string(),
                blocked_on: t.blocked_on.as_ref().map(|b| b.as_str().to_string()),
            })
            .collect();
        QuiescenceReport {
            time,
            stalled,
            daemons: core.tasks.iter().filter(|t| t.live && t.daemon).count(),
            trace_hash: core.trace_hash,
        }
    }
}

/// A cancellable scope of tasks sharing one lifetime — the supervision unit
/// for everything a simulated node owns (server loops, responder pools,
/// heartbeat daemons, running attempts).
///
/// Tasks spawned through the group behave exactly like [`Sim::spawn_named`] /
/// [`Sim::spawn_daemon`] until [`TaskGroup::abort`] is called, which drops
/// every member's future in place: pending timers are cancelled, channel
/// endpoints close (peers observe `None` / send errors rather than hanging),
/// and held semaphore permits are released. Aborted tasks leave the live set,
/// so deadlock reports stay accurate. The group is reusable after an abort —
/// a restarted node spawns its fresh daemons into the same group.
///
/// The `JoinHandle` of an aborted task never resolves; group members that
/// await each other must live (and die) together in the same group.
#[derive(Clone)]
pub struct TaskGroup {
    sim: Sim,
    members: Rc<RefCell<Vec<TaskId>>>,
}

impl TaskGroup {
    /// [`Sim::spawn_named`], scoped to this group.
    pub fn spawn_named<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let (handle, id) = self.sim.spawn_tracked(Some(name.into()), false, fut);
        self.members.borrow_mut().push(id);
        handle
    }

    /// [`Sim::spawn_daemon`], scoped to this group.
    pub fn spawn_daemon<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let (handle, id) = self.sim.spawn_tracked(Some(name.into()), true, fut);
        self.members.borrow_mut().push(id);
        handle
    }

    /// Aborts every member task (see [`TaskGroup::abort`] docs on the type).
    /// Members that already completed are skipped via the generation check.
    /// Abort order is spawn order, so cascaded destructor effects replay
    /// deterministically.
    pub fn abort(&self) {
        // Drain first: a destructor running during an abort may re-enter the
        // group (e.g. a task spawning a replacement into it on teardown).
        let members: Vec<TaskId> = self.members.borrow_mut().drain(..).collect();
        for id in members {
            self.sim.abort_task(id);
        }
    }

    /// Number of tasks ever spawned into the group since the last abort
    /// (completed members are still counted until then).
    pub fn spawned(&self) -> usize {
        self.members.borrow().len()
    }
}

/// A task that is still live after the event heap drained: nothing can ever
/// wake it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalledTask {
    /// The task's spawn name.
    pub name: String,
    /// What the task last reported blocking on, if a sync primitive told us.
    pub blocked_on: Option<String>,
}

/// Result of [`Sim::step_until_no_events`].
#[derive(Debug, Clone)]
pub struct QuiescenceReport {
    /// Virtual time at quiescence.
    pub time: SimTime,
    /// Live-but-unrunnable tasks (deadlocked or lost their waker).
    /// Daemons ([`Sim::spawn_daemon`]) are not counted here.
    pub stalled: Vec<StalledTask>,
    /// Daemon tasks still parked at quiescence (expected for server loops).
    pub daemons: usize,
    /// The trace hash at quiescence (see [`Sim::trace_hash`]).
    pub trace_hash: u64,
}

impl QuiescenceReport {
    /// True when every spawned task ran to completion.
    pub fn is_clean(&self) -> bool {
        self.stalled.is_empty()
    }

    /// Panics with the stall list unless the run was clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "{self}");
    }
}

impl std::fmt::Display for QuiescenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.stalled.is_empty() {
            return write!(f, "quiescent at {} with no stalled tasks", self.time);
        }
        write!(
            f,
            "deadlock at {}: {} task(s) live but unrunnable:",
            self.time,
            self.stalled.len()
        )?;
        for t in &self.stalled {
            match &t.blocked_on {
                Some(b) => write!(f, "\n  - {} (blocked on {})", t.name, b)?,
                None => write!(f, "\n  - {} (no blocking reason recorded)", t.name)?,
            }
        }
        Ok(())
    }
}

/// Runs `build` twice on fresh sims with the same `seed` and panics unless
/// both runs fire the same events and polls in the same order (trace-hash
/// equality), finishing at the same virtual time. This is the workspace's
/// replay-determinism harness: any wall-clock read, entropy draw, or
/// unordered iteration feeding the schedule shows up as a hash diff.
pub fn assert_deterministic(seed: u64, build: impl Fn(&Sim)) {
    let run_once = || {
        let sim = Sim::new(seed);
        build(&sim);
        let end = sim.run();
        (sim.trace_hash(), end, sim.events_fired(), sim.polls())
    };
    let (hash_a, end_a, events_a, polls_a) = run_once();
    let (hash_b, end_b, events_b, polls_b) = run_once();
    assert_eq!(
        (hash_a, end_a, events_a, polls_a),
        (hash_b, end_b, events_b, polls_b),
        "two runs with seed {seed} diverged: \
         trace {hash_a:#018x} vs {hash_b:#018x}, \
         end {end_a} vs {end_b}, \
         events {events_a} vs {events_b}, polls {polls_a} vs {polls_b}",
    );
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    detached: bool,
}

/// Awaitable completion of a spawned task.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Drops the handle without cancelling the task (tasks are never
    /// cancelled by handle drop in this executor; `detach` just documents
    /// intent).
    pub fn detach(self) {
        self.state.borrow_mut().detached = true;
    }

    /// True once the task has finished.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waker = Some(cx.waker().clone());
                note_current_blocked("join on spawned task");
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Timer {
    sim: Sim,
    deadline: SimTime,
    event: Option<EventId>,
}

impl Future for Timer {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            if let Some(ev) = self.event.take() {
                self.sim.cancel(ev);
            }
            return Poll::Ready(());
        }
        match self.event {
            Some(ev) if self.sim.event_is_pending(ev) => {
                self.sim.reset_wake(ev, cx.waker().clone());
            }
            _ => {
                let ev = self.sim.schedule_wake(self.deadline, cx.waker().clone());
                self.event = Some(ev);
            }
        }
        Poll::Pending
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(ev) = self.event.take() {
            self.sim.cancel(ev);
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero_and_advances_with_sleep() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(5)).await;
            done2.set(sim2.now());
        })
        .detach();
        let end = sim.run();
        assert_eq!(done.get(), SimTime::from_nanos(5_000_000));
        assert_eq!(end, SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b", "c"] {
            let sim2 = sim.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                for i in 0..3u32 {
                    sim2.sleep(SimDuration::from_millis(1)).await;
                    log2.borrow_mut().push(format!("{name}{i}"));
                }
            })
            .detach();
        }
        sim.run();
        let got = log.borrow().join(",");
        // FIFO spawn order is preserved at every shared instant.
        assert_eq!(got, "a0,b0,c0,a1,b1,c1,a2,b2,c2");
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        let sim3 = sim.clone();
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let h = sim2.spawn(async move {
                sim3.sleep(SimDuration::from_secs(1)).await;
                42u64
            });
            out2.set(h.await);
        })
        .detach();
        sim.run();
        assert_eq!(out.get(), 42);
    }

    #[test]
    fn schedule_fn_runs_at_requested_time() {
        let sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        for ms in [30u64, 10, 20] {
            let hits2 = Rc::clone(&hits);
            sim.schedule_fn(SimTime::from_nanos(ms * 1_000_000), move |s| {
                hits2.borrow_mut().push((ms, s.now()));
            });
        }
        sim.run();
        let hits = hits.borrow();
        assert_eq!(
            hits.iter().map(|(ms, _)| *ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        for (ms, t) in hits.iter() {
            assert_eq!(t.as_nanos(), ms * 1_000_000);
        }
    }

    #[test]
    fn cancelled_event_does_not_fire() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let fired2 = Rc::clone(&fired);
        let id = sim.schedule_fn(SimTime::from_nanos(100), move |_| fired2.set(true));
        sim.cancel(id);
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn run_until_stops_at_limit() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        sim.spawn(async move {
            loop {
                sim2.sleep(SimDuration::from_secs(1)).await;
            }
        })
        .detach();
        let end = sim.run_until(SimTime::from_nanos(3_500_000_000));
        assert_eq!(end.as_nanos(), 3_500_000_000);
        assert_eq!(sim.now().as_nanos(), 3_500_000_000);
    }

    #[test]
    fn yield_now_lets_peers_run_first() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push(1);
            s1.yield_now().await;
            l1.borrow_mut().push(3);
        })
        .detach();
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push(2);
        })
        .detach();
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn redundant_wakes_collapse_to_one_poll() {
        // Broadcast fan-out (a fluid completion batch waking one task once
        // per finished leg) must cost one queue entry, not one poll per wake.
        struct Capture {
            polls: Rc<Cell<u32>>,
            waker: Rc<RefCell<Option<Waker>>>,
        }
        impl Future for Capture {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                self.polls.set(self.polls.get() + 1);
                if self.polls.get() >= 2 {
                    return Poll::Ready(());
                }
                *self.waker.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
        let sim = Sim::new(1);
        let polls = Rc::new(Cell::new(0u32));
        let waker: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        sim.spawn_named(
            "capture",
            Capture {
                polls: Rc::clone(&polls),
                waker: Rc::clone(&waker),
            },
        )
        .detach();
        let w2 = Rc::clone(&waker);
        sim.schedule_fn(SimTime::from_nanos(1), move |_| {
            let w = w2.borrow().as_ref().unwrap().clone();
            w.wake_by_ref();
            w.wake_by_ref();
            w.wake();
        });
        sim.run();
        // First poll at spawn + exactly one re-poll for the wake burst.
        assert_eq!(polls.get(), 2);
    }

    #[test]
    fn wake_during_poll_requeues_the_task() {
        // A wake landing while the task is being polled (flag already
        // cleared) must re-queue it — dedup only spans time-in-queue.
        struct SelfWake {
            polls: Rc<Cell<u32>>,
        }
        impl Future for SelfWake {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                self.polls.set(self.polls.get() + 1);
                if self.polls.get() >= 3 {
                    return Poll::Ready(());
                }
                // Wake mid-poll, twice: one re-queue, not two.
                cx.waker().wake_by_ref();
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        let sim = Sim::new(1);
        let polls = Rc::new(Cell::new(0u32));
        sim.spawn_named(
            "self-wake",
            SelfWake {
                polls: Rc::clone(&polls),
            },
        )
        .detach();
        sim.run();
        assert_eq!(polls.get(), 3);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn identical_seeds_reproduce_rng_streams() {
        use rand::Rng;
        let a = Sim::new(7);
        let b = Sim::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.with_rng(|r| r.gen())).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.with_rng(|r| r.gen())).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn timer_drop_cancels_event() {
        let sim = Sim::new(1);
        {
            let _t = sim.sleep(SimDuration::from_secs(10));
            // dropped immediately without being polled — no event scheduled
        }
        let sim2 = sim.clone();
        sim.spawn(async move {
            // Poll a timer once, then drop it via select-like abandonment:
            // emulate by polling manually inside a wrapper future.
            struct PollOnce(Timer);
            impl Future for PollOnce {
                type Output = ();
                fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    // SAFETY: structural pinning of the only field.
                    let timer = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
                    let _ = timer.poll(cx);
                    Poll::Ready(())
                }
            }
            PollOnce(sim2.sleep(SimDuration::from_secs(100))).await;
        })
        .detach();
        let end = sim.run();
        // The abandoned 100 s timer must not hold the clock hostage.
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn quiescence_report_is_clean_when_all_tasks_finish() {
        let sim = Sim::new(1);
        let sim2 = sim.clone();
        sim.spawn_named("sleeper", async move {
            sim2.sleep(SimDuration::from_secs(1)).await;
        })
        .detach();
        let report = sim.step_until_no_events();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.time.as_nanos(), 1_000_000_000);
        report.assert_clean();
    }

    #[test]
    fn deadlock_detector_names_both_stuck_tasks() {
        // Two tasks each waiting on a channel only the other could feed:
        // a classic lost-progress cycle. Once the event heap drains, both
        // must be reported by name with their blocking reason.
        let sim = Sim::new(1);
        let (tx_a, rx_a) = crate::sync::channel_named::<u32>("a-to-b");
        let (tx_b, rx_b) = crate::sync::channel_named::<u32>("b-to-a");
        sim.spawn_named("task-alpha", async move {
            let _keep = tx_b; // held, never used: rx_b can never resolve
            rx_a.recv().await;
        })
        .detach();
        sim.spawn_named("task-beta", async move {
            let _keep = tx_a;
            rx_b.recv().await;
        })
        .detach();
        let report = sim.step_until_no_events();
        assert_eq!(report.stalled.len(), 2, "{report}");
        let names: Vec<&str> = report.stalled.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"task-alpha"), "{names:?}");
        assert!(names.contains(&"task-beta"), "{names:?}");
        let alpha = report
            .stalled
            .iter()
            .find(|t| t.name == "task-alpha")
            .unwrap();
        assert_eq!(alpha.blocked_on.as_deref(), Some("recv on a-to-b"));
        let rendered = report.to_string();
        assert!(rendered.contains("deadlock"), "{rendered}");
        assert!(rendered.contains("recv on b-to-a"), "{rendered}");
    }

    #[test]
    fn anonymous_tasks_get_sequential_names() {
        let sim = Sim::new(1);
        let (_tx, rx) = crate::sync::channel::<u32>();
        sim.spawn(async move {
            rx.recv().await;
        })
        .detach();
        let report = sim.step_until_no_events();
        assert_eq!(report.stalled.len(), 1);
        assert_eq!(report.stalled[0].name, "task-0");
        assert_eq!(
            report.stalled[0].blocked_on.as_deref(),
            Some("recv on channel")
        );
    }

    #[test]
    fn stalled_join_on_spawned_task_is_reported() {
        let sim = Sim::new(1);
        let (_tx, rx) = crate::sync::channel::<u32>();
        let inner = sim.spawn_named("stuck-inner", async move {
            rx.recv().await;
        });
        sim.spawn_named("waiter", async move {
            inner.await;
        })
        .detach();
        let report = sim.step_until_no_events();
        let waiter = report.stalled.iter().find(|t| t.name == "waiter").unwrap();
        assert_eq!(waiter.blocked_on.as_deref(), Some("join on spawned task"));
    }

    #[test]
    fn trace_hash_is_stable_across_identical_runs() {
        let run = || {
            let sim = Sim::new(99);
            for i in 0..4 {
                let sim2 = sim.clone();
                sim.spawn_named(format!("worker-{i}"), async move {
                    sim2.sleep(SimDuration::from_millis(i + 1)).await;
                })
                .detach();
            }
            sim.run();
            sim.trace_hash()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_hash_distinguishes_different_schedules() {
        let run = |delay_ms: u64| {
            let sim = Sim::new(99);
            let sim2 = sim.clone();
            sim.spawn_named("only", async move {
                sim2.sleep(SimDuration::from_millis(delay_ms)).await;
            })
            .detach();
            sim.run();
            sim.trace_hash()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn assert_deterministic_accepts_a_deterministic_sim() {
        assert_deterministic(7, |sim| {
            for i in 0..3 {
                let sim2 = sim.clone();
                sim.spawn_named(format!("t{i}"), async move {
                    let jitter = sim2.with_rng(|r| rand::Rng::gen_range(r, 1..10u64));
                    sim2.sleep(SimDuration::from_millis(jitter)).await;
                })
                .detach();
            }
        });
    }

    #[test]
    fn group_abort_drops_futures_and_cancels_their_timers() {
        let sim = Sim::new(1);
        let group = sim.group();
        let sim2 = sim.clone();
        let resumed = Rc::new(Cell::new(false));
        let resumed2 = Rc::clone(&resumed);
        group
            .spawn_named("long-sleeper", async move {
                sim2.sleep(SimDuration::from_secs(100)).await;
                resumed2.set(true);
            })
            .detach();
        let g2 = group.clone();
        sim.schedule_fn(SimTime::from_nanos(1_000_000_000), move |_| g2.abort());
        let end = sim.run();
        // The aborted task's 100 s timer must not hold the clock hostage.
        assert_eq!(end.as_nanos(), 1_000_000_000);
        assert!(!resumed.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn group_abort_closes_channel_endpoints_for_peers() {
        // A peer outside the group blocked on recv must observe `None`
        // when the group member holding the sender is aborted — not hang.
        let sim = Sim::new(1);
        let group = sim.group();
        let (tx, rx) = crate::sync::channel_named::<u32>("group-to-peer");
        let sim2 = sim.clone();
        group
            .spawn_named("holder", async move {
                let _keep = tx;
                sim2.sleep(SimDuration::from_secs(100)).await;
            })
            .detach();
        let saw = Rc::new(Cell::new(Some(0u32)));
        let saw2 = Rc::clone(&saw);
        sim.spawn_named("peer", async move {
            saw2.set(rx.recv().await);
        })
        .detach();
        let g2 = group.clone();
        sim.schedule_fn(SimTime::from_nanos(5), move |_| g2.abort());
        let report = sim.step_until_no_events();
        report.assert_clean();
        assert_eq!(saw.get(), None);
    }

    #[test]
    fn group_abort_keeps_deadlock_report_accurate() {
        // A task that would otherwise be reported as stalled disappears
        // from the report once aborted: it is no longer live.
        let sim = Sim::new(1);
        let group = sim.group();
        let (_tx, rx) = crate::sync::channel::<u32>();
        group
            .spawn_named("stuck", async move {
                rx.recv().await;
            })
            .detach();
        let g2 = group.clone();
        sim.schedule_fn(SimTime::from_nanos(10), move |_| g2.abort());
        let report = sim.step_until_no_events();
        report.assert_clean();
        assert_eq!(report.daemons, 0);
    }

    #[test]
    fn group_abort_from_inside_own_poll_is_safe() {
        // A member aborting its own group mid-poll: the current poll runs to
        // its next suspension, then the future is discarded — it never
        // resumes, and the executor must not corrupt the (recycled) slot.
        let sim = Sim::new(1);
        let group = sim.group();
        let g2 = group.clone();
        let sim2 = sim.clone();
        let after = Rc::new(Cell::new(false));
        let after2 = Rc::clone(&after);
        group
            .spawn_named("self-slayer", async move {
                g2.abort();
                sim2.sleep(SimDuration::from_secs(1)).await;
                after2.set(true);
            })
            .detach();
        let end = sim.run();
        assert_eq!(end, SimTime::ZERO);
        assert!(!after.get());
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn group_is_reusable_after_abort_and_slots_recycle() {
        let sim = Sim::new(1);
        let group = sim.group();
        let sim2 = sim.clone();
        group
            .spawn_named("first-gen", async move {
                sim2.sleep(SimDuration::from_secs(100)).await;
            })
            .detach();
        group.abort();
        assert_eq!(group.spawned(), 0);
        let sim3 = sim.clone();
        let ran = Rc::new(Cell::new(false));
        let ran2 = Rc::clone(&ran);
        // Reuses the aborted task's slot; the stale generation must not leak.
        group
            .spawn_named("second-gen", async move {
                sim3.sleep(SimDuration::from_secs(2)).await;
                ran2.set(true);
            })
            .detach();
        assert_eq!(group.spawned(), 1);
        let report = sim.step_until_no_events();
        report.assert_clean();
        assert!(ran.get());
        assert_eq!(report.time.as_nanos(), 2_000_000_000);
    }

    #[test]
    fn group_abort_releases_semaphore_permits() {
        let sim = Sim::new(1);
        let group = sim.group();
        let sem = crate::sync::Semaphore::new_named("slots", 1);
        let sem2 = sem.clone();
        let sim2 = sim.clone();
        group
            .spawn_named("permit-holder", async move {
                let _permit = sem2.acquire(1).await;
                sim2.sleep(SimDuration::from_secs(100)).await;
            })
            .detach();
        let got = Rc::new(Cell::new(false));
        let got2 = Rc::clone(&got);
        let sem3 = sem.clone();
        sim.spawn_named("waiter", async move {
            let _permit = sem3.acquire(1).await;
            got2.set(true);
        })
        .detach();
        let g2 = group.clone();
        sim.schedule_fn(SimTime::from_nanos(10), move |_| g2.abort());
        let report = sim.step_until_no_events();
        report.assert_clean();
        assert!(got.get(), "abort must release the held permit");
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn assert_deterministic_catches_run_to_run_divergence() {
        // Smuggle cross-run mutable state through a thread-local — the moral
        // equivalent of reading the wall clock inside a sim.
        thread_local! {
            static RUNS: Cell<u64> = const { Cell::new(0) };
        }
        assert_deterministic(7, |sim| {
            let n = RUNS.with(|r| {
                r.set(r.get() + 1);
                r.get()
            });
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(n)).await;
            })
            .detach();
        });
    }
}
