//! A tiny metrics registry shared by every component of a simulation.
//!
//! Components record named counters (bytes shuffled, cache hits, …) and
//! busy-time accumulators (disk busy seconds, CPU busy core-seconds). The
//! benchmark harness reads these out after a run to report utilisation and
//! to sanity-check conservation properties (e.g. bytes leaving TaskTrackers
//! equal bytes arriving at ReduceTasks).
//!
//! Counters are `Rc<Cell<f64>>` slots behind shared `Rc<str>` keys, so
//! neither updating an existing counter nor snapshotting allocates per key.
//! Hot paths (per-I/O, per-packet updates) should grab a [`Counter`] handle
//! once via [`Metrics::counter`] and bump it directly — that skips even the
//! map lookup.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::time::SimDuration;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<Rc<str>, Rc<Cell<f64>>>,
}

impl Registry {
    fn slot(&mut self, key: &str) -> Rc<Cell<f64>> {
        if let Some(c) = self.counters.get(key) {
            return Rc::clone(c);
        }
        let c = Rc::new(Cell::new(0.0));
        self.counters.insert(Rc::from(key), Rc::clone(&c));
        c
    }
}

/// Cloneable handle to a simulation's metrics registry.
///
/// Keys are free-form dotted strings (`"disk.node3.busy_s"`). A `BTreeMap`
/// keeps report ordering stable across runs.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

/// A cached handle to one counter: updates are a `Cell` bump — no key
/// hashing, lookup, or allocation. Obtain via [`Metrics::counter`].
#[derive(Clone)]
pub struct Counter {
    cell: Rc<Cell<f64>>,
}

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: f64) {
        self.cell.set(self.cell.get() + v);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.cell.get()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a cached handle to counter `key` (creating it at zero). The
    /// handle stays live even if the registry is dropped.
    pub fn counter(&self, key: &str) -> Counter {
        Counter {
            cell: self.inner.borrow_mut().slot(key),
        }
    }

    /// Adds `v` to counter `key` (creating it at zero). Allocates only on
    /// the first sighting of a key.
    pub fn add(&self, key: &str, v: f64) {
        if let Some(c) = self.inner.borrow().counters.get(key) {
            c.set(c.get() + v);
            return;
        }
        self.inner.borrow_mut().slot(key).set(v);
    }

    /// Increments counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1.0);
    }

    /// Adds a duration (in seconds) to counter `key`; used for busy-time
    /// accounting.
    pub fn add_duration(&self, key: &str, d: SimDuration) {
        self.add(key, d.as_secs_f64());
    }

    /// Records `v` only if it exceeds the stored maximum.
    pub fn record_max(&self, key: &str, v: f64) {
        let slot = {
            let mut reg = self.inner.borrow_mut();
            if !reg.counters.contains_key(key) {
                reg.counters
                    .insert(Rc::from(key), Rc::new(Cell::new(f64::MIN)));
            }
            Rc::clone(reg.counters.get(key).unwrap())
        };
        if v > slot.get() {
            slot.set(v);
        }
    }

    /// Current value of `key`, or 0 if never written.
    pub fn get(&self, key: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .get(key)
            .map(|c| c.get())
            .unwrap_or(0.0)
    }

    /// Snapshot of every counter, sorted by key. Keys are shared (`Rc`), so
    /// the snapshot does not copy the key strings.
    pub fn snapshot(&self) -> Vec<(Rc<str>, f64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (Rc::clone(k), v.get()))
            .collect()
    }

    /// Sum of all counters whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .range::<str, _>((
                std::ops::Bound::Included(prefix),
                std::ops::Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("bytes", 10.0);
        m.add("bytes", 5.0);
        m.incr("ops");
        assert_eq!(m.get("bytes"), 15.0);
        assert_eq!(m.get("ops"), 1.0);
        assert_eq!(m.get("missing"), 0.0);
    }

    #[test]
    fn record_max_keeps_peak() {
        let m = Metrics::new();
        m.record_max("peak", 3.0);
        m.record_max("peak", 1.0);
        m.record_max("peak", 9.0);
        assert_eq!(m.get("peak"), 9.0);
    }

    #[test]
    fn sum_prefix_covers_exactly_the_prefix() {
        let m = Metrics::new();
        m.add("disk.n0.busy", 1.0);
        m.add("disk.n1.busy", 2.0);
        m.add("diskette", 100.0);
        m.add("net.n0.tx", 7.0);
        assert_eq!(m.sum_prefix("disk."), 3.0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = Metrics::new();
        m.add("b", 1.0);
        m.add("a", 1.0);
        let snap = m.snapshot();
        assert_eq!(snap[0].0.as_ref(), "a");
        assert_eq!(snap[1].0.as_ref(), "b");
    }

    #[test]
    fn add_duration_converts_to_seconds() {
        let m = Metrics::new();
        m.add_duration("busy", SimDuration::from_millis(1500));
        assert!((m.get("busy") - 1.5).abs() < 1e-12);
    }

    #[test]
    fn counter_handle_tracks_shared_slot() {
        let m = Metrics::new();
        let c = m.counter("hot.path");
        c.add(2.0);
        c.incr();
        m.add("hot.path", 1.0);
        assert_eq!(c.get(), 4.0);
        assert_eq!(m.get("hot.path"), 4.0);
    }
}
