//! A tiny metrics registry shared by every component of a simulation.
//!
//! Components record named counters (bytes shuffled, cache hits, …) and
//! busy-time accumulators (disk busy seconds, CPU busy core-seconds). The
//! benchmark harness reads these out after a run to report utilisation and
//! to sanity-check conservation properties (e.g. bytes leaving TaskTrackers
//! equal bytes arriving at ReduceTasks).
//!
//! Counters are `Rc<Cell<f64>>` slots behind shared `Rc<str>` keys, so
//! neither updating an existing counter nor snapshotting allocates per key.
//! Hot paths (per-I/O, per-packet updates) should grab a [`Counter`] handle
//! once via [`Metrics::counter`] and bump it directly — that skips even the
//! map lookup.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::time::SimDuration;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<Rc<str>, Rc<Cell<f64>>>,
}

impl Registry {
    fn slot(&mut self, key: &str) -> Rc<Cell<f64>> {
        if let Some(c) = self.counters.get(key) {
            return Rc::clone(c);
        }
        let c = Rc::new(Cell::new(0.0));
        self.counters.insert(Rc::from(key), Rc::clone(&c));
        c
    }
}

/// Cloneable handle to a simulation's metrics registry.
///
/// Keys are free-form dotted strings (`"disk.node3.busy_s"`). A `BTreeMap`
/// keeps report ordering stable across runs.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

/// A cached handle to one counter: updates are a `Cell` bump — no key
/// hashing, lookup, or allocation. Obtain via [`Metrics::counter`].
#[derive(Clone)]
pub struct Counter {
    cell: Rc<Cell<f64>>,
}

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: f64) {
        self.cell.set(self.cell.get() + v);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.cell.get()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a cached handle to counter `key` (creating it at zero). The
    /// handle stays live even if the registry is dropped.
    pub fn counter(&self, key: &str) -> Counter {
        Counter {
            cell: self.inner.borrow_mut().slot(key),
        }
    }

    /// Adds `v` to counter `key` (creating it at zero). Allocates only on
    /// the first sighting of a key.
    pub fn add(&self, key: &str, v: f64) {
        if let Some(c) = self.inner.borrow().counters.get(key) {
            c.set(c.get() + v);
            return;
        }
        self.inner.borrow_mut().slot(key).set(v);
    }

    /// Increments counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1.0);
    }

    /// Adds a duration (in seconds) to counter `key`; used for busy-time
    /// accounting.
    pub fn add_duration(&self, key: &str, d: SimDuration) {
        self.add(key, d.as_secs_f64());
    }

    /// Records `v` only if it exceeds the stored maximum.
    pub fn record_max(&self, key: &str, v: f64) {
        let slot = {
            let mut reg = self.inner.borrow_mut();
            if !reg.counters.contains_key(key) {
                reg.counters
                    .insert(Rc::from(key), Rc::new(Cell::new(f64::MIN)));
            }
            Rc::clone(reg.counters.get(key).unwrap())
        };
        if v > slot.get() {
            slot.set(v);
        }
    }

    /// Current value of `key`, or 0 if never written.
    pub fn get(&self, key: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .get(key)
            .map(|c| c.get())
            .unwrap_or(0.0)
    }

    /// Snapshot of every counter, sorted by key. Keys are shared (`Rc`), so
    /// the snapshot does not copy the key strings.
    pub fn snapshot(&self) -> Vec<(Rc<str>, f64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (Rc::clone(k), v.get()))
            .collect()
    }

    /// Sum of all counters whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .range::<str, _>((
                std::ops::Bound::Included(prefix),
                std::ops::Bound::Unbounded,
            ))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.get())
            .sum()
    }
}

/// Sub-buckets per power of two in a [`Histogram`].
const BUCKETS_PER_OCTAVE: usize = 8;
/// 64 octaves above [`HIST_MIN`]: values up to ~1.8e10 s land in a real
/// bucket; anything larger clamps into the last one.
const N_BUCKETS: usize = 64 * BUCKETS_PER_OCTAVE;
/// Lower edge of bucket 0 (1 ns, in seconds). Smaller samples clamp up.
const HIST_MIN: f64 = 1e-9;

/// A fixed log-bucket histogram for latency/interval distributions.
///
/// Buckets are geometric ([`BUCKETS_PER_OCTAVE`] per power of two), so the
/// relative error of a percentile estimate is bounded by one bucket width
/// (~9%) across the whole nanoseconds-to-hours range, and recording is two
/// float ops plus an array bump — cheap enough for per-request use.
/// Percentile queries return the upper edge of the bucket holding the rank,
/// clamped into the observed `[min, max]` range. Exact extremes and the sum
/// are tracked on the side, so `min`/`max`/`mean` are not quantised.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= HIST_MIN {
            return 0;
        }
        let idx = ((v / HIST_MIN).log2() * BUCKETS_PER_OCTAVE as f64).floor();
        (idx as usize).min(N_BUCKETS - 1)
    }

    /// Upper edge of bucket `i`, in the recorded unit.
    fn bucket_upper(i: usize) -> f64 {
        HIST_MIN * 2f64.powf((i + 1) as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records one sample. Non-finite samples are dropped; negatives clamp
    /// into the lowest bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`): upper edge of the bucket holding
    /// the rank, clamped into the observed range. 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Folds `other`'s samples into `self` (pooling per-node histograms).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("bytes", 10.0);
        m.add("bytes", 5.0);
        m.incr("ops");
        assert_eq!(m.get("bytes"), 15.0);
        assert_eq!(m.get("ops"), 1.0);
        assert_eq!(m.get("missing"), 0.0);
    }

    #[test]
    fn record_max_keeps_peak() {
        let m = Metrics::new();
        m.record_max("peak", 3.0);
        m.record_max("peak", 1.0);
        m.record_max("peak", 9.0);
        assert_eq!(m.get("peak"), 9.0);
    }

    #[test]
    fn sum_prefix_covers_exactly_the_prefix() {
        let m = Metrics::new();
        m.add("disk.n0.busy", 1.0);
        m.add("disk.n1.busy", 2.0);
        m.add("diskette", 100.0);
        m.add("net.n0.tx", 7.0);
        assert_eq!(m.sum_prefix("disk."), 3.0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = Metrics::new();
        m.add("b", 1.0);
        m.add("a", 1.0);
        let snap = m.snapshot();
        assert_eq!(snap[0].0.as_ref(), "a");
        assert_eq!(snap[1].0.as_ref(), "b");
    }

    #[test]
    fn add_duration_converts_to_seconds() {
        let m = Metrics::new();
        m.add_duration("busy", SimDuration::from_millis(1500));
        assert!((m.get("busy") - 1.5).abs() < 1e-12);
    }

    #[test]
    fn counter_handle_tracks_shared_slot() {
        let m = Metrics::new();
        let c = m.counter("hot.path");
        c.add(2.0);
        c.incr();
        m.add("hot.path", 1.0);
        assert_eq!(c.get(), 4.0);
        assert_eq!(m.get("hot.path"), 4.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn percentiles_bound_within_bucket_error() {
        let mut h = Histogram::new();
        // Uniform 1..=1000 ms.
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
        // A log-bucket estimate sits within one bucket (~9%) of the truth.
        let p50 = h.p50();
        assert!((0.45..=0.55).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((0.9..=1.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max(), 1.0);
        assert_eq!(h.min(), 1e-3);
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(0.25);
        // Single sample: every quantile is that sample (bucket upper edge
        // would overshoot; the clamp pulls it back to max).
        assert_eq!(h.p50(), 0.25);
        assert_eq!(h.p99(), 0.25);
    }

    #[test]
    fn extreme_samples_clamp_into_edge_buckets() {
        let mut h = Histogram::new();
        h.record(0.0); // below HIST_MIN → bucket 0
        h.record(-5.0); // negative → bucket 0
        h.record(1e30); // beyond the last bucket
        h.record(f64::NAN); // dropped
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e30);
    }

    #[test]
    fn merge_pools_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=500 {
            a.record(i as f64 * 1e-3);
        }
        for i in 501..=1000 {
            b.record(i as f64 * 1e-3);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.p50();
        assert!((0.45..=0.55).contains(&p50), "p50 = {p50}");
        assert_eq!(a.min(), 1e-3);
        assert_eq!(a.max(), 1.0);
    }
}
