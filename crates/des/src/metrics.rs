//! A tiny metrics registry shared by every component of a simulation.
//!
//! Components record named counters (bytes shuffled, cache hits, …) and
//! busy-time accumulators (disk busy seconds, CPU busy core-seconds). The
//! benchmark harness reads these out after a run to report utilisation and
//! to sanity-check conservation properties (e.g. bytes leaving TaskTrackers
//! equal bytes arriving at ReduceTasks).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::time::SimDuration;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, f64>,
}

/// Cloneable handle to a simulation's metrics registry.
///
/// Keys are free-form dotted strings (`"disk.node3.busy_s"`). A `BTreeMap`
/// keeps report ordering stable across runs.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `key` (creating it at zero).
    pub fn add(&self, key: &str, v: f64) {
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(key.to_string())
            .or_insert(0.0) += v;
    }

    /// Increments counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1.0);
    }

    /// Adds a duration (in seconds) to counter `key`; used for busy-time
    /// accounting.
    pub fn add_duration(&self, key: &str, d: SimDuration) {
        self.add(key, d.as_secs_f64());
    }

    /// Records `v` only if it exceeds the stored maximum.
    pub fn record_max(&self, key: &str, v: f64) {
        let mut reg = self.inner.borrow_mut();
        let slot = reg.counters.entry(key.to_string()).or_insert(f64::MIN);
        if v > *slot {
            *slot = v;
        }
    }

    /// Current value of `key`, or 0 if never written.
    pub fn get(&self, key: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .get(key)
            .copied()
            .unwrap_or(0.0)
    }

    /// Snapshot of every counter, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Sum of all counters whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.inner
            .borrow()
            .counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add("bytes", 10.0);
        m.add("bytes", 5.0);
        m.incr("ops");
        assert_eq!(m.get("bytes"), 15.0);
        assert_eq!(m.get("ops"), 1.0);
        assert_eq!(m.get("missing"), 0.0);
    }

    #[test]
    fn record_max_keeps_peak() {
        let m = Metrics::new();
        m.record_max("peak", 3.0);
        m.record_max("peak", 1.0);
        m.record_max("peak", 9.0);
        assert_eq!(m.get("peak"), 9.0);
    }

    #[test]
    fn sum_prefix_covers_exactly_the_prefix() {
        let m = Metrics::new();
        m.add("disk.n0.busy", 1.0);
        m.add("disk.n1.busy", 2.0);
        m.add("diskette", 100.0);
        m.add("net.n0.tx", 7.0);
        assert_eq!(m.sum_prefix("disk."), 3.0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = Metrics::new();
        m.add("b", 1.0);
        m.add("a", 1.0);
        let snap = m.snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
    }

    #[test]
    fn add_duration_converts_to_seconds() {
        let m = Metrics::new();
        m.add_duration("busy", SimDuration::from_millis(1500));
        assert!((m.get("busy") - 1.5).abs() < 1e-12);
    }
}
