//! # rmr-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the RDMA-MapReduce reproduction: a single-threaded
//! async executor driven by a virtual clock, plus the synchronisation and
//! resource primitives the higher layers are built from.
//!
//! * [`Sim`] — the executor/clock handle: `spawn`, `sleep`, `run`.
//! * [`sync::channel`] / [`sync::bounded`] — FIFO channels (Hadoop's internal
//!   queues map onto these).
//! * [`sync::Semaphore`] — fair counting semaphore (task slots, memory
//!   budgets, thread pools).
//! * [`sync::Notify`] — edge-triggered condition signalling.
//! * [`sync::select2`] / [`sync::join_all`] — the two combinators processes
//!   need.
//! * [`resource::Fluid`] — processor-sharing capacity (NIC directions, CPU
//!   cores, SSD bandwidth).
//! * [`Metrics`] — named counters read out by the benchmark harness.
//!
//! Everything is `!Send` by design (futures hold `Rc` handles); run one
//! simulation per thread and parallelise across *runs*, not within one.
//!
//! ```
//! use rmr_des::prelude::*;
//!
//! let sim = Sim::new(42);
//! let link = Fluid::new(&sim, 125_000_000.0); // 1 GigE: 125 MB/s
//! let s = sim.clone();
//! sim.spawn(async move {
//!     link.consume(125_000_000.0).await;       // ship 125 MB
//!     assert_eq!(s.now().as_secs_f64(), 1.0);
//! }).detach();
//! sim.run();
//! ```

pub mod executor;
pub mod metrics;
pub mod resource;
pub mod sync;
pub mod time;

pub use executor::{
    assert_deterministic, note_current_blocked, BlockedLabel, EventId, JoinHandle,
    QuiescenceReport, Sim, StalledTask, TaskGroup, TaskId, Timer,
};
pub use metrics::{Counter, Histogram, Metrics};
pub use time::{SimDuration, SimTime};

/// One-stop imports for simulation code.
pub mod prelude {
    pub use crate::executor::{assert_deterministic, JoinHandle, QuiescenceReport, Sim, TaskGroup};
    pub use crate::metrics::{Histogram, Metrics};
    pub use crate::resource::Fluid;
    pub use crate::sync::{
        bounded, bounded_named, channel, channel_named, join_all, select2, Either, Notify, Permit,
        Semaphore,
    };
    pub use crate::time::{SimDuration, SimTime};
}
