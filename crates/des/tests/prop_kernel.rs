//! Property-based tests on the DES kernel: fluid conservation, semaphore
//! bounds, channel FIFO order — under randomly generated programs.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use rmr_des::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every unit asked of a fluid resource is eventually served, exactly
    /// once, no matter how consumers arrive.
    #[test]
    fn fluid_conserves_work(
        jobs in proptest::collection::vec((1u64..5_000, 0u64..2_000), 1..24),
        capacity in 1u64..1_000,
    ) {
        let sim = Sim::new(1);
        let fluid = Fluid::new(&sim, capacity as f64);
        let total: u64 = jobs.iter().map(|(amount, _)| *amount).sum();
        let done = Rc::new(RefCell::new(0u64));
        for (amount, delay_ms) in jobs {
            let sim2 = sim.clone();
            let fluid = fluid.clone();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(delay_ms)).await;
                fluid.consume(amount as f64).await;
                *done.borrow_mut() += amount;
            })
            .detach();
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), total, "all consumers complete");
        prop_assert!((fluid.served() - total as f64).abs() < 1.0, "served ≈ requested");
        // Work conservation: busy time is at least total/capacity.
        let lower = total as f64 / capacity as f64;
        prop_assert!(fluid.busy_seconds() + 1e-6 >= lower * 0.999,
            "busy {} < lower bound {}", fluid.busy_seconds(), lower);
    }

    /// Semaphore-guarded critical sections never exceed the permit count.
    #[test]
    fn semaphore_bounds_concurrency(
        permits in 1u64..6,
        tasks in proptest::collection::vec((1u64..4, 0u64..50), 1..32),
    ) {
        let sim = Sim::new(2);
        let sem = Semaphore::new(permits);
        let state = Rc::new(RefCell::new((0u64, 0u64))); // (current, peak)
        let mut expected_done = 0usize;
        for (need, delay_ms) in tasks {
            let need = need.min(permits);
            expected_done += 1;
            let sim2 = sim.clone();
            let sem = sem.clone();
            let state = Rc::clone(&state);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(delay_ms)).await;
                let _p = sem.acquire(need).await;
                {
                    let mut s = state.borrow_mut();
                    s.0 += need;
                    s.1 = s.1.max(s.0);
                }
                sim2.sleep(SimDuration::from_millis(1)).await;
                state.borrow_mut().0 -= need;
            })
            .detach();
        }
        sim.run();
        let (current, peak) = *state.borrow();
        prop_assert_eq!(current, 0);
        prop_assert!(peak <= permits, "peak {} > permits {}", peak, permits);
        prop_assert_eq!(sem.available(), permits, "all permits returned");
        let _ = expected_done;
    }

    /// Channels deliver every message exactly once, in order per sender.
    #[test]
    fn channel_is_fifo_per_sender(
        counts in proptest::collection::vec(0usize..40, 1..5),
    ) {
        let sim = Sim::new(3);
        let (tx, rx) = rmr_des::sync::channel::<(usize, usize)>();
        for (sender, n) in counts.clone().into_iter().enumerate() {
            let tx = tx.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                for i in 0..n {
                    sim2.sleep(SimDuration::from_micros(1)).await;
                    tx.send_now((sender, i)).unwrap();
                }
            })
            .detach();
        }
        drop(tx);
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            while let Some(m) = rx.recv().await {
                got2.borrow_mut().push(m);
            }
        })
        .detach();
        sim.run();
        let got = got.borrow();
        let total: usize = counts.iter().sum();
        prop_assert_eq!(got.len(), total);
        // Per-sender order preserved.
        for (sender, n) in counts.iter().enumerate() {
            let seq: Vec<usize> = got.iter().filter(|(s, _)| *s == sender).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..*n).collect::<Vec<_>>());
        }
    }

    /// Timers fire in timestamp order regardless of creation order.
    #[test]
    fn timers_fire_in_order(delays in proptest::collection::vec(0u64..10_000, 1..40)) {
        let sim = Sim::new(4);
        let fired = Rc::new(RefCell::new(Vec::new()));
        for d in delays {
            let sim2 = sim.clone();
            let fired = Rc::clone(&fired);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(d)).await;
                fired.borrow_mut().push(sim2.now().as_nanos());
            })
            .detach();
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    }
}
