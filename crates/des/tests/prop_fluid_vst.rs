//! Property tests pinning the virtual-service-time fluid solver against a
//! brute-force oracle, plus the work-complexity regression guard.
//!
//! The solver in `resource/fluid.rs` tracks one virtual clock and per-entry
//! finish tags in a min-heap; the oracle below re-derives completion times
//! the slow, obvious way — advance every active entry at
//! `min(capacity * w / W, entry_cap * w)` until the next arrival or
//! completion, O(n) per event. Both must agree on *when* every consumer
//! finishes, for arbitrary arrival schedules, weights, and entry caps.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use rmr_des::prelude::*;
use rmr_des::resource::fluid::FLUID_ADVANCE_WORK;
use rmr_des::sync::{select2, Either};

/// One generated consumer: `(amount, arrival, weight)` in units, seconds,
/// and unitless weight.
type Job = (f64, f64, f64);

/// Brute-force processor-sharing oracle: event-stepped, O(n) per step.
/// Returns each job's completion time in seconds. Matches the solver's
/// completion tolerance (residual ≤ 1e-6 units counts as done).
fn oracle_finish_times(jobs: &[Job], capacity: f64, entry_cap: f64) -> Vec<f64> {
    const EPS: f64 = 1e-6;
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.0).collect();
    let mut finish = vec![f64::NAN; n];
    let mut t: f64 = 0.0;
    loop {
        let active: Vec<usize> = (0..n)
            .filter(|&i| finish[i].is_nan() && jobs[i].1 <= t)
            .collect();
        let next_arrival = (0..n)
            .filter(|&i| finish[i].is_nan() && jobs[i].1 > t)
            .map(|i| jobs[i].1)
            .fold(f64::INFINITY, f64::min);
        if active.is_empty() {
            if next_arrival.is_finite() {
                t = next_arrival;
                continue;
            }
            break;
        }
        let total_w: f64 = active.iter().map(|&i| jobs[i].2).sum();
        // Per-unit-weight rate: every active entry shares it (see the
        // module docs in resource/fluid.rs for why it is uniform).
        let r = (capacity / total_w).min(entry_cap);
        let dt_done = active
            .iter()
            .map(|&i| (remaining[i] - EPS) / (r * jobs[i].2))
            .fold(f64::INFINITY, f64::min)
            .max(0.0);
        let dt = dt_done.min(next_arrival - t);
        for &i in &active {
            remaining[i] -= dt * r * jobs[i].2;
        }
        t += dt;
        for &i in &active {
            if remaining[i] <= EPS {
                finish[i] = t;
            }
        }
    }
    finish
}

const WEIGHTS: [f64; 3] = [1.0, 2.0, 4.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heap solver and the brute-force oracle agree on every
    /// completion time, across random arrival schedules, mixed weights,
    /// and entry caps. This is the end-to-end correctness property of the
    /// virtual-service-time rewrite.
    #[test]
    fn fluid_matches_brute_force_oracle(
        raw in proptest::collection::vec((1u64..5_000, 0u64..2_000, 0usize..3), 1..16),
        capacity in 1u64..1_000,
        // 0 = uncapped; otherwise units/second per unit weight.
        cap_raw in 0u64..500,
    ) {
        let capacity = capacity as f64;
        let entry_cap = if cap_raw == 0 { f64::INFINITY } else { cap_raw as f64 };
        let jobs: Vec<Job> = raw
            .iter()
            .map(|&(a, d, w)| (a as f64, d as f64 / 1e3, WEIGHTS[w]))
            .collect();

        let sim = Sim::new(11);
        let fluid = Fluid::with_entry_cap(&sim, capacity, entry_cap);
        let finish: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![f64::NAN; jobs.len()]));
        for (i, &(amount, _, weight)) in jobs.iter().enumerate() {
            let delay_ms = raw[i].1;
            let sim2 = sim.clone();
            let fluid = fluid.clone();
            let finish = Rc::clone(&finish);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(delay_ms)).await;
                fluid.consume_weighted(amount, weight).await;
                finish.borrow_mut()[i] = sim2.now().as_nanos() as f64 / 1e9;
            })
            .detach();
        }
        sim.run();

        let expected = oracle_finish_times(&jobs, capacity, entry_cap);
        let got = finish.borrow();
        for (i, (&g, &e)) in got.iter().zip(expected.iter()).enumerate() {
            prop_assert!(!g.is_nan(), "job {i} never completed");
            // Slack: the solver's 1e-6-unit completion tolerance divided by
            // the slowest possible entry rate, plus relative float drift
            // over a long virtual-clock run, plus nanosecond quantisation.
            let w = jobs[i].2;
            let total_w: f64 = jobs.iter().map(|j| j.2).sum();
            let slowest_rate = (capacity / total_w).min(entry_cap) * w;
            let tol = 2e-6 / slowest_rate + 1e-6 * e + 1e-6;
            prop_assert!(
                (g - e).abs() <= tol,
                "job {i}: solver {g} vs oracle {e} (tol {tol})"
            );
        }
        // Conservation: everything asked for was served.
        let total: f64 = jobs.iter().map(|j| j.0).sum();
        prop_assert!((fluid.served() - total).abs() < 1.0,
            "served {} vs requested {total}", fluid.served());
        prop_assert_eq!(fluid.active(), 0);
    }

    /// Cancelling consumers mid-flight (dropping the `ConsumeFuture` when a
    /// timeout wins a `select2` race) must not wedge or corrupt the solver:
    /// every surviving consumer still completes and accounting stays sane.
    /// Exercises the slot-generation (ABA) protection on heap entries.
    #[test]
    fn fluid_survives_cancellation(
        raw in proptest::collection::vec(
            // (amount, arrival ms, weight index, cancel-after ms; 0 = never)
            (1u64..5_000, 0u64..500, 0usize..3, 0u64..200),
            1..16,
        ),
        capacity in 1u64..100,
    ) {
        let sim = Sim::new(13);
        let fluid = Fluid::new(&sim, capacity as f64);
        let completed: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let cancelled: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &(amount, delay_ms, w, cancel_ms)) in raw.iter().enumerate() {
            let sim2 = sim.clone();
            let fluid = fluid.clone();
            let completed = Rc::clone(&completed);
            let cancelled = Rc::clone(&cancelled);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(delay_ms)).await;
                let consume = fluid.consume_weighted(amount as f64, WEIGHTS[w]);
                if cancel_ms == 0 {
                    consume.await;
                    completed.borrow_mut().push(i);
                } else {
                    let timeout = sim2.sleep(SimDuration::from_millis(cancel_ms));
                    match select2(timeout, consume).await {
                        Either::Left(()) => cancelled.borrow_mut().push(i),
                        Either::Right(()) => completed.borrow_mut().push(i),
                    }
                }
            })
            .detach();
        }
        sim.run(); // liveness: quiesces instead of wedging

        let completed = completed.borrow();
        let cancelled = cancelled.borrow();
        prop_assert_eq!(completed.len() + cancelled.len(), raw.len(),
            "every consumer resolved one way or the other");
        for (i, &(_, _, _, cancel_ms)) in raw.iter().enumerate() {
            if cancel_ms == 0 {
                prop_assert!(completed.contains(&i), "job {i} (no timeout) must complete");
            }
        }
        prop_assert_eq!(fluid.active(), 0, "no entries left behind");
        // Served lies between the completed total (their full amounts went
        // through) and the requested total (cancelled ones stop early).
        let total: f64 = raw.iter().map(|j| j.0 as f64).sum();
        let completed_total: f64 = completed.iter().map(|&i| raw[i].0 as f64).sum();
        prop_assert!(fluid.served() >= completed_total - 1.0,
            "served {} < completed {completed_total}", fluid.served());
        prop_assert!(fluid.served() <= total + 1.0,
            "served {} > requested {total}", fluid.served());
    }
}

/// Runs the wallclock churn pattern at size `n`: staggered consumers each
/// doing several transfers on one shared resource, so completions happen
/// under persistently high concurrency. Returns (solver work, completions).
fn churn_work(n: usize) -> (u64, u64) {
    const ROUNDS: usize = 4;
    let sim = Sim::new(7);
    let f = Fluid::new(&sim, 1e6);
    for i in 0..n {
        let f = f.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis((i % 97) as u64)).await;
            for r in 0..ROUNDS {
                f.consume(1_000.0 + ((i * 31 + r * 7) % 500) as f64).await;
            }
        })
        .detach();
    }
    let work0 = FLUID_ADVANCE_WORK.with(|w| w.get());
    sim.run();
    let work = FLUID_ADVANCE_WORK.with(|w| w.get()) - work0;
    (work, (n * ROUNDS) as u64)
}

/// Regression guard on solver complexity: doubling the number of transfers
/// must roughly double `FLUID_ADVANCE_WORK`, not quadruple it. The old
/// every-entry rescan scored ~4× here (work/completion itself grew with n);
/// the heap solver stays ~2× with constant work/completion.
#[test]
fn fluid_work_grows_linearly() {
    let (work1, done1) = churn_work(200);
    let (work2, done2) = churn_work(400);
    assert_eq!(done2, 2 * done1);
    let ratio = work2 as f64 / work1 as f64;
    assert!(
        ratio < 3.0,
        "FLUID_ADVANCE_WORK grew {ratio:.2}x for 2x transfers (quadratic regression?): \
         {work1} -> {work2}"
    );
    // And work per completion is bounded by a small constant, independent
    // of n (one clock advance + one heap pop per completion, plus churn).
    let per1 = work1 as f64 / done1 as f64;
    let per2 = work2 as f64 / done2 as f64;
    assert!(
        per1 < 16.0 && per2 < 16.0,
        "work/completion {per1:.1} / {per2:.1}"
    );
}
