//! The JobTracker: task scheduling and completion-event bookkeeping.
//!
//! A synchronous state machine; TaskTrackers drive it through heartbeats
//! (the RPC timing is charged by the caller). Scheduling follows Hadoop
//! 0.20: map tasks go preferentially to TaskTrackers holding a replica of
//! their split (data locality); ReduceTasks launch once the completed-map
//! fraction passes `mapred.reduce.slowstart.completed.maps`; reducers learn
//! about completed maps through an append-only event log they poll with a
//! cursor.
//!
//! Node death ([`JobTracker::node_lost`]) follows Hadoop's TaskTracker-
//! expiry semantics: running attempts on the dead node are lost and their
//! tasks re-queued, *completed* maps whose output lived on the dead node
//! are re-executed (their intermediate data is unreachable), and running
//! reducers restart from scratch (partial shuffles are not checkpointed).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rmr_hdfs::BlockMeta;
use rmr_net::NodeId;

/// One map task to schedule: an input split plus its replica locations.
#[derive(Debug, Clone)]
pub struct MapTaskDesc {
    /// Task index.
    pub idx: usize,
    /// The HDFS block it reads.
    pub block: BlockMeta,
    /// Hosts holding replicas (locality preference).
    pub locations: Vec<NodeId>,
}

/// A map-completion event: (map index, TaskTracker index that ran it).
///
/// The log is append-only; a map re-executed after node loss appends a
/// *second* event for the same index, and readers resolve the serving
/// location latest-wins.
pub type CompletionEvent = (usize, usize);

/// What one node's death cost a job (for re-queueing and observability).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NodeLossReport {
    /// One entry per running map attempt that died (task re-queued when it
    /// was the last attempt).
    pub lost_running_maps: Vec<usize>,
    /// Completed maps whose output became unreachable; re-queued.
    pub lost_completed_maps: Vec<usize>,
    /// Running reduce attempts that died; re-queued.
    pub lost_reduces: Vec<usize>,
}

impl NodeLossReport {
    /// Nothing lost?
    pub fn is_empty(&self) -> bool {
        self.lost_running_maps.is_empty()
            && self.lost_completed_maps.is_empty()
            && self.lost_reduces.is_empty()
    }
}

/// A map task's in-flight attempts.
struct RunningMap {
    /// TaskTracker index of each attempt (duplicates = speculation).
    attempt_tts: Vec<usize>,
    desc: MapTaskDesc,
    /// Launch sequence for oldest-first speculation.
    seq: u64,
}

/// The job's scheduling state.
///
/// Pending maps live in a key-ordered map (`pending`) whose ascending key
/// order *is* the old scheduling deque's front-to-back order: initial tasks
/// get keys `0..n`, re-queued failures take ever-smaller keys (push-front),
/// so "first pending task" = "smallest key". A per-node locality index
/// (`local`) holds, for each replica host, the pending keys of its local
/// splits in the same ascending order, with lazy deletion: a task assigned
/// elsewhere leaves stale keys behind that are skipped (and dropped) when
/// popped. This makes a heartbeat's locality pass amortized O(assigned)
/// instead of O(pending) — the difference between flat and quadratic
/// heartbeat cost at 1k nodes.
pub struct JobTracker {
    /// Every map descriptor, kept for re-queueing completed maps whose
    /// output died with a node.
    descs: BTreeMap<usize, MapTaskDesc>,
    /// Pending maps in scheduling order (ascending key).
    pending: BTreeMap<i64, MapTaskDesc>,
    /// Per-node queues of pending keys local to that node (lazy-deleted).
    local: BTreeMap<NodeId, VecDeque<i64>>,
    /// Next key for a front re-queue (monotonically decreasing).
    front_key: i64,
    maps_running: usize,
    maps_completed: usize,
    total_maps: usize,
    events: Vec<CompletionEvent>,
    reduces_pending: VecDeque<usize>,
    reduces_done: usize,
    total_reduces: usize,
    slowstart: f64,
    /// Fault injection: these map indices fail their next attempt.
    fail_maps: BTreeSet<usize>,
    /// Fault injection: these reduce indices fail their next attempt.
    fail_reduces: BTreeSet<usize>,
    map_failures: usize,
    reduce_failures: usize,
    /// Speculative execution enabled?
    speculative: bool,
    /// Maps currently running, by task index.
    running: BTreeMap<usize, RunningMap>,
    launch_seq: u64,
    /// Maps already completed (deduplicates speculative double-finishes).
    completed_set: BTreeSet<usize>,
    /// Which TaskTracker holds each completed map's output (the winning
    /// attempt); consulted when a node dies.
    completed_on: BTreeMap<usize, usize>,
    /// Attempts still in flight for tasks that already completed (losing
    /// speculative duplicates). Their eventual result is discarded, but the
    /// attempt accounting must survive a node death.
    orphans: BTreeMap<usize, Vec<usize>>,
    /// Which TaskTracker each running reduce attempt sits on.
    running_reduces: BTreeMap<usize, usize>,
    speculative_launched: usize,
    speculative_wasted: usize,
    speculative_preempted: usize,
    /// Delay scheduling: non-local scheduling opportunities to skip before
    /// a pending map accepts a non-local slot (0 = off).
    locality_delay: u32,
    /// Non-local opportunities skipped since the last non-local launch.
    nonlocal_skips: u32,
}

impl JobTracker {
    /// Creates a tracker for `maps` and `reduces` tasks.
    pub fn new(maps: Vec<MapTaskDesc>, reduces: usize, slowstart: f64) -> Self {
        let total_maps = maps.len();
        let mut local: BTreeMap<NodeId, VecDeque<i64>> = BTreeMap::new();
        let pending: BTreeMap<i64, MapTaskDesc> = maps
            .into_iter()
            .enumerate()
            .map(|(i, m)| (i as i64, m))
            .collect();
        for (key, m) in &pending {
            for loc in &m.locations {
                local.entry(*loc).or_default().push_back(*key);
            }
        }
        let descs = pending.values().map(|m| (m.idx, m.clone())).collect();
        JobTracker {
            descs,
            pending,
            local,
            front_key: -1,
            maps_running: 0,
            maps_completed: 0,
            total_maps,
            events: Vec::new(),
            reduces_pending: (0..reduces).collect(),
            reduces_done: 0,
            total_reduces: reduces,
            slowstart,
            fail_maps: BTreeSet::new(),
            fail_reduces: BTreeSet::new(),
            map_failures: 0,
            reduce_failures: 0,
            speculative: false,
            running: BTreeMap::new(),
            launch_seq: 0,
            completed_set: BTreeSet::new(),
            completed_on: BTreeMap::new(),
            orphans: BTreeMap::new(),
            running_reduces: BTreeMap::new(),
            speculative_launched: 0,
            speculative_wasted: 0,
            speculative_preempted: 0,
            locality_delay: 0,
            nonlocal_skips: 0,
        }
    }

    /// Enables speculative map execution.
    pub fn set_speculative(&mut self, on: bool) {
        self.speculative = on;
    }

    /// Sets the delay-scheduling skip budget (see `JobConf::locality_delay`).
    pub fn set_locality_delay(&mut self, delay: u32) {
        self.locality_delay = delay;
    }

    /// Arms a one-shot map failure: `map_idx`'s next attempt aborts.
    pub fn inject_map_failure(&mut self, map_idx: usize) {
        self.fail_maps.insert(map_idx);
    }

    /// Arms a one-shot reduce failure: `reduce_idx`'s next attempt aborts.
    pub fn inject_reduce_failure(&mut self, reduce_idx: usize) {
        self.fail_reduces.insert(reduce_idx);
    }

    /// Attempts launched purely speculatively.
    pub fn speculative_launched(&self) -> usize {
        self.speculative_launched
    }

    /// Speculative attempts whose work was discarded (the original won, or
    /// the duplicate finished second).
    pub fn speculative_wasted(&self) -> usize {
        self.speculative_wasted
    }

    /// Speculative attempts preempted by the scheduler under queue pressure.
    pub fn speculative_preempted(&self) -> usize {
        self.speculative_preempted
    }

    /// Total map tasks.
    pub fn total_maps(&self) -> usize {
        self.total_maps
    }

    /// Total reduce tasks.
    pub fn total_reduces(&self) -> usize {
        self.total_reduces
    }

    /// Completed map count.
    pub fn maps_completed(&self) -> usize {
        self.maps_completed
    }

    /// Map tasks waiting to be assigned.
    pub fn pending_maps(&self) -> usize {
        self.pending.len()
    }

    /// Would a heartbeat advertising free slots get *any* assignment right
    /// now? O(1); lets the runtime skip whole jobs during its per-node
    /// walk instead of paying a full (no-op) heartbeat per idle job.
    /// Conservative on speculation: running tasks *may* have stragglers.
    pub fn has_assignable_work(&self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if !self.reduces_pending.is_empty() && self.reduce_phase_open() {
            return true;
        }
        self.speculative && !self.running.is_empty()
    }

    /// Map attempts currently running (speculative duplicates included).
    pub fn running_maps(&self) -> usize {
        self.maps_running
    }

    /// Reduce tasks waiting to be assigned.
    pub fn pending_reduces(&self) -> usize {
        self.reduces_pending.len()
    }

    /// Completed reduce count.
    pub fn reduces_completed(&self) -> usize {
        self.reduces_done
    }

    /// Heartbeat from TaskTracker `tt_idx` on `node` advertising free
    /// slots; returns `(maps, speculative_from, reduces)` where
    /// `speculative_from` is the index into `maps` at which speculative
    /// duplicates begin (`maps.len()` when there are none). Data-local maps
    /// are preferred; remaining slots take arbitrary pending maps
    /// (single-rack cluster: everything else is equally remote), unless
    /// delay scheduling is holding them back for a local slot.
    pub fn heartbeat(
        &mut self,
        node: NodeId,
        tt_idx: usize,
        free_map_slots: usize,
        free_reduce_slots: usize,
    ) -> (Vec<MapTaskDesc>, usize, Vec<usize>) {
        let mut maps = Vec::new();
        // Pass 1: data-local — pop this node's locality queue, skipping
        // (and discarding) stale keys of tasks already assigned elsewhere.
        if let Some(queue) = self.local.get_mut(&node) {
            while maps.len() < free_map_slots {
                match queue.pop_front() {
                    Some(key) => {
                        if let Some(m) = self.pending.remove(&key) {
                            maps.push(m);
                        }
                    }
                    None => break,
                }
            }
            if queue.is_empty() {
                self.local.remove(&node);
            }
        }
        // Pass 2: any — first pending task in scheduling order. Under delay
        // scheduling the job declines up to `locality_delay` such non-local
        // opportunities, betting a local slot frees up; the skip counter
        // bounds the wait, and a granted non-local launch resets it.
        if maps.len() < free_map_slots && !self.pending.is_empty() {
            if self.nonlocal_skips >= self.locality_delay {
                while maps.len() < free_map_slots {
                    match self.pending.pop_first() {
                        Some((_, m)) => maps.push(m),
                        None => break,
                    }
                }
                self.nonlocal_skips = 0;
            } else {
                self.nonlocal_skips += 1;
            }
        }
        for m in &maps {
            self.launch_seq += 1;
            self.running.insert(
                m.idx,
                RunningMap {
                    attempt_tts: vec![tt_idx],
                    desc: m.clone(),
                    seq: self.launch_seq,
                },
            );
        }
        // Pass 3: speculation — pending queue drained, idle slots re-run the
        // oldest single-attempt stragglers.
        let speculative_from = maps.len();
        if self.speculative && self.pending.is_empty() {
            let mut stragglers: Vec<(u64, usize)> = self
                .running
                .iter()
                .filter(|(idx, rm)| {
                    rm.attempt_tts.len() == 1
                        && !self.completed_set.contains(*idx)
                        && !maps.iter().any(|m| m.idx == **idx)
                })
                .map(|(idx, rm)| (rm.seq, *idx))
                .collect();
            stragglers.sort();
            for (_, idx) in stragglers {
                if maps.len() >= free_map_slots {
                    break;
                }
                let entry = self.running.get_mut(&idx).unwrap();
                entry.attempt_tts.push(tt_idx);
                self.speculative_launched += 1;
                maps.push(entry.desc.clone());
            }
        }
        self.maps_running += maps.len();

        let mut reduces = Vec::new();
        if self.reduce_phase_open() {
            for _ in 0..free_reduce_slots {
                match self.reduces_pending.pop_front() {
                    Some(r) => {
                        self.running_reduces.insert(r, tt_idx);
                        reduces.push(r);
                    }
                    None => break,
                }
            }
        }
        (maps, speculative_from, reduces)
    }

    fn reduce_phase_open(&self) -> bool {
        if self.total_maps == 0 {
            return true;
        }
        self.maps_completed as f64 >= self.slowstart * self.total_maps as f64
    }

    /// Should this attempt of `map_idx` fail? (Consumes the injection.)
    pub fn should_fail(&mut self, map_idx: usize) -> bool {
        if self.fail_maps.remove(&map_idx) {
            self.map_failures += 1;
            true
        } else {
            false
        }
    }

    /// Map attempts that failed and were re-executed.
    pub fn map_failures_seen(&self) -> usize {
        self.map_failures
    }

    /// Reduce attempts that failed and were re-executed.
    pub fn reduce_failures_seen(&self) -> usize {
        self.reduce_failures
    }

    /// A map attempt finished on TaskTracker `tt_idx`. Returns `true` when
    /// this is the *first* completion of the task (its output counts);
    /// `false` for a speculative loser, whose output is discarded.
    pub fn map_completed(&mut self, map_idx: usize, tt_idx: usize) -> bool {
        if !self.completed_set.insert(map_idx) {
            // A duplicate attempt finishing after the task is already done.
            self.maps_running -= 1;
            self.speculative_wasted += 1;
            self.drop_orphan(map_idx, tt_idx);
            return false;
        }
        if let Some(mut rm) = self.running.remove(&map_idx) {
            // The winner leaves the attempt table; in-flight duplicates are
            // orphaned (their results will be discarded, but the attempts
            // still occupy slots and must survive node-death accounting).
            if let Some(p) = rm.attempt_tts.iter().position(|t| *t == tt_idx) {
                rm.attempt_tts.remove(p);
            }
            if !rm.attempt_tts.is_empty() {
                self.orphans
                    .entry(map_idx)
                    .or_default()
                    .extend(rm.attempt_tts);
            }
        } else {
            // Re-completion by an orphaned duplicate after node loss
            // un-completed the task.
            self.drop_orphan(map_idx, tt_idx);
        }
        self.maps_running -= 1;
        self.maps_completed += 1;
        self.completed_on.insert(map_idx, tt_idx);
        self.events.push((map_idx, tt_idx));
        true
    }

    fn drop_orphan(&mut self, map_idx: usize, tt_idx: usize) {
        if let Some(v) = self.orphans.get_mut(&map_idx) {
            if let Some(p) = v.iter().position(|t| *t == tt_idx) {
                v.remove(p);
            }
            if v.is_empty() {
                self.orphans.remove(&map_idx);
            }
        }
    }

    /// A map attempt on `tt_idx` failed; the task is re-queued (front:
    /// re-execute soon) once its last attempt is gone.
    pub fn map_failed(&mut self, desc: MapTaskDesc, tt_idx: usize) {
        self.maps_running -= 1;
        if self.completed_set.contains(&desc.idx) {
            // A speculative sibling already won; this late failure is just
            // a wasted duplicate, not a reschedule.
            self.speculative_wasted += 1;
            self.drop_orphan(desc.idx, tt_idx);
            return;
        }
        if let Some(rm) = self.running.get_mut(&desc.idx) {
            if let Some(p) = rm.attempt_tts.iter().position(|t| *t == tt_idx) {
                rm.attempt_tts.remove(p);
            }
            if !rm.attempt_tts.is_empty() {
                return; // another attempt is still running
            }
            self.running.remove(&desc.idx);
        }
        self.requeue_map(desc);
    }

    /// The scheduler wants `tt_idx`'s in-flight attempt of `map_idx` gone to
    /// free its slot for a capacity-starved queue. Only *redundant* work may
    /// be shed: a duplicate of a task whose other attempt is still running,
    /// or an orphaned loser of a task that already completed. Returns `true`
    /// and updates the books when the preemption is granted; returns `false`
    /// (attempt keeps running) when this is the task's last live attempt —
    /// preemption must never lose committed work or strand a task.
    pub fn preempt_speculative(&mut self, map_idx: usize, tt_idx: usize) -> bool {
        if self.completed_set.contains(&map_idx) {
            // An orphaned duplicate whose result was doomed anyway.
            let had = self
                .orphans
                .get(&map_idx)
                .is_some_and(|v| v.contains(&tt_idx));
            if !had {
                return false; // stale request: nothing of ours runs there
            }
            self.drop_orphan(map_idx, tt_idx);
            self.maps_running -= 1;
            self.speculative_wasted += 1;
            self.speculative_preempted += 1;
            return true;
        }
        let Some(rm) = self.running.get_mut(&map_idx) else {
            return false;
        };
        if rm.attempt_tts.len() < 2 {
            return false; // last live attempt: not redundant
        }
        let Some(p) = rm.attempt_tts.iter().position(|t| *t == tt_idx) else {
            return false;
        };
        rm.attempt_tts.remove(p);
        self.maps_running -= 1;
        self.speculative_preempted += 1;
        true
    }

    /// Re-queue at the front (re-execute soon): an ever-smaller key sorts
    /// before everything pending, and front-pushing the locality queues
    /// keeps them ascending (every new front key is the global minimum).
    fn requeue_map(&mut self, desc: MapTaskDesc) {
        let key = self.front_key;
        self.front_key -= 1;
        for loc in &desc.locations {
            self.local.entry(*loc).or_default().push_front(key);
        }
        self.pending.insert(key, desc);
    }

    /// Should this reduce attempt fail? (Consumes the injection.)
    pub fn should_fail_reduce(&mut self, reduce_idx: usize) -> bool {
        if self.fail_reduces.remove(&reduce_idx) {
            self.reduce_failures += 1;
            true
        } else {
            false
        }
    }

    /// A reduce attempt failed; re-queue it.
    pub fn reduce_failed(&mut self, reduce_idx: usize) {
        self.running_reduces.remove(&reduce_idx);
        self.reduces_pending.push_front(reduce_idx);
    }

    /// A reduce attempt died mid-shuffle (its sources vanished, or its own
    /// node did while the runtime re-queues on its behalf). Counts as a
    /// failure and re-queues.
    pub fn reduce_attempt_lost(&mut self, reduce_idx: usize) {
        self.reduce_failures += 1;
        self.reduce_failed(reduce_idx);
    }

    /// TaskTracker `tt_idx` died. Re-queues everything it was running and
    /// every completed map whose output it held; returns what was lost so
    /// the runtime can invalidate stores and emit events.
    pub fn node_lost(&mut self, tt_idx: usize) -> NodeLossReport {
        let mut report = NodeLossReport::default();
        // Running map attempts on the dead node: each lost attempt is a
        // failure; the task re-queues once no attempt survives.
        let idxs: Vec<usize> = self.running.keys().copied().collect();
        for idx in idxs {
            let rm = self.running.get_mut(&idx).unwrap();
            let before = rm.attempt_tts.len();
            rm.attempt_tts.retain(|t| *t != tt_idx);
            let lost = before - rm.attempt_tts.len();
            if lost == 0 {
                continue;
            }
            self.maps_running -= lost;
            self.map_failures += lost;
            report
                .lost_running_maps
                .extend(std::iter::repeat_n(idx, lost));
            if rm.attempt_tts.is_empty() {
                let desc = self.running.remove(&idx).unwrap().desc;
                self.requeue_map(desc);
            }
        }
        // Orphaned duplicates on the dead node vanish silently (their
        // results were going to be discarded anyway).
        for tts in self.orphans.values_mut() {
            let before = tts.len();
            tts.retain(|t| *t != tt_idx);
            let lost = before - tts.len();
            self.maps_running -= lost;
            self.speculative_wasted += lost;
        }
        self.orphans.retain(|_, v| !v.is_empty());
        // Completed maps whose output lived on the dead node: unreachable
        // intermediate data, so the map re-executes (not counted as a
        // failure — the attempt itself succeeded). Once every reduce has
        // committed, the intermediate data has no remaining consumer and
        // the re-execution would be pure waste — skip it.
        let shuffle_live = self.total_reduces == 0 || self.reduces_done < self.total_reduces;
        if shuffle_live {
            let lost_completed: Vec<usize> = self
                .completed_on
                .iter()
                .filter(|(_, t)| **t == tt_idx)
                .map(|(m, _)| *m)
                .collect();
            for idx in lost_completed {
                self.completed_on.remove(&idx);
                self.completed_set.remove(&idx);
                self.maps_completed -= 1;
                self.requeue_map(self.descs[&idx].clone());
                report.lost_completed_maps.push(idx);
            }
        }
        // Running reduce attempts on the dead node restart from scratch.
        let lost_reduces: Vec<usize> = self
            .running_reduces
            .iter()
            .filter(|(_, t)| **t == tt_idx)
            .map(|(r, _)| *r)
            .collect();
        for r in lost_reduces {
            self.reduce_attempt_lost(r);
            report.lost_reduces.push(r);
        }
        report
    }

    /// All maps completed?
    pub fn maps_done(&self) -> bool {
        self.maps_completed == self.total_maps
    }

    /// Completion events after `cursor`; returns the new cursor.
    pub fn events_since(&self, cursor: usize) -> (Vec<CompletionEvent>, usize) {
        (self.events[cursor..].to_vec(), self.events.len())
    }

    /// Reducer `reduce_idx` finished.
    pub fn reduce_completed(&mut self, reduce_idx: usize) {
        self.running_reduces.remove(&reduce_idx);
        self.reduces_done += 1;
    }

    /// The whole job done?
    pub fn job_done(&self) -> bool {
        self.maps_done() && self.reduces_done == self.total_reduces
    }
}

#[cfg(test)]
impl JobTracker {
    /// Test helper: append a raw completion event without touching counters.
    pub(crate) fn push_event_for_test(&mut self, map_idx: usize, tt_idx: usize) {
        self.events.push((map_idx, tt_idx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_hdfs::BlockId;

    fn desc(idx: usize, loc: u32) -> MapTaskDesc {
        MapTaskDesc {
            idx,
            block: BlockMeta {
                id: BlockId(idx as u64),
                size: 100,
                replicas: vec![0],
            },
            locations: vec![NodeId(loc)],
        }
    }

    #[test]
    fn locality_preferred() {
        let mut jt = JobTracker::new(vec![desc(0, 1), desc(1, 2), desc(2, 1)], 0, 0.05);
        let (maps, _, _) = jt.heartbeat(NodeId(1), 0, 2, 0);
        assert_eq!(maps.iter().map(|m| m.idx).collect::<Vec<_>>(), vec![0, 2]);
        // Node 3 has no local splits → takes any.
        let (maps, _, _) = jt.heartbeat(NodeId(3), 2, 2, 0);
        assert_eq!(maps.iter().map(|m| m.idx).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn slowstart_gates_reducers() {
        let maps: Vec<_> = (0..10).map(|i| desc(i, 0)).collect();
        let mut jt = JobTracker::new(maps, 2, 0.5);
        let (m, _, r) = jt.heartbeat(NodeId(0), 0, 10, 2);
        assert_eq!(m.len(), 10);
        assert!(r.is_empty(), "no reducers before slowstart");
        for i in 0..5 {
            jt.map_completed(i, 0);
        }
        let (_, _, r) = jt.heartbeat(NodeId(0), 0, 0, 2);
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn events_cursor_protocol() {
        let mut jt = JobTracker::new(vec![desc(0, 0), desc(1, 0)], 1, 0.0);
        let _ = jt.heartbeat(NodeId(0), 0, 2, 0);
        assert!(jt.map_completed(0, 3));
        let (ev, cur) = jt.events_since(0);
        assert_eq!(ev, vec![(0, 3)]);
        assert!(jt.map_completed(1, 4));
        let (ev, cur2) = jt.events_since(cur);
        assert_eq!(ev, vec![(1, 4)]);
        let (ev, _) = jt.events_since(cur2);
        assert!(ev.is_empty());
    }

    #[test]
    fn failed_map_is_rescheduled() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 0, 0.0);
        jt.inject_map_failure(0);
        let (maps, _, _) = jt.heartbeat(NodeId(0), 0, 1, 0);
        assert!(jt.should_fail(0));
        assert!(!jt.should_fail(0), "only fails once");
        jt.map_failed(maps.into_iter().next().unwrap(), 0);
        let (maps, _, _) = jt.heartbeat(NodeId(5), 4, 1, 0);
        assert_eq!(maps.len(), 1);
        jt.map_completed(0, 4);
        assert!(jt.maps_done());
        assert_eq!(jt.map_failures_seen(), 1);
        assert_eq!(jt.reduce_failures_seen(), 0);
    }

    #[test]
    fn speculation_duplicates_stragglers_when_queue_drains() {
        let mut jt = JobTracker::new(vec![desc(0, 0), desc(1, 0)], 0, 0.0);
        jt.set_speculative(true);
        let (m, _, _) = jt.heartbeat(NodeId(0), 0, 2, 0);
        assert_eq!(m.len(), 2);
        // Queue empty; a second TT's free slots re-run the oldest straggler.
        let (m2, _, _) = jt.heartbeat(NodeId(1), 1, 1, 0);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].idx, 0, "oldest straggler first");
        assert_eq!(jt.speculative_launched(), 1);
        // First finisher wins; the loser's completion is discarded.
        assert!(jt.map_completed(0, 1));
        assert!(!jt.map_completed(0, 0));
        assert_eq!(jt.speculative_wasted(), 1);
        assert!(jt.map_completed(1, 0));
        assert!(jt.maps_done());
        // A completed task is never speculated again.
        let (m3, _, _) = jt.heartbeat(NodeId(2), 2, 4, 0);
        assert!(m3.is_empty());
    }

    #[test]
    fn speculation_disabled_by_default() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 0, 0.0);
        let _ = jt.heartbeat(NodeId(0), 0, 1, 0);
        let (m, _, _) = jt.heartbeat(NodeId(1), 1, 4, 0);
        assert!(m.is_empty(), "no duplicates without speculation");
    }

    #[test]
    fn failed_reduce_is_rescheduled() {
        let mut jt = JobTracker::new(vec![], 2, 0.0);
        jt.inject_reduce_failure(1);
        let (_, _, r) = jt.heartbeat(NodeId(0), 0, 0, 2);
        assert_eq!(r, vec![0, 1]);
        assert!(jt.should_fail_reduce(1));
        assert!(!jt.should_fail_reduce(1), "fails only once");
        jt.reduce_failed(1);
        let (_, _, r) = jt.heartbeat(NodeId(1), 1, 0, 2);
        assert_eq!(r, vec![1]);
        jt.reduce_completed(0);
        jt.reduce_completed(1);
        assert!(jt.job_done());
        assert_eq!(jt.reduce_failures_seen(), 1);
        assert_eq!(
            jt.map_failures_seen(),
            0,
            "reduce failure is not a map failure"
        );
    }

    #[test]
    fn job_done_requires_all_phases() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 1, 0.0);
        let _ = jt.heartbeat(NodeId(0), 0, 1, 1);
        assert!(!jt.job_done());
        jt.map_completed(0, 0);
        assert!(!jt.job_done());
        jt.reduce_completed(0);
        assert!(jt.job_done());
    }

    #[test]
    fn node_loss_requeues_running_and_completed_work() {
        // 3 maps, 1 reduce, all on tt0 (NodeId 1); tt1 = NodeId 2.
        let maps: Vec<_> = (0..3).map(|i| desc(i, 1)).collect();
        let mut jt = JobTracker::new(maps, 1, 0.0);
        let (m, _, r) = jt.heartbeat(NodeId(1), 0, 2, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(r, vec![0]);
        assert!(jt.map_completed(0, 0)); // map 0 completed ON tt0
        let (m2, _, _) = jt.heartbeat(NodeId(2), 1, 1, 0);
        assert_eq!(m2.len(), 1, "map 2 goes to tt1");

        let report = jt.node_lost(0);
        // Running map 1 (on tt0) lost; completed map 0's output lost; the
        // reduce on tt0 lost. Map 2 on tt1 untouched.
        assert_eq!(report.lost_running_maps, vec![1]);
        assert_eq!(report.lost_completed_maps, vec![0]);
        assert_eq!(report.lost_reduces, vec![0]);
        assert_eq!(jt.maps_completed(), 0);
        assert_eq!(jt.running_maps(), 1);
        assert_eq!(jt.pending_maps(), 2, "maps 0 and 1 re-queued");
        assert_eq!(
            jt.map_failures_seen(),
            1,
            "lost attempt counts, lost output does not"
        );
        assert_eq!(jt.reduce_failures_seen(), 1);

        // The surviving node picks everything back up and the job finishes.
        let (m3, _, r3) = jt.heartbeat(NodeId(2), 1, 2, 1);
        assert_eq!(m3.len(), 2);
        assert_eq!(r3, vec![0]);
        assert!(jt.map_completed(2, 1));
        assert!(jt.map_completed(0, 1), "re-execution completes again");
        assert!(jt.map_completed(1, 1));
        assert!(jt.maps_done());
        // The event log holds both completions of map 0; latest wins.
        let (ev, _) = jt.events_since(0);
        assert_eq!(ev.iter().filter(|(m, _)| *m == 0).count(), 2);
        jt.reduce_completed(0);
        assert!(jt.job_done());
    }

    #[test]
    fn node_loss_with_speculative_duplicate_keeps_counts_sane() {
        let mut jt = JobTracker::new(vec![desc(0, 1)], 0, 0.0);
        jt.set_speculative(true);
        let _ = jt.heartbeat(NodeId(1), 0, 1, 0);
        let (dup, _, _) = jt.heartbeat(NodeId(2), 1, 1, 0);
        assert_eq!(dup.len(), 1, "speculative duplicate launched");
        assert_eq!(jt.running_maps(), 2);
        // tt0 dies: one attempt lost, the duplicate on tt1 survives and the
        // task is NOT re-queued.
        let report = jt.node_lost(0);
        assert_eq!(report.lost_running_maps, vec![0]);
        assert_eq!(jt.running_maps(), 1);
        assert_eq!(jt.pending_maps(), 0);
        assert!(jt.map_completed(0, 1));
        assert!(jt.maps_done());
    }

    #[test]
    fn node_loss_drops_orphaned_duplicates() {
        let mut jt = JobTracker::new(vec![desc(0, 1)], 0, 0.0);
        jt.set_speculative(true);
        let _ = jt.heartbeat(NodeId(1), 0, 1, 0);
        let _ = jt.heartbeat(NodeId(2), 1, 1, 0);
        // tt1's duplicate wins; tt0's original is now an orphan in flight.
        assert!(jt.map_completed(0, 1));
        assert_eq!(jt.running_maps(), 1);
        // tt0 dies; the orphan vanishes without un-completing the task.
        let report = jt.node_lost(0);
        assert!(report.lost_running_maps.is_empty());
        assert!(report.lost_completed_maps.is_empty());
        assert_eq!(jt.running_maps(), 0);
        assert!(jt.maps_done());
        assert_eq!(jt.speculative_wasted(), 1);
    }
}
