//! The JobTracker: task scheduling and completion-event bookkeeping.
//!
//! A synchronous state machine; TaskTrackers drive it through heartbeats
//! (the RPC timing is charged by the caller). Scheduling follows Hadoop
//! 0.20: map tasks go preferentially to TaskTrackers holding a replica of
//! their split (data locality); ReduceTasks launch once the completed-map
//! fraction passes `mapred.reduce.slowstart.completed.maps`; reducers learn
//! about completed maps through an append-only event log they poll with a
//! cursor.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rmr_hdfs::BlockMeta;
use rmr_net::NodeId;

/// One map task to schedule: an input split plus its replica locations.
#[derive(Debug, Clone)]
pub struct MapTaskDesc {
    /// Task index.
    pub idx: usize,
    /// The HDFS block it reads.
    pub block: BlockMeta,
    /// Hosts holding replicas (locality preference).
    pub locations: Vec<NodeId>,
}

/// A map-completion event: (map index, TaskTracker index that ran it).
pub type CompletionEvent = (usize, usize);

/// The job's scheduling state.
///
/// Pending maps live in a key-ordered map (`pending`) whose ascending key
/// order *is* the old scheduling deque's front-to-back order: initial tasks
/// get keys `0..n`, re-queued failures take ever-smaller keys (push-front),
/// so "first pending task" = "smallest key". A per-node locality index
/// (`local`) holds, for each replica host, the pending keys of its local
/// splits in the same ascending order, with lazy deletion: a task assigned
/// elsewhere leaves stale keys behind that are skipped (and dropped) when
/// popped. This makes a heartbeat's locality pass amortized O(assigned)
/// instead of O(pending) — the difference between flat and quadratic
/// heartbeat cost at 1k nodes.
pub struct JobTracker {
    /// Pending maps in scheduling order (ascending key).
    pending: BTreeMap<i64, MapTaskDesc>,
    /// Per-node queues of pending keys local to that node (lazy-deleted).
    local: BTreeMap<NodeId, VecDeque<i64>>,
    /// Next key for a front re-queue (monotonically decreasing).
    front_key: i64,
    maps_running: usize,
    maps_completed: usize,
    total_maps: usize,
    events: Vec<CompletionEvent>,
    reduces_pending: VecDeque<usize>,
    reduces_done: usize,
    total_reduces: usize,
    slowstart: f64,
    /// Fault injection: this map index fails once, on its first attempt.
    fail_map_once: Option<usize>,
    /// Fault injection: this reduce index fails once.
    fail_reduce_once: Option<usize>,
    map_failures: usize,
    reduce_failures: usize,
    /// Speculative execution enabled?
    speculative: bool,
    /// Maps currently running: idx → (attempts in flight, descriptor,
    /// start sequence for oldest-first speculation).
    running: BTreeMap<usize, (usize, MapTaskDesc, u64)>,
    launch_seq: u64,
    /// Maps already completed (deduplicates speculative double-finishes).
    completed_set: BTreeSet<usize>,
    speculative_launched: usize,
    speculative_wasted: usize,
}

impl JobTracker {
    /// Creates a tracker for `maps` and `reduces` tasks.
    pub fn new(
        maps: Vec<MapTaskDesc>,
        reduces: usize,
        slowstart: f64,
        fail_map_once: Option<usize>,
    ) -> Self {
        let total_maps = maps.len();
        let mut local: BTreeMap<NodeId, VecDeque<i64>> = BTreeMap::new();
        let pending: BTreeMap<i64, MapTaskDesc> = maps
            .into_iter()
            .enumerate()
            .map(|(i, m)| (i as i64, m))
            .collect();
        for (key, m) in &pending {
            for loc in &m.locations {
                local.entry(*loc).or_default().push_back(*key);
            }
        }
        JobTracker {
            pending,
            local,
            front_key: -1,
            maps_running: 0,
            maps_completed: 0,
            total_maps,
            events: Vec::new(),
            reduces_pending: (0..reduces).collect(),
            reduces_done: 0,
            total_reduces: reduces,
            slowstart,
            fail_map_once,
            fail_reduce_once: None,
            map_failures: 0,
            reduce_failures: 0,
            speculative: false,
            running: BTreeMap::new(),
            launch_seq: 0,
            completed_set: BTreeSet::new(),
            speculative_launched: 0,
            speculative_wasted: 0,
        }
    }

    /// Enables speculative map execution.
    pub fn set_speculative(&mut self, on: bool) {
        self.speculative = on;
    }

    /// Arms the one-shot reduce failure injection.
    pub fn set_fail_reduce_once(&mut self, r: Option<usize>) {
        self.fail_reduce_once = r;
    }

    /// Attempts launched purely speculatively.
    pub fn speculative_launched(&self) -> usize {
        self.speculative_launched
    }

    /// Speculative attempts whose work was discarded (the original won, or
    /// the duplicate finished second).
    pub fn speculative_wasted(&self) -> usize {
        self.speculative_wasted
    }

    /// Total map tasks.
    pub fn total_maps(&self) -> usize {
        self.total_maps
    }

    /// Total reduce tasks.
    pub fn total_reduces(&self) -> usize {
        self.total_reduces
    }

    /// Completed map count.
    pub fn maps_completed(&self) -> usize {
        self.maps_completed
    }

    /// Map tasks waiting to be assigned.
    pub fn pending_maps(&self) -> usize {
        self.pending.len()
    }

    /// Would a heartbeat advertising free slots get *any* assignment right
    /// now? O(1); lets the runtime skip whole jobs during its per-node
    /// walk instead of paying a full (no-op) heartbeat per idle job.
    /// Conservative on speculation: running tasks *may* have stragglers.
    pub fn has_assignable_work(&self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if !self.reduces_pending.is_empty() && self.reduce_phase_open() {
            return true;
        }
        self.speculative && !self.running.is_empty()
    }

    /// Map attempts currently running (speculative duplicates included).
    pub fn running_maps(&self) -> usize {
        self.maps_running
    }

    /// Reduce tasks waiting to be assigned.
    pub fn pending_reduces(&self) -> usize {
        self.reduces_pending.len()
    }

    /// Completed reduce count.
    pub fn reduces_completed(&self) -> usize {
        self.reduces_done
    }

    /// Heartbeat from TaskTracker `tt` on `node` advertising free slots;
    /// returns assignments. Data-local maps are preferred; remaining slots
    /// take arbitrary pending maps (single-rack cluster: everything else is
    /// equally remote).
    pub fn heartbeat(
        &mut self,
        node: NodeId,
        free_map_slots: usize,
        free_reduce_slots: usize,
    ) -> (Vec<MapTaskDesc>, Vec<usize>) {
        let mut maps = Vec::new();
        // Pass 1: data-local — pop this node's locality queue, skipping
        // (and discarding) stale keys of tasks already assigned elsewhere.
        if let Some(queue) = self.local.get_mut(&node) {
            while maps.len() < free_map_slots {
                match queue.pop_front() {
                    Some(key) => {
                        if let Some(m) = self.pending.remove(&key) {
                            maps.push(m);
                        }
                    }
                    None => break,
                }
            }
            if queue.is_empty() {
                self.local.remove(&node);
            }
        }
        // Pass 2: any — first pending task in scheduling order.
        while maps.len() < free_map_slots {
            match self.pending.pop_first() {
                Some((_, m)) => maps.push(m),
                None => break,
            }
        }
        for m in &maps {
            self.launch_seq += 1;
            self.running.insert(m.idx, (1, m.clone(), self.launch_seq));
        }
        // Pass 3: speculation — pending queue drained, idle slots re-run the
        // oldest single-attempt stragglers.
        if self.speculative && self.pending.is_empty() {
            let mut stragglers: Vec<(u64, usize)> = self
                .running
                .iter()
                .filter(|(idx, (attempts, _, _))| {
                    *attempts == 1
                        && !self.completed_set.contains(*idx)
                        && !maps.iter().any(|m| m.idx == **idx)
                })
                .map(|(idx, (_, _, seq))| (*seq, *idx))
                .collect();
            stragglers.sort();
            for (_, idx) in stragglers {
                if maps.len() >= free_map_slots {
                    break;
                }
                let entry = self.running.get_mut(&idx).unwrap();
                entry.0 += 1;
                self.speculative_launched += 1;
                maps.push(entry.1.clone());
            }
        }
        self.maps_running += maps.len();

        let mut reduces = Vec::new();
        if self.reduce_phase_open() {
            for _ in 0..free_reduce_slots {
                match self.reduces_pending.pop_front() {
                    Some(r) => reduces.push(r),
                    None => break,
                }
            }
        }
        (maps, reduces)
    }

    fn reduce_phase_open(&self) -> bool {
        if self.total_maps == 0 {
            return true;
        }
        self.maps_completed as f64 >= self.slowstart * self.total_maps as f64
    }

    /// Should this attempt of `map_idx` fail? (Consumes the injection.)
    pub fn should_fail(&mut self, map_idx: usize) -> bool {
        if self.fail_map_once == Some(map_idx) {
            self.fail_map_once = None;
            self.map_failures += 1;
            true
        } else {
            false
        }
    }

    /// Map attempts that failed and were re-executed.
    pub fn map_failures_seen(&self) -> usize {
        self.map_failures
    }

    /// Reduce attempts that failed and were re-executed.
    pub fn reduce_failures_seen(&self) -> usize {
        self.reduce_failures
    }

    /// A map attempt finished on TaskTracker `tt_idx`. Returns `true` when
    /// this is the *first* completion of the task (its output counts);
    /// `false` for a speculative loser, whose output is discarded.
    pub fn map_completed(&mut self, map_idx: usize, tt_idx: usize) -> bool {
        if !self.completed_set.insert(map_idx) {
            // A duplicate attempt finishing after the task is already done.
            self.maps_running -= 1;
            self.speculative_wasted += 1;
            return false;
        }
        // Remaining in-flight duplicates report in later and are counted as
        // wasted then; the task itself leaves the running table now (the
        // completed_set guard keeps it out of future speculation).
        self.running.remove(&map_idx);
        self.maps_running -= 1;
        self.maps_completed += 1;
        self.events.push((map_idx, tt_idx));
        true
    }

    /// A map attempt failed; the task is re-queued (front: re-execute soon).
    pub fn map_failed(&mut self, desc: MapTaskDesc) {
        self.maps_running -= 1;
        if let Some(entry) = self.running.get_mut(&desc.idx) {
            if entry.0 > 1 {
                entry.0 -= 1;
                return; // another attempt is still running
            }
            self.running.remove(&desc.idx);
        }
        // Re-queue at the front (re-execute soon): an ever-smaller key sorts
        // before everything pending, and front-pushing the locality queues
        // keeps them ascending (every new front key is the global minimum).
        let key = self.front_key;
        self.front_key -= 1;
        for loc in &desc.locations {
            self.local.entry(*loc).or_default().push_front(key);
        }
        self.pending.insert(key, desc);
    }

    /// Should this reduce attempt fail? (Consumes the injection.)
    pub fn should_fail_reduce(&mut self, reduce_idx: usize) -> bool {
        if self.fail_reduce_once == Some(reduce_idx) {
            self.fail_reduce_once = None;
            self.reduce_failures += 1;
            true
        } else {
            false
        }
    }

    /// A reduce attempt failed; re-queue it.
    pub fn reduce_failed(&mut self, reduce_idx: usize) {
        self.reduces_pending.push_front(reduce_idx);
    }

    /// All maps completed?
    pub fn maps_done(&self) -> bool {
        self.maps_completed == self.total_maps
    }

    /// Completion events after `cursor`; returns the new cursor.
    pub fn events_since(&self, cursor: usize) -> (Vec<CompletionEvent>, usize) {
        (self.events[cursor..].to_vec(), self.events.len())
    }

    /// A reducer finished.
    pub fn reduce_completed(&mut self) {
        self.reduces_done += 1;
    }

    /// The whole job done?
    pub fn job_done(&self) -> bool {
        self.maps_done() && self.reduces_done == self.total_reduces
    }
}

#[cfg(test)]
impl JobTracker {
    /// Test helper: append a raw completion event without touching counters.
    pub(crate) fn push_event_for_test(&mut self, map_idx: usize, tt_idx: usize) {
        self.events.push((map_idx, tt_idx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_hdfs::BlockId;

    fn desc(idx: usize, loc: u32) -> MapTaskDesc {
        MapTaskDesc {
            idx,
            block: BlockMeta {
                id: BlockId(idx as u64),
                size: 100,
                replicas: vec![0],
            },
            locations: vec![NodeId(loc)],
        }
    }

    #[test]
    fn locality_preferred() {
        let mut jt = JobTracker::new(vec![desc(0, 1), desc(1, 2), desc(2, 1)], 0, 0.05, None);
        let (maps, _) = jt.heartbeat(NodeId(1), 2, 0);
        assert_eq!(maps.iter().map(|m| m.idx).collect::<Vec<_>>(), vec![0, 2]);
        // Node 3 has no local splits → takes any.
        let (maps, _) = jt.heartbeat(NodeId(3), 2, 0);
        assert_eq!(maps.iter().map(|m| m.idx).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn slowstart_gates_reducers() {
        let maps: Vec<_> = (0..10).map(|i| desc(i, 0)).collect();
        let mut jt = JobTracker::new(maps, 2, 0.5, None);
        let (m, r) = jt.heartbeat(NodeId(0), 10, 2);
        assert_eq!(m.len(), 10);
        assert!(r.is_empty(), "no reducers before slowstart");
        for i in 0..5 {
            jt.map_completed(i, 0);
        }
        let (_, r) = jt.heartbeat(NodeId(0), 0, 2);
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn events_cursor_protocol() {
        let mut jt = JobTracker::new(vec![desc(0, 0), desc(1, 0)], 1, 0.0, None);
        let _ = jt.heartbeat(NodeId(0), 2, 0);
        assert!(jt.map_completed(0, 3));
        let (ev, cur) = jt.events_since(0);
        assert_eq!(ev, vec![(0, 3)]);
        assert!(jt.map_completed(1, 4));
        let (ev, cur2) = jt.events_since(cur);
        assert_eq!(ev, vec![(1, 4)]);
        let (ev, _) = jt.events_since(cur2);
        assert!(ev.is_empty());
    }

    #[test]
    fn failed_map_is_rescheduled() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 0, 0.0, Some(0));
        let (maps, _) = jt.heartbeat(NodeId(0), 1, 0);
        assert!(jt.should_fail(0));
        assert!(!jt.should_fail(0), "only fails once");
        jt.map_failed(maps.into_iter().next().unwrap());
        let (maps, _) = jt.heartbeat(NodeId(5), 1, 0);
        assert_eq!(maps.len(), 1);
        jt.map_completed(0, 1);
        assert!(jt.maps_done());
        assert_eq!(jt.map_failures_seen(), 1);
        assert_eq!(jt.reduce_failures_seen(), 0);
    }

    #[test]
    fn speculation_duplicates_stragglers_when_queue_drains() {
        let mut jt = JobTracker::new(vec![desc(0, 0), desc(1, 0)], 0, 0.0, None);
        jt.set_speculative(true);
        let (m, _) = jt.heartbeat(NodeId(0), 2, 0);
        assert_eq!(m.len(), 2);
        // Queue empty; a second TT's free slots re-run the oldest straggler.
        let (m2, _) = jt.heartbeat(NodeId(1), 1, 0);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].idx, 0, "oldest straggler first");
        assert_eq!(jt.speculative_launched(), 1);
        // First finisher wins; the loser's completion is discarded.
        assert!(jt.map_completed(0, 1));
        assert!(!jt.map_completed(0, 0));
        assert_eq!(jt.speculative_wasted(), 1);
        assert!(jt.map_completed(1, 0));
        assert!(jt.maps_done());
        // A completed task is never speculated again.
        let (m3, _) = jt.heartbeat(NodeId(2), 4, 0);
        assert!(m3.is_empty());
    }

    #[test]
    fn speculation_disabled_by_default() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 0, 0.0, None);
        let _ = jt.heartbeat(NodeId(0), 1, 0);
        let (m, _) = jt.heartbeat(NodeId(1), 4, 0);
        assert!(m.is_empty(), "no duplicates without speculation");
    }

    #[test]
    fn failed_reduce_is_rescheduled() {
        let mut jt = JobTracker::new(vec![], 2, 0.0, None);
        jt.set_fail_reduce_once(Some(1));
        let (_, r) = jt.heartbeat(NodeId(0), 0, 2);
        assert_eq!(r, vec![0, 1]);
        assert!(jt.should_fail_reduce(1));
        assert!(!jt.should_fail_reduce(1), "fails only once");
        jt.reduce_failed(1);
        let (_, r) = jt.heartbeat(NodeId(1), 0, 2);
        assert_eq!(r, vec![1]);
        jt.reduce_completed();
        jt.reduce_completed();
        assert!(jt.job_done());
        assert_eq!(jt.reduce_failures_seen(), 1);
        assert_eq!(
            jt.map_failures_seen(),
            0,
            "reduce failure is not a map failure"
        );
    }

    #[test]
    fn job_done_requires_all_phases() {
        let mut jt = JobTracker::new(vec![desc(0, 0)], 1, 0.0, None);
        let _ = jt.heartbeat(NodeId(0), 1, 1);
        assert!(!jt.job_done());
        jt.map_completed(0, 0);
        assert!(!jt.job_done());
        jt.reduce_completed();
        assert!(jt.job_done());
    }
}
