//! The engine's view of a cluster: hosts with CPU, disks, memory, a shared
//! network, and HDFS.
//!
//! Worker nodes each run a DataNode and a TaskTracker over the *same* local
//! disks — HDFS traffic and shuffle traffic compete for the same spindles,
//! as on the paper's testbed. A dedicated master hosts the NameNode and
//! JobTracker.

use rmr_des::prelude::*;
use rmr_hdfs::{HdfsCluster, HdfsConfig};
use rmr_net::{FabricParams, Network, NodeId, Topology};
use rmr_store::{DiskParams, LocalFs};

/// Hardware description of one worker node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// CPU cores.
    pub cores: f64,
    /// Total RAM, bytes.
    pub mem: u64,
    /// Disk count (JBOD).
    pub disks: usize,
    /// Device model.
    pub disk: DiskParams,
    /// RAM granted to the OS page cache (the rest is JVM heaps and
    /// framework overhead).
    pub page_cache: u64,
}

impl NodeSpec {
    /// The paper's compute node: dual quad-core Westmere 2.67 GHz, 12 GB
    /// RAM, one 160 GB HDD (§IV-A).
    pub fn westmere_compute() -> Self {
        NodeSpec {
            cores: 8.0,
            mem: 12 << 30,
            disks: 1,
            disk: DiskParams::hdd_7200(),
            page_cache: 3 << 30,
        }
    }

    /// The paper's storage node: same CPU, 24 GB RAM, up to two 1 TB HDDs.
    pub fn westmere_storage(disks: usize) -> Self {
        NodeSpec {
            cores: 8.0,
            mem: 24 << 30,
            disks,
            disk: DiskParams::hdd_7200(),
            page_cache: 10 << 30,
        }
    }
}

/// One worker node's resources.
#[derive(Clone)]
pub struct NodeHandle {
    /// Network identity.
    pub id: NodeId,
    /// CPU: capacity = cores, each consumer capped at one core.
    pub cpu: Fluid,
    /// Node-local filesystem (shared by DataNode and TaskTracker).
    pub fs: LocalFs,
    /// Spec it was built from.
    pub spec: NodeSpec,
}

impl NodeHandle {
    /// Charges `core_seconds` of compute to this node's CPU.
    pub async fn compute(&self, core_seconds: f64) {
        if core_seconds > 0.0 {
            self.cpu.consume(core_seconds).await;
        }
    }
}

/// A full simulated cluster.
#[derive(Clone)]
pub struct Cluster {
    /// The simulation handle.
    pub sim: Sim,
    /// The interconnect.
    pub net: Network,
    /// HDFS over the workers.
    pub hdfs: HdfsCluster,
    /// Worker nodes (DataNode + TaskTracker each).
    pub workers: std::rc::Rc<Vec<NodeHandle>>,
    /// Master host (NameNode + JobTracker).
    pub master: NodeId,
}

impl Cluster {
    /// Builds a cluster of `workers` identical nodes plus a master, on the
    /// given fabric, with HDFS configured by `hdfs_cfg`, on a flat (single
    /// non-blocking switch) topology.
    pub fn build(
        sim: &Sim,
        fabric: FabricParams,
        worker_specs: &[NodeSpec],
        hdfs_cfg: HdfsConfig,
    ) -> Cluster {
        Cluster::build_with_topology(sim, fabric, Topology::flat(), worker_specs, hdfs_cfg)
    }

    /// [`Cluster::build`] with an explicit rack topology. The master sits
    /// in rack 0 (it is NodeId 0); workers fill racks contiguously.
    pub fn build_with_topology(
        sim: &Sim,
        fabric: FabricParams,
        topology: Topology,
        worker_specs: &[NodeSpec],
        hdfs_cfg: HdfsConfig,
    ) -> Cluster {
        let net = Network::with_topology(sim, fabric, topology);
        // Master first: NameNode + JobTracker (no TaskTracker/DataNode).
        let master_cpu = Fluid::with_entry_cap(sim, 8.0, 1.0);
        let master = net.add_node(Some(master_cpu));
        let hdfs = HdfsCluster::new(sim, &net, master, hdfs_cfg);
        let mut workers = Vec::with_capacity(worker_specs.len());
        for (i, spec) in worker_specs.iter().enumerate() {
            let cpu =
                Fluid::with_entry_cap(sim, spec.cores, 1.0).with_metrics_key(format!("cpu.n{i}"));
            let id = net.add_node(Some(cpu.clone()));
            let fs = LocalFs::new(
                sim,
                spec.disk.clone(),
                spec.disks,
                spec.page_cache,
                &format!("n{i}"),
            )
            .with_cpu(cpu.clone());
            hdfs.add_datanode(id, fs.clone());
            workers.push(NodeHandle {
                id,
                cpu,
                fs,
                spec: spec.clone(),
            });
        }
        Cluster {
            sim: sim.clone(),
            net,
            hdfs,
            workers: std::rc::Rc::new(workers),
            master,
        }
    }

    /// Number of worker nodes.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The worker index hosting `node`, if any. O(1): the master is added
    /// first (NodeId 0), so worker `i` always has NodeId `i + 1`.
    pub fn worker_of(&self, node: NodeId) -> Option<usize> {
        let idx = (node.0 as usize).checked_sub(1)?;
        let w = self.workers.get(idx)?;
        debug_assert_eq!(w.id, node, "workers must be dense after the master");
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_wires_hdfs_to_worker_disks() {
        let sim = Sim::new(1);
        let specs = vec![NodeSpec::westmere_compute(); 4];
        let c = Cluster::build(
            &sim,
            FabricParams::ipoib_qdr(),
            &specs,
            HdfsConfig::default(),
        );
        assert_eq!(c.worker_count(), 4);
        assert_eq!(c.hdfs.datanode_count(), 4);
        for (i, w) in c.workers.iter().enumerate() {
            assert_eq!(c.hdfs.dn_node(i), w.id);
            assert_eq!(c.worker_of(w.id), Some(i));
        }
        assert_eq!(c.worker_of(c.master), None);
    }

    #[test]
    fn specs_describe_the_testbed() {
        let compute = NodeSpec::westmere_compute();
        let storage = NodeSpec::westmere_storage(2);
        assert_eq!(compute.mem, 12 << 30);
        assert_eq!(storage.mem, 24 << 30);
        assert_eq!(storage.disks, 2);
        assert!(storage.page_cache > compute.page_cache);
    }

    #[test]
    fn compute_charges_cpu() {
        let sim = Sim::new(1);
        let c = Cluster::build(
            &sim,
            FabricParams::ib_verbs_qdr(),
            &[NodeSpec::westmere_compute()],
            HdfsConfig::default(),
        );
        let w = c.workers[0].clone();
        sim.spawn(async move {
            w.compute(2.0).await; // 2 core-seconds on 1 core cap
        })
        .detach();
        let end = sim.run();
        assert_eq!(end.as_nanos(), 2_000_000_000);
    }
}
