//! Intermediate-data pre-fetching and caching (§III-B-3) — the paper's
//! headline mechanism.
//!
//! * [`PrefetchCache`] — a bounded in-heap cache of whole map-output files
//!   on the TaskTracker. Eviction prefers low priority, then stale entries;
//!   demand-missed outputs are re-cached with elevated priority so
//!   "successive requests for this output file can be served from the
//!   cache". The cache is cluster-lifetime: entries are keyed by
//!   `(JobId, map_idx)`, so outputs of concurrent jobs compete for the same
//!   capacity and the priority logic sees cross-job pressure.
//! * [`Prefetcher`] — the `MapOutputPrefetcher`: a daemon pool that pulls
//!   (map, priority) requests from a queue and stages the file from local
//!   disk into the cache. A request is enqueued the moment a map finishes,
//!   so caching overlaps the map wave.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_des::sync::{channel, Receiver, Sender};
use rmr_obs::{Ev, Recorder};
use rmr_store::LocalFs;

use crate::runtime::JobId;

/// Cache key: which job's map output.
pub type CacheKey = (JobId, usize);

/// Caching priority; higher survives eviction longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Proactively cached after map completion.
    Prefetch = 0,
    /// Re-cached after a demand miss (§III-B-3: "cache this particular map
    /// output data with more priority").
    Demand = 1,
}

struct Entry {
    bytes: u64,
    priority: Priority,
    last_touch: u64,
}

struct CacheInner {
    capacity: u64,
    used: u64,
    entries: BTreeMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Per-job (hits, misses) so a shared cache still reports per-job
    /// effectiveness in each `JobResult`.
    by_job: BTreeMap<JobId, (u64, u64)>,
    /// Observability bus (off unless the owning TaskTracker enables it) and
    /// the node index stamped on emitted cache events.
    obs: Recorder,
    obs_node: usize,
}

/// The TaskTracker-side map-output cache.
#[derive(Clone)]
pub struct PrefetchCache {
    inner: Rc<RefCell<CacheInner>>,
}

impl PrefetchCache {
    /// Creates a cache of `capacity` bytes (0 = disabled).
    pub fn new(capacity: u64) -> Self {
        PrefetchCache {
            inner: Rc::new(RefCell::new(CacheInner {
                capacity,
                used: 0,
                entries: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                by_job: BTreeMap::new(),
                obs: Recorder::off(),
                obs_node: 0,
            })),
        }
    }

    /// Attaches the observability bus; insert/evict events are stamped with
    /// `node`. Tests constructing caches directly skip this (bus stays off).
    pub fn set_obs(&self, obs: &Recorder, node: usize) {
        let mut i = self.inner.borrow_mut();
        i.obs = obs.clone();
        i.obs_node = node;
    }

    /// Bytes resident.
    pub fn used(&self) -> u64 {
        self.inner.borrow().used
    }

    /// Configured capacity in bytes (0 = disabled).
    pub fn capacity(&self) -> u64 {
        self.inner.borrow().capacity
    }

    /// (hits, misses) of `lookup` so far, across all jobs.
    pub fn stats(&self) -> (u64, u64) {
        let i = self.inner.borrow();
        (i.hits, i.misses)
    }

    /// (hits, misses) of `lookup` attributed to `job`.
    pub fn job_stats(&self, job: JobId) -> (u64, u64) {
        self.inner
            .borrow()
            .by_job
            .get(&job)
            .copied()
            .unwrap_or((0, 0))
    }

    /// True if the keyed map output is resident (without counting a
    /// hit/miss or touching recency).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.inner.borrow().entries.contains_key(&key)
    }

    /// Serve-path lookup: touches recency and counts hit/miss.
    pub fn lookup(&self, key: CacheKey) -> bool {
        let mut i = self.inner.borrow_mut();
        i.tick += 1;
        let tick = i.tick;
        let hit = match i.entries.get_mut(&key) {
            Some(e) => {
                e.last_touch = tick;
                true
            }
            None => false,
        };
        if hit {
            i.hits += 1;
        } else {
            i.misses += 1;
        }
        let per = i.by_job.entry(key.0).or_insert((0, 0));
        if hit {
            per.0 += 1;
        } else {
            per.1 += 1;
        }
        hit
    }

    /// Would an insert of `bytes` at `priority` be admitted right now?
    /// Used by the prefetcher to avoid wasting disk reads on data the cache
    /// cannot hold (the paper's adaptive "limit the amount of data to be
    /// cached" behaviour).
    pub fn would_admit(&self, key: CacheKey, bytes: u64, priority: Priority) -> bool {
        let i = self.inner.borrow();
        if bytes > i.capacity {
            return false;
        }
        if i.entries.contains_key(&key) {
            return true;
        }
        let evictable: u64 = i
            .entries
            .values()
            .filter(|e| e.priority < priority)
            .map(|e| e.bytes)
            .sum();
        i.used + bytes <= i.capacity + evictable
    }

    /// Inserts (or re-prioritises) a map output of `bytes`. Admission is
    /// conservative to prevent thrash: an insert may evict only entries of
    /// *strictly lower* priority; if space still doesn't suffice the insert
    /// is rejected and the data keeps being served from disk. Returns
    /// whether the entry is now resident.
    pub fn insert(&self, key: CacheKey, bytes: u64, priority: Priority) -> bool {
        if !self.would_admit(key, bytes, priority) {
            return false;
        }
        let mut i = self.inner.borrow_mut();
        i.tick += 1;
        let tick = i.tick;
        if let Some(e) = i.entries.get_mut(&key) {
            e.priority = e.priority.max(priority);
            e.last_touch = tick;
            return true;
        }
        while i.used + bytes > i.capacity {
            let victim = i
                .entries
                .iter()
                .filter(|(_, e)| e.priority < priority)
                .min_by_key(|(_, e)| (e.priority, e.last_touch))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = i.entries.remove(&k).unwrap();
                    i.used -= e.bytes;
                    i.obs.emit(|| Ev::CacheEvict {
                        node: i.obs_node,
                        job: k.0 .0,
                        map_idx: k.1,
                        bytes: e.bytes,
                    });
                }
                None => return false, // would_admit guarantees this is rare
            }
        }
        i.used += bytes;
        i.entries.insert(
            key,
            Entry {
                bytes,
                priority,
                last_touch: tick,
            },
        );
        i.obs.emit(|| Ev::CacheInsert {
            node: i.obs_node,
            job: key.0 .0,
            map_idx: key.1,
            bytes,
            demand: priority == Priority::Demand,
        });
        true
    }

    /// Drops an entry (map output deleted or invalidated).
    pub fn remove(&self, key: CacheKey) {
        let mut i = self.inner.borrow_mut();
        if let Some(e) = i.entries.remove(&key) {
            i.used -= e.bytes;
        }
    }

    /// Drops every entry of `job` (job cleanup at commit). The job's
    /// hit/miss counters are kept so late stat reads stay correct; drop
    /// them separately with [`PrefetchCache::forget_job_stats`].
    pub fn remove_job(&self, job: JobId) {
        let mut i = self.inner.borrow_mut();
        let mut freed = 0;
        i.entries.retain(|(j, _), e| {
            if *j == job {
                freed += e.bytes;
                false
            } else {
                true
            }
        });
        i.used -= freed;
    }

    /// Drops every entry (node death: the cached heap dies with the JVM).
    /// Hit/miss counters survive — they describe history, not residency.
    pub fn clear(&self) {
        let mut i = self.inner.borrow_mut();
        i.entries.clear();
        i.used = 0;
    }

    /// Drops `job`'s per-job hit/miss counters (after the final stat read
    /// at job commit); without this the `by_job` map grows one entry per
    /// job ever run. Cluster-wide totals ([`PrefetchCache::stats`]) are
    /// unaffected.
    pub fn forget_job_stats(&self, job: JobId) {
        self.inner.borrow_mut().by_job.remove(&job);
    }

    /// Number of jobs with live per-job stat counters (leak test hook).
    pub fn tracked_jobs(&self) -> usize {
        self.inner.borrow().by_job.len()
    }
}

/// A prefetch request: stage this map's output file.
#[derive(Debug, Clone)]
pub struct PrefetchRequest {
    /// Which job.
    pub job: JobId,
    /// Which map.
    pub map_idx: usize,
    /// The file to stage.
    pub file: String,
    /// Its size.
    pub bytes: u64,
    /// Requested priority.
    pub priority: Priority,
}

impl PrefetchRequest {
    fn key(&self) -> CacheKey {
        (self.job, self.map_idx)
    }
}

/// Handle to a TaskTracker's `MapOutputPrefetcher` daemon pool.
#[derive(Clone)]
pub struct Prefetcher {
    tx: Sender<PrefetchRequest>,
    cache: PrefetchCache,
    queued: Rc<RefCell<std::collections::BTreeSet<CacheKey>>>,
}

/// A boxed staging-daemon body, so one spawn loop can target either the
/// global executor or a node's [`TaskGroup`].
type DaemonBody = std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>;

impl Prefetcher {
    /// Spawns `threads` staging daemons reading from `fs` into `cache`.
    pub fn spawn(sim: &Sim, fs: &LocalFs, cache: &PrefetchCache, threads: usize) -> Self {
        let sim2 = sim.clone();
        Self::spawn_with(sim, fs, cache, threads, &|name, body| {
            sim2.spawn_daemon(name, body).detach()
        })
    }

    /// Like [`Prefetcher::spawn`], but the daemons join `group` so a node
    /// kill ([`crate::runtime::Runtime::kill_node`]) aborts them with the
    /// rest of the TaskTracker.
    pub fn spawn_in(
        sim: &Sim,
        group: &TaskGroup,
        fs: &LocalFs,
        cache: &PrefetchCache,
        threads: usize,
    ) -> Self {
        Self::spawn_with(sim, fs, cache, threads, &|name, body| {
            group.spawn_daemon(name, body).detach()
        })
    }

    fn spawn_with(
        sim: &Sim,
        fs: &LocalFs,
        cache: &PrefetchCache,
        threads: usize,
        spawn: &dyn Fn(String, DaemonBody),
    ) -> Self {
        let (tx, rx): (Sender<PrefetchRequest>, Receiver<PrefetchRequest>) = channel();
        let queued: Rc<RefCell<std::collections::BTreeSet<CacheKey>>> =
            Rc::new(RefCell::new(std::collections::BTreeSet::new()));
        for i in 0..threads.max(1) {
            let rx = rx.clone();
            let fs = fs.clone();
            let cache = cache.clone();
            let sim2 = sim.clone();
            let queued = Rc::clone(&queued);
            let body = async move {
                while let Some(req) = rx.recv().await {
                    queued.borrow_mut().remove(&req.key());
                    if cache.contains(req.key()) {
                        continue;
                    }
                    // Don't burn disk bandwidth staging data the cache
                    // cannot admit anyway.
                    if !cache.would_admit(req.key(), req.bytes, req.priority) {
                        sim2.metrics().incr("prefetch.rejected");
                        continue;
                    }
                    // Stage the whole file from disk (page-cache aware).
                    if fs.exists(&req.file) {
                        let mut r = match fs.reader(&req.file) {
                            Ok(r) => r,
                            Err(_) => continue,
                        };
                        if r.read_exact(req.bytes).await.is_ok()
                            && cache.insert(req.key(), req.bytes, req.priority)
                        {
                            sim2.metrics().incr("prefetch.staged");
                        }
                    }
                }
            };
            spawn(format!("prefetch-daemon-{i}"), Box::pin(body));
        }
        Prefetcher {
            tx,
            cache: cache.clone(),
            queued,
        }
    }

    /// Enqueues a staging request (non-blocking; daemons drain the queue).
    /// Duplicate requests for an already-queued map are coalesced.
    pub fn request(&self, req: PrefetchRequest) {
        if self.cache.contains(req.key()) {
            return;
        }
        if !self.queued.borrow_mut().insert(req.key()) {
            return;
        }
        let _ = self.tx.send_now(req);
    }

    /// The cache daemons stage into.
    pub fn cache(&self) -> &PrefetchCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_des::SimDuration;
    use rmr_store::DiskParams;

    /// All single-job cache tests run under job 0.
    fn k(idx: usize) -> CacheKey {
        (JobId(0), idx)
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = PrefetchCache::new(1_000);
        assert!(!c.lookup(k(1)));
        assert!(c.insert(k(1), 100, Priority::Prefetch));
        assert!(c.lookup(k(1)));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.job_stats(JobId(0)), (1, 1));
        assert_eq!(c.job_stats(JobId(9)), (0, 0));
    }

    #[test]
    fn same_priority_insert_never_thrashes() {
        let c = PrefetchCache::new(300);
        c.insert(k(1), 100, Priority::Prefetch);
        c.insert(k(2), 100, Priority::Demand);
        c.insert(k(3), 100, Priority::Prefetch);
        // Full; a same-priority insert must be rejected (no Prefetch-vs-
        // Prefetch eviction churn).
        assert!(!c.insert(k(4), 100, Priority::Prefetch));
        assert!(c.contains(k(1)) && c.contains(k(2)) && c.contains(k(3)));
        // A Demand insert may evict the least-recent Prefetch entry.
        assert!(c.insert(k(5), 100, Priority::Demand));
        assert!(!c.contains(k(1)), "oldest Prefetch entry evicted");
        assert!(c.contains(k(2)) && c.contains(k(3)) && c.contains(k(5)));
    }

    #[test]
    fn would_admit_predicts_insert() {
        let c = PrefetchCache::new(200);
        assert!(c.would_admit(k(1), 150, Priority::Prefetch));
        c.insert(k(1), 150, Priority::Prefetch);
        assert!(!c.would_admit(k(2), 100, Priority::Prefetch));
        assert!(c.would_admit(k(2), 100, Priority::Demand));
        assert!(
            c.would_admit(k(1), 150, Priority::Prefetch),
            "resident is admitted"
        );
    }

    #[test]
    fn lower_priority_cannot_evict_higher() {
        let c = PrefetchCache::new(200);
        c.insert(k(1), 100, Priority::Demand);
        c.insert(k(2), 100, Priority::Demand);
        assert!(!c.insert(k(3), 100, Priority::Prefetch));
        assert!(c.contains(k(1)) && c.contains(k(2)));
    }

    #[test]
    fn demand_insert_evicts_prefetch() {
        let c = PrefetchCache::new(200);
        c.insert(k(1), 100, Priority::Prefetch);
        c.insert(k(2), 100, Priority::Prefetch);
        assert!(c.insert(k(3), 150, Priority::Demand));
        assert!(c.contains(k(3)));
        assert_eq!(c.used(), 150);
    }

    #[test]
    fn cross_job_demand_pressure_evicts_prefetch_entries() {
        // Two jobs share the cache: job 1's demand traffic may push out
        // job 0's prefetched (not-yet-demanded) outputs, but not its
        // demand-priority ones.
        let c = PrefetchCache::new(300);
        c.insert((JobId(0), 1), 100, Priority::Prefetch);
        c.insert((JobId(0), 2), 100, Priority::Demand);
        assert!(c.insert((JobId(1), 1), 200, Priority::Demand));
        assert!(!c.contains((JobId(0), 1)), "cross-job eviction");
        assert!(c.contains((JobId(0), 2)), "demand entry survives");
        assert!(c.contains((JobId(1), 1)));
    }

    #[test]
    fn remove_job_frees_only_that_job() {
        let c = PrefetchCache::new(1_000);
        c.insert((JobId(0), 1), 100, Priority::Prefetch);
        c.insert((JobId(1), 1), 200, Priority::Prefetch);
        c.remove_job(JobId(0));
        assert_eq!(c.used(), 200);
        assert!(!c.contains((JobId(0), 1)));
        assert!(c.contains((JobId(1), 1)));
    }

    #[test]
    fn prefetcher_coalesces_duplicate_requests() {
        use rmr_des::Sim;
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, DiskParams::ssd_sata(), 1, 0, "t");
        let cache = PrefetchCache::new(1 << 20);
        let pf = Prefetcher::spawn(&sim, &fs, &cache, 1);
        let fs2 = fs.clone();
        let pf2 = pf.clone();
        sim.spawn(async move {
            let w = fs2.writer("f").unwrap();
            w.append(1_000).await.unwrap();
            for _ in 0..10 {
                pf2.request(PrefetchRequest {
                    job: JobId(0),
                    map_idx: 0,
                    file: "f".to_string(),
                    bytes: 1_000,
                    priority: Priority::Demand,
                });
            }
        })
        .detach();
        sim.run();
        assert!(cache.contains(k(0)));
        assert_eq!(sim.metrics().get("prefetch.staged"), 1.0);
    }

    #[test]
    fn oversized_entry_rejected() {
        let c = PrefetchCache::new(100);
        assert!(!c.insert(k(1), 200, Priority::Demand));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_upgrades_priority() {
        let c = PrefetchCache::new(200);
        c.insert(k(1), 100, Priority::Prefetch);
        c.insert(k(1), 100, Priority::Demand);
        assert_eq!(c.used(), 100, "no double counting");
        // Now a Prefetch insert must not evict it.
        assert!(!c.insert(k(2), 200, Priority::Prefetch));
        assert!(c.contains(k(1)));
    }

    #[test]
    fn remove_releases_space() {
        let c = PrefetchCache::new(100);
        c.insert(k(1), 100, Priority::Demand);
        c.remove(k(1));
        assert_eq!(c.used(), 0);
        assert!(c.insert(k(2), 100, Priority::Prefetch));
    }

    #[test]
    fn prefetcher_daemon_stages_files() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, DiskParams::ssd_sata(), 1, 0, "t");
        let cache = PrefetchCache::new(1 << 20);
        let pf = Prefetcher::spawn(&sim, &fs, &cache, 2);
        let fs2 = fs.clone();
        let pf2 = pf.clone();
        sim.spawn(async move {
            let w = fs2.writer("map_0.out").unwrap();
            w.append(10_000).await.unwrap();
            pf2.request(PrefetchRequest {
                job: JobId(0),
                map_idx: 0,
                file: "map_0.out".to_string(),
                bytes: 10_000,
                priority: Priority::Prefetch,
            });
        })
        .detach();
        sim.run();
        assert!(cache.contains(k(0)));
        assert_eq!(cache.used(), 10_000);
    }

    #[test]
    fn prefetcher_charges_disk_time() {
        let sim = Sim::new(1);
        // 0 cache budget on the fs page cache → staging must hit the disk.
        let mut p = DiskParams::ssd_sata();
        p.seq_bw = 1_000.0; // 1 kB/s for visibility
        p.access_latency = SimDuration::ZERO;
        let fs = LocalFs::new(&sim, p, 1, 0, "t");
        let cache = PrefetchCache::new(1 << 20);
        let pf = Prefetcher::spawn(&sim, &fs, &cache, 1);
        let fs2 = fs.clone();
        sim.spawn(async move {
            let w = fs2.writer("f").unwrap();
            w.append(1_000).await.unwrap(); // 1 s
            pf.request(PrefetchRequest {
                job: JobId(0),
                map_idx: 7,
                file: "f".to_string(),
                bytes: 1_000,
                priority: Priority::Prefetch,
            });
        })
        .detach();
        let end = sim.run();
        // 1 s write + 1 s staging read.
        assert_eq!(end.as_nanos(), 2_000_000_000);
        assert!(cache.contains(k(7)));
    }
}
