//! The TaskTracker: task slots and the server side of all three shuffle
//! engines.
//!
//! TaskTrackers are cluster-lifetime services: one starts per worker when
//! the [`crate::runtime::Runtime`] comes up and it serves the map outputs
//! of *every* job submitted to that runtime, so all serving state is keyed
//! by [`JobId`].
//!
//! * Vanilla: an HTTP servlet pool (`tasktracker.http.threads`) streams whole
//!   partitions over socket connections, reading from local disk through the
//!   OS page cache.
//! * Hadoop-A: verbs endpoints; each request pulls a fixed kv-count packet
//!   that the DataEngine reads from disk — no cache of its own (§III-C-1).
//! * OSU-IB: the paper's `RDMAListener` accepts UCR endpoints, an
//!   `RDMAReceiver` per endpoint enqueues requests into the
//!   `DataRequestQueue`, and a pool of light-weight `RDMAResponder`s serves
//!   them — from the `PrefetchCache` on a hit, straight from disk on a miss
//!   (then re-caching at demand priority).
//!
//! Which flavour of server runs (and whether the cache is live) is decided
//! by the [`crate::engine::ShuffleEngine`] the runtime was built with.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_net::{listen, ucr_listen, EndPoint, ListenerHandle, Network, UcrConnector};
use rmr_obs::{Ev, Recorder};
use rmr_store::FileReader;

use crate::cluster::NodeHandle;
use crate::config::JobConf;
use crate::faults::NodeLiveness;
use crate::mapoutput::MapOutputStore;
use crate::prefetch::{PrefetchCache, PrefetchRequest, Prefetcher, Priority};
use crate::proto::{PacketBudget, ShufMsg};
use crate::record::{Segment, SegmentCursor};
use crate::runtime::JobId;

/// Server address of one TaskTracker's shuffle service.
#[derive(Clone)]
pub enum TtServerHandle {
    /// Vanilla: HTTP over sockets.
    Http(ListenerHandle<ShufMsg>),
    /// Hadoop-A and OSU-IB: UCR endpoints over verbs.
    Rdma(UcrConnector<ShufMsg>),
}

/// Serve cursors keyed by (job, map, reduce), each tagged with the reduce
/// attempt it serves.
type ServeCursors = BTreeMap<(JobId, usize, usize), (u32, SegmentCursor)>;

/// One TaskTracker.
pub struct TaskTracker {
    /// Worker index.
    pub idx: usize,
    /// The host's resources.
    pub node: NodeHandle,
    /// Cluster-wide configuration (`tasktracker.*` keys: slots, server
    /// pools, cache sizing).
    pub conf: Rc<JobConf>,
    /// Global map-output registry (this TT serves only its own entries).
    pub outputs: MapOutputStore,
    /// The PrefetchCache (OSU-IB), shared by every job on the runtime.
    pub cache: PrefetchCache,
    /// The MapOutputPrefetcher daemon pool. In a `RefCell` because a node
    /// restart replaces the pool (the old daemons died with the group).
    pub prefetcher: RefCell<Prefetcher>,
    /// Map slots (shared by all concurrent jobs).
    pub map_slots: Semaphore,
    /// Reduce slots (shared by all concurrent jobs).
    pub reduce_slots: Semaphore,
    /// Every task running *on* this node — the heartbeat daemon, shuffle
    /// servers, prefetcher pool, and task attempts — joins this group, so
    /// `kill_node` is one `abort()`.
    pub group: TaskGroup,
    /// Out-of-band failure signal (RDMA reducers select on it; verbs CQs
    /// never close on peer death).
    pub liveness: Rc<NodeLiveness>,
    sim: Sim,
    /// Observability bus handle (off by default; near-zero cost when off).
    obs: Recorder,
    /// Whether the serve path consults the PrefetchCache (engine decides).
    cache_enabled: bool,
    /// Per-(job, map, reduce) serve cursors, tagged with the reduce attempt
    /// they serve. A newer attempt rewinds the cursor (the retried reducer
    /// re-fetches from the head); an older attempt's request is stale.
    cursors: RefCell<ServeCursors>,
    /// Per-(job, map, reduce) sequential disk readers.
    readers: RefCell<BTreeMap<(JobId, usize, usize), FileReader>>,
    /// How many reduce partitions of each map have been fully served; at
    /// the map's partition count the cached copy is released (its useful
    /// life is over).
    served_parts: RefCell<BTreeMap<(JobId, usize), usize>>,
}

impl TaskTracker {
    /// Creates a TaskTracker on `node`. `cache_enabled` turns the serve
    /// path's PrefetchCache on (the engine's `server_cache()` ANDed with
    /// `mapred.local.caching.enabled`).
    pub fn new(
        sim: &Sim,
        idx: usize,
        node: NodeHandle,
        conf: Rc<JobConf>,
        outputs: MapOutputStore,
        cache_enabled: bool,
        obs: Recorder,
    ) -> Rc<Self> {
        let cache_bytes = if cache_enabled {
            conf.prefetch_cache_bytes
        } else {
            0
        };
        let cache = PrefetchCache::new(cache_bytes);
        cache.set_obs(&obs, idx);
        let group = sim.group();
        let prefetcher =
            Prefetcher::spawn_in(sim, &group, &node.fs, &cache, conf.prefetcher_threads);
        Rc::new(TaskTracker {
            idx,
            map_slots: Semaphore::new(conf.map_slots as u64),
            reduce_slots: Semaphore::new(conf.reduce_slots as u64),
            node,
            conf,
            outputs,
            cache,
            prefetcher: RefCell::new(prefetcher),
            group,
            liveness: NodeLiveness::new(idx),
            sim: sim.clone(),
            obs,
            cache_enabled,
            cursors: RefCell::new(BTreeMap::new()),
            readers: RefCell::new(BTreeMap::new()),
            served_parts: RefCell::new(BTreeMap::new()),
        })
    }

    /// The observability bus handle this TaskTracker (and code running on
    /// it, e.g. reduce attempts) emits to.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Open serving-side state: `(segment cursors, disk readers)` — exposed
    /// for `Runtime::dump()` snapshots.
    pub fn serve_state_counts(&self) -> (usize, usize) {
        (self.cursors.borrow().len(), self.readers.borrow().len())
    }

    /// Called when a map completes on this TT: kicks the prefetcher
    /// (§III-B-3: "caches intermediate map output as soon as it gets
    /// available").
    pub fn on_map_output(&self, job: JobId, map_idx: usize) {
        if self.cache_enabled {
            if let Some(info) = self.outputs.get(job, map_idx) {
                self.prefetcher.borrow().request(PrefetchRequest {
                    job,
                    map_idx,
                    file: info.file.clone(),
                    bytes: info.total_bytes,
                    priority: Priority::Prefetch,
                });
            }
        }
    }

    /// Serves one shuffle request, charging disk/cache/CPU, and returns the
    /// response message.
    pub async fn serve(
        &self,
        job: JobId,
        map_idx: usize,
        reduce: usize,
        attempt: u32,
        budget: PacketBudget,
    ) -> ShufMsg {
        let serve_t0_ns = self.obs.now_ns();
        let info = self
            .outputs
            .get(job, map_idx)
            .expect("request for unknown map output");
        debug_assert_eq!(info.tt_idx, self.idx, "request routed to wrong TT");
        let key = (job, map_idx, reduce);
        let total = info.parts[reduce].clone();
        let (total_records, total_bytes) = (total.records, total.bytes);
        let mut rewound = false;
        let (packet, remaining_records) = {
            let mut cursors = self.cursors.borrow_mut();
            let ent = cursors
                .entry(key)
                .or_insert_with(|| (attempt, SegmentCursor::new(total.clone())));
            if attempt > ent.0 {
                // A newer reduce attempt re-fetches from the segment head:
                // rewind the cursor the dead attempt advanced. If the old
                // attempt had fully drained the partition, undo its
                // served_parts credit so the cache release stays accurate.
                if ent.1.remaining_records() == 0 && total.records > 0 {
                    let mut served = self.served_parts.borrow_mut();
                    if let Some(e) = served.get_mut(&(job, map_idx)) {
                        *e = e.saturating_sub(1);
                    }
                }
                *ent = (attempt, SegmentCursor::new(total.clone()));
                rewound = true;
            } else if attempt < ent.0 {
                // Stale request from a superseded (dead) attempt: answer
                // empty-and-complete without touching the live cursor.
                return ShufMsg::Response {
                    map_idx,
                    reduce,
                    packet: Segment::synthetic(0, 0),
                    remaining_records: 0,
                    total_records,
                    total_bytes,
                    from_cache: false,
                };
            }
            let packet = match budget {
                PacketBudget::Bytes(b) => ent.1.take_bytes(b),
                PacketBudget::Records(n) => ent.1.take_records(n),
                PacketBudget::Full => ent.1.take_bytes(u64::MAX),
            };
            let remaining = ent.1.remaining_records();
            (packet, remaining)
        };
        if rewound {
            // The old attempt's sequential reader is mid-file; restart it.
            self.readers.borrow_mut().remove(&key);
        }
        if remaining_records == 0 && packet.records > 0 {
            // This partition is fully shipped; once every reducer has
            // drained its partition the cached file has no future readers.
            let done = {
                let mut served = self.served_parts.borrow_mut();
                let e = served.entry((job, map_idx)).or_insert(0);
                *e += 1;
                *e >= info.parts.len()
            };
            if done {
                self.cache.remove((job, map_idx));
                self.readers
                    .borrow_mut()
                    .retain(|(j, m, _), _| (*j, *m) != (job, map_idx));
            }
        }

        // Where do the bytes come from?
        let mut from_cache = false;
        if packet.bytes > 0 {
            if self.cache_enabled && self.cache.lookup((job, map_idx)) {
                from_cache = true;
                self.sim
                    .metrics()
                    .add("tt.cache_hit_bytes", packet.bytes as f64);
                self.obs.emit(|| Ev::CacheHit {
                    node: self.idx,
                    job: job.0,
                    map_idx,
                    bytes: packet.bytes,
                });
            } else {
                if self.cache_enabled {
                    self.obs.emit(|| Ev::CacheMiss {
                        node: self.idx,
                        job: job.0,
                        map_idx,
                        bytes: packet.bytes,
                    });
                }
                // Read from disk (through the page cache) with a sequential
                // per-(job, map, reduce) stream. The reader is moved out for
                // the await (the RefCell must not stay borrowed across it).
                let taken = self.readers.borrow_mut().remove(&key);
                let mut reader = taken
                    .unwrap_or_else(|| self.node.fs.reader(&info.file).expect("map output file"));
                reader
                    .read_exact(packet.bytes)
                    .await
                    .expect("map output shorter than index");
                self.readers.borrow_mut().insert(key, reader);
                self.sim
                    .metrics()
                    .add("tt.disk_serve_bytes", packet.bytes as f64);
                if self.cache_enabled {
                    // Demand miss: stage the whole file at high priority so
                    // successive requests hit (§III-B-3).
                    self.prefetcher.borrow().request(PrefetchRequest {
                        job,
                        map_idx,
                        file: info.file.clone(),
                        bytes: info.total_bytes,
                        priority: Priority::Demand,
                    });
                }
            }
            // Response staging cost (building the packet buffers).
            self.node
                .compute(self.conf.costs.serde_per_byte * packet.bytes as f64)
                .await;
        }

        self.obs.emit(|| Ev::ShuffleResponse {
            node: self.idx,
            job: job.0,
            map_idx,
            reduce,
            bytes: packet.bytes,
            records: packet.records,
            from_cache,
            serve_ns: self
                .obs
                .now_ns()
                .unwrap_or(0)
                .saturating_sub(serve_t0_ns.unwrap_or(0)),
        });

        ShufMsg::Response {
            map_idx,
            reduce,
            packet,
            remaining_records,
            total_records,
            total_bytes,
            from_cache,
        }
    }

    /// Resets serve state for a map output (failed-map invalidation).
    pub fn invalidate(&self, job: JobId, map_idx: usize) {
        self.cursors
            .borrow_mut()
            .retain(|(j, m, _), _| (*j, *m) != (job, map_idx));
        self.readers
            .borrow_mut()
            .retain(|(j, m, _), _| (*j, *m) != (job, map_idx));
        self.cache.remove((job, map_idx));
    }

    /// Drops all serve state of a finished job (commit-time cleanup).
    pub fn cleanup_job(&self, job: JobId) {
        self.cursors.borrow_mut().retain(|(j, _, _), _| *j != job);
        self.readers.borrow_mut().retain(|(j, _, _), _| *j != job);
        self.served_parts.borrow_mut().retain(|(j, _), _| *j != job);
        self.cache.remove_job(job);
    }

    /// Drops *all* serving state and the whole PrefetchCache — node death.
    /// The in-heap state dies with the process; per-job hit/miss counters
    /// survive because `JobResult` reads them at commit.
    pub fn clear_serve_state(&self) {
        self.cursors.borrow_mut().clear();
        self.readers.borrow_mut().clear();
        self.served_parts.borrow_mut().clear();
        self.cache.clear();
    }

    /// Spawns a fresh prefetcher pool into the (restarted) node's group.
    /// The old pool's daemons were aborted with the previous incarnation.
    pub fn respawn_prefetcher(&self) {
        *self.prefetcher.borrow_mut() = Prefetcher::spawn_in(
            &self.sim,
            &self.group,
            &self.node.fs,
            &self.cache,
            self.conf.prefetcher_threads,
        );
    }
}

/// Vanilla: HTTP servlets. Each accepted connection is handled by a task;
/// concurrency is bounded by the servlet thread pool. A `Full` request
/// streams the whole partition in `stream_chunk` pieces, reading each piece
/// from disk before sending it.
pub(crate) fn start_http_server(tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
    let listener = listen::<ShufMsg>(net, tt.node.id);
    let handle = listener.handle();
    let tt_id = tt.node.id.0;
    let servlets = Semaphore::new_named(
        &format!("tt{tt_id}-http-servlets"),
        tt.conf.http_threads as u64,
    );
    let tt = Rc::clone(tt);
    let group = tt.group.clone();
    group
        .clone()
        .spawn_daemon(format!("tt{tt_id}-http-listener"), async move {
            while let Some(conn) = listener.accept().await {
                let tt = Rc::clone(&tt);
                let servlets = servlets.clone();
                group
                    .spawn_daemon(format!("tt{tt_id}-http-conn"), async move {
                        while let Some(msg) = conn.recv().await {
                            let ShufMsg::Request {
                                job,
                                map_idx,
                                reduce,
                                attempt,
                                ..
                            } = msg
                            else {
                                continue;
                            };
                            let _permit = servlets.acquire(1).await;
                            // Stream the partition in chunks: read, then send.
                            loop {
                                let resp = tt
                                    .serve(
                                        job,
                                        map_idx,
                                        reduce,
                                        attempt,
                                        PacketBudget::Bytes(tt.conf.stream_chunk),
                                    )
                                    .await;
                                let last = matches!(
                                    &resp,
                                    ShufMsg::Response {
                                        remaining_records: 0,
                                        ..
                                    }
                                );
                                if conn.send(resp).await.is_err() {
                                    return; // reducer hung up
                                }
                                if last {
                                    break;
                                }
                            }
                        }
                    })
                    .detach();
            }
        })
        .detach();
    TtServerHandle::Http(handle)
}

/// Hadoop-A and OSU-IB: `RDMAListener` + per-endpoint `RDMAReceiver`s +
/// `DataRequestQueue` + `RDMAResponder` pool (§III-B-1).
pub(crate) fn start_rdma_server(tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
    start_rdma_server_with(tt, net, false)
}

/// [`start_rdma_server`] with optional RDMAbox-style request batching: a
/// responder that pops a request also drains the queue and coalesces every
/// queued request from the same reduce attempt into one serve turn (one
/// doorbell), served back-to-back in map order. Off (`false`) for the seed
/// engines so their replays are untouched.
pub(crate) fn start_rdma_server_with(
    tt: &Rc<TaskTracker>,
    net: &Network,
    batch_requests: bool,
) -> TtServerHandle {
    let listener = ucr_listen::<ShufMsg>(net, tt.node.id);
    let connector = listener.connector();
    let tt_id = tt.node.id.0;

    // DataRequestQueue: (endpoint, job, map, reduce, attempt, budget).
    type Queued = (
        Rc<EndPoint<ShufMsg>>,
        JobId,
        usize,
        usize,
        u32,
        PacketBudget,
    );
    let (req_tx, req_rx) = channel_named::<Queued>(&format!("tt{tt_id}-data-request-queue"));

    // RDMAResponder pool.
    for i in 0..tt.conf.responder_threads.max(1) {
        let rx = req_rx.clone();
        let requeue = req_tx.clone();
        let tt = Rc::clone(tt);
        tt.group
            .clone()
            .spawn_daemon(format!("tt{tt_id}-rdma-responder-{i}"), async move {
                while let Some(head) = rx.recv().await {
                    let mut batch = vec![head];
                    if batch_requests {
                        // Drain once (no re-draining our own re-queues),
                        // keep same-attempt requests, put the rest back.
                        let mut rest = Vec::new();
                        while let Some(q) = rx.try_recv() {
                            let same = Rc::ptr_eq(&q.0, &batch[0].0)
                                && q.1 == batch[0].1
                                && q.3 == batch[0].3
                                && q.4 == batch[0].4;
                            if same {
                                batch.push(q);
                            } else {
                                rest.push(q);
                            }
                        }
                        for q in rest {
                            let _ = requeue.send_now(q);
                        }
                        if batch.len() > 1 {
                            batch.sort_by_key(|q| q.2);
                            let merged = batch.len();
                            tt.obs.emit(|| Ev::BatchMerge {
                                node: tt.idx,
                                merged,
                            });
                        }
                    }
                    for (ep, job, map_idx, reduce, attempt, budget) in batch {
                        let resp = tt.serve(job, map_idx, reduce, attempt, budget).await;
                        ep.send(resp).await;
                    }
                }
            })
            .detach();
    }

    // RDMAListener + RDMAReceivers.
    let group = tt.group.clone();
    let group2 = group.clone();
    group
        .spawn_daemon(format!("tt{tt_id}-rdma-listener"), async move {
            while let Some(ep) = listener.accept().await {
                let ep = Rc::new(ep);
                let req_tx = req_tx.clone();
                group2
                    .spawn_daemon(format!("tt{tt_id}-rdma-receiver"), async move {
                        while let Some(msg) = ep.recv().await {
                            if let ShufMsg::Request {
                                job,
                                map_idx,
                                reduce,
                                attempt,
                                budget,
                            } = msg
                            {
                                let _ = req_tx.send_now((
                                    Rc::clone(&ep),
                                    job,
                                    map_idx,
                                    reduce,
                                    attempt,
                                    budget,
                                ));
                            }
                        }
                    })
                    .detach();
            }
        })
        .detach();
    TtServerHandle::Rdma(connector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, NodeSpec};
    use crate::config::ShuffleKind;
    use crate::mapoutput::MapOutputInfo;
    use crate::record::Segment;
    use rmr_hdfs::HdfsConfig;
    use rmr_net::FabricParams;

    const J: JobId = JobId(0);

    fn setup(kind: ShuffleKind, caching: bool) -> (Sim, Cluster, Rc<TaskTracker>, TtServerHandle) {
        let sim = Sim::new(7);
        let cluster = Cluster::build(
            &sim,
            if kind.uses_rdma() {
                FabricParams::ib_verbs_qdr()
            } else {
                FabricParams::ipoib_qdr()
            },
            &[NodeSpec::westmere_compute(), NodeSpec::westmere_compute()],
            HdfsConfig::default(),
        );
        let conf = Rc::new(JobConf {
            shuffle: kind,
            caching_enabled: caching,
            ..JobConf::default()
        });
        let engine = kind.engine();
        let outputs = MapOutputStore::new();
        let tt = TaskTracker::new(
            &sim,
            0,
            cluster.workers[0].clone(),
            conf,
            outputs.clone(),
            engine.server_cache() && caching,
            Recorder::off(),
        );
        let server = engine.start_server(&tt, &cluster.net);
        (sim, cluster, tt, server)
    }

    fn register_output(sim: &Sim, tt: &Rc<TaskTracker>, map_idx: usize, part_bytes: u64) {
        // Write the file so disk reads have something to charge.
        let fs = tt.node.fs.clone();
        let file = format!("j0_map_{map_idx}.out");
        let bytes_total = part_bytes * 2; // two partitions
        let f2 = file.clone();
        let fs2 = fs.clone();
        sim.spawn(async move {
            let w = fs2.writer(&f2).unwrap();
            w.append(bytes_total).await.unwrap();
        })
        .detach();
        sim.run(); // flush the write
        tt.outputs.insert(MapOutputInfo {
            job: J,
            map_idx,
            tt_idx: 0,
            node: tt.node.id,
            file,
            total_bytes: bytes_total,
            total_records: bytes_total / 100,
            parts: vec![
                Segment::synthetic(part_bytes / 100, part_bytes),
                Segment::synthetic(part_bytes / 100, part_bytes),
            ],
        });
    }

    #[test]
    fn http_server_streams_full_partition() {
        let (sim, cluster, tt, server) = setup(ShuffleKind::Vanilla, false);
        register_output(&sim, &tt, 0, 4 << 20);
        let TtServerHandle::Http(handle) = server else {
            panic!("expected http")
        };
        let client_node = cluster.workers[1].id;
        let got = Rc::new(std::cell::Cell::new((0u64, 0u64)));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            let conn = handle.connect(client_node).await;
            conn.send(ShufMsg::Request {
                job: J,
                map_idx: 0,
                reduce: 1,
                attempt: 0,
                budget: PacketBudget::Full,
            })
            .await
            .unwrap();
            let mut bytes = 0;
            let mut recs = 0;
            loop {
                let Some(ShufMsg::Response {
                    packet,
                    remaining_records,
                    ..
                }) = conn.recv().await
                else {
                    panic!("conn closed early")
                };
                bytes += packet.bytes;
                recs += packet.records;
                if remaining_records == 0 {
                    break;
                }
            }
            got2.set((recs, bytes));
        })
        .detach();
        sim.run();
        assert_eq!(got.get(), ((4 << 20) / 100, 4 << 20));
    }

    #[test]
    fn rdma_server_serves_fixed_count_packets() {
        let (sim, cluster, tt, server) = setup(ShuffleKind::HadoopA, false);
        register_output(&sim, &tt, 3, 1 << 20);
        let TtServerHandle::Rdma(connector) = server else {
            panic!("expected rdma")
        };
        let client_node = cluster.workers[1].id;
        let got = Rc::new(std::cell::Cell::new(0u64));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            let ep = connector.connect(client_node).await;
            ep.send(ShufMsg::Request {
                job: J,
                map_idx: 3,
                reduce: 0,
                attempt: 0,
                budget: PacketBudget::Records(1000),
            })
            .await;
            let Some(ShufMsg::Response { packet, .. }) = ep.recv().await else {
                panic!("no response")
            };
            got2.set(packet.records);
        })
        .detach();
        sim.run();
        assert_eq!(got.get(), 1000);
    }

    #[test]
    fn osu_cache_hits_after_prefetch() {
        let (sim, cluster, tt, server) = setup(ShuffleKind::OsuIb, true);
        register_output(&sim, &tt, 0, 1 << 20);
        tt.on_map_output(J, 0); // trigger prefetch
        sim.run(); // let the prefetcher stage the file
        assert!(tt.cache.contains((J, 0)), "prefetcher staged the output");
        let TtServerHandle::Rdma(connector) = server else {
            panic!("expected rdma")
        };
        let client_node = cluster.workers[1].id;
        let hit = Rc::new(std::cell::Cell::new(false));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            let ep = connector.connect(client_node).await;
            ep.send(ShufMsg::Request {
                job: J,
                map_idx: 0,
                reduce: 0,
                attempt: 0,
                budget: PacketBudget::Bytes(256 << 10),
            })
            .await;
            let Some(ShufMsg::Response { from_cache, .. }) = ep.recv().await else {
                panic!("no response")
            };
            hit2.set(from_cache);
        })
        .detach();
        sim.run();
        assert!(hit.get(), "served from PrefetchCache");
    }

    #[test]
    fn osu_miss_reads_disk_and_recaches() {
        let (sim, cluster, tt, server) = setup(ShuffleKind::OsuIb, true);
        register_output(&sim, &tt, 0, 1 << 20);
        // No on_map_output: cache cold.
        let TtServerHandle::Rdma(connector) = server else {
            panic!("expected rdma")
        };
        let client_node = cluster.workers[1].id;
        let first_hit = Rc::new(std::cell::Cell::new(true));
        let fh = Rc::clone(&first_hit);
        sim.spawn(async move {
            let ep = connector.connect(client_node).await;
            ep.send(ShufMsg::Request {
                job: J,
                map_idx: 0,
                reduce: 0,
                attempt: 0,
                budget: PacketBudget::Bytes(64 << 10),
            })
            .await;
            let Some(ShufMsg::Response { from_cache, .. }) = ep.recv().await else {
                panic!()
            };
            fh.set(from_cache);
        })
        .detach();
        sim.run();
        assert!(!first_hit.get(), "cold cache misses");
        // The demand request staged the file for future hits.
        assert!(tt.cache.contains((J, 0)), "demand miss re-cached");
    }
}
