//! Node-failure machinery: per-node liveness signals and deterministic
//! fault plans.
//!
//! The paper's design treats fault tolerance as future work (§V); this
//! module supplies the cluster-side scaffolding for exploring it under
//! simulation. A [`NodeLiveness`] is the out-of-band failure detector the
//! RDMA reduce path needs (verbs completion queues never close on peer
//! death — connection management, not the data path, notices a dead peer),
//! and a [`FaultPlan`] is a declarative, seed-derivable schedule of crashes,
//! restarts, and network-fault windows that `Runtime::apply_fault_plan`
//! arms before jobs are submitted.
//!
//! Determinism contract: an **empty** plan injects nothing and performs no
//! simulation operations at all, so fault-free runs are bit-identical to
//! builds that predate this module.

use std::cell::Cell;
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_des::{SimDuration, SimTime};

/// Shared liveness state of one TaskTracker node.
///
/// `alive` flips false at kill and true at restart; `epoch` counts restarts
/// (an endpoint established under epoch `e` is dead once `epoch() != e`,
/// even if the node is up again). `changed` fires on every transition so
/// reducers select against it instead of polling.
pub struct NodeLiveness {
    alive: Cell<bool>,
    epoch: Cell<u64>,
    /// Notified on every kill/restart transition.
    pub changed: Notify,
}

impl NodeLiveness {
    /// A live node at epoch 0. `tt_idx` names the notify for deadlock
    /// reports.
    pub fn new(tt_idx: usize) -> Rc<Self> {
        Rc::new(NodeLiveness {
            alive: Cell::new(true),
            epoch: Cell::new(0),
            changed: Notify::new_named(&format!("tt{tt_idx}-liveness")),
        })
    }

    /// Is the node up?
    pub fn alive(&self) -> bool {
        self.alive.get()
    }

    /// Restart count (0 = never killed).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Marks the node dead. Returns false if it already was (idempotent).
    pub fn kill(&self) -> bool {
        if !self.alive.get() {
            return false;
        }
        self.alive.set(false);
        self.changed.notify_all();
        true
    }

    /// Marks the node live again under a new epoch; returns that epoch.
    pub fn restart(&self) -> u64 {
        debug_assert!(!self.alive.get(), "restart of a live node");
        self.alive.set(true);
        self.epoch.set(self.epoch.get() + 1);
        self.changed.notify_all();
        self.epoch.get()
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Kill TaskTracker `tt_idx` at `at`; bring it back `restart_after`
    /// later (never, if `None`).
    Crash {
        /// Worker index.
        tt_idx: usize,
        /// Virtual kill time.
        at: SimTime,
        /// Delay until restart (`None` = stays down).
        restart_after: Option<SimDuration>,
    },
    /// Scale `tt_idx`'s wire bandwidth by `factor` (0 < factor ≤ 1) during
    /// the window — a flapping link or straggling NIC.
    Degrade {
        /// Worker index.
        tt_idx: usize,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
        /// Bandwidth multiplier in (0, 1].
        factor: f64,
    },
    /// Fully partition `tt_idx` from the fabric during the window.
    Partition {
        /// Worker index.
        tt_idx: usize,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// The `map_idx`-th map task of the `job_ord`-th submitted job fails
    /// its first attempt at 50% progress (the old `fail_map_once` knob).
    FailMapOnce {
        /// Submission ordinal (0 = first job submitted to the runtime).
        job_ord: u32,
        /// Map task index.
        map_idx: usize,
    },
    /// The `reduce_idx`-th reduce task of the `job_ord`-th submitted job
    /// fails its first attempt before shuffling (`fail_reduce_once`).
    FailReduceOnce {
        /// Submission ordinal.
        job_ord: u32,
        /// Reduce task index.
        reduce_idx: usize,
    },
}

/// A declarative schedule of faults, armed once per runtime via
/// `Runtime::apply_fault_plan`. Plans are plain data: derive them from a
/// seed, print them, replay them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// No faults at all?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The old `JobConf::fail_map_once` knob as a degenerate plan.
    pub fn fail_map_once(job_ord: u32, map_idx: usize) -> Self {
        FaultPlan {
            events: vec![FaultEvent::FailMapOnce { job_ord, map_idx }],
        }
    }

    /// The old `JobConf::fail_reduce_once` knob as a degenerate plan.
    pub fn fail_reduce_once(job_ord: u32, reduce_idx: usize) -> Self {
        FaultPlan {
            events: vec![FaultEvent::FailReduceOnce {
                job_ord,
                reduce_idx,
            }],
        }
    }

    /// Appends an event (builder style).
    pub fn with(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Number of crash events.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Crash { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_transitions_and_epochs() {
        let l = NodeLiveness::new(3);
        assert!(l.alive());
        assert_eq!(l.epoch(), 0);
        assert!(l.kill());
        assert!(!l.kill(), "second kill is a no-op");
        assert!(!l.alive());
        assert_eq!(l.restart(), 1);
        assert!(l.alive());
        assert!(l.kill());
        assert_eq!(l.restart(), 2);
    }

    #[test]
    fn liveness_notifies_waiters_on_transition() {
        let sim = Sim::new(1);
        let l = NodeLiveness::new(0);
        let l2 = Rc::clone(&l);
        let seen = Rc::new(Cell::new(false));
        let seen2 = Rc::clone(&seen);
        sim.spawn(async move {
            let w = l2.changed.notified();
            w.await;
            seen2.set(!l2.alive());
        })
        .detach();
        let l3 = Rc::clone(&l);
        sim.spawn(async move {
            l3.kill();
        })
        .detach();
        sim.run();
        assert!(seen.get(), "waiter woke and saw the node dead");
    }

    #[test]
    fn degenerate_plans_carry_one_event() {
        let p = FaultPlan::fail_map_once(0, 7);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.crashes(), 0);
        assert!(FaultPlan::none().is_empty());
        let p = FaultPlan::none().with(FaultEvent::Crash {
            tt_idx: 1,
            at: SimTime::ZERO,
            restart_after: None,
        });
        assert_eq!(p.crashes(), 1);
    }
}
