//! The [`ShuffleEngine`] trait: one object per shuffle design, carrying both
//! halves of the data plane.
//!
//! * the **server side** (`start_server`): what listens on every TaskTracker
//!   when the cluster runtime comes up, and whether the serve path keeps a
//!   PrefetchCache;
//! * the **reduce side** (`run_reduce`): the copier/merge pipeline a
//!   ReduceTask runs.
//!
//! The runtime dispatches through this trait only — no code outside
//! [`crate::config`]'s construction factory branches on
//! [`ShuffleKind`] — so a new design plugs in by implementing the trait and
//! extending the factory.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use rmr_net::Network;

use crate::config::ShuffleKind;
use crate::reduce::common::{ReduceCtx, ReduceError, ReduceStats};
use crate::reduce::rdma::{run_reduce_rdma, RdmaVariant};
use crate::reduce::vanilla::run_reduce_vanilla;
use crate::tasktracker::{start_http_server, start_rdma_server, TaskTracker, TtServerHandle};

/// A boxed single-threaded future (the DES executor is `!Send` throughout).
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// One shuffle design: the server the TaskTrackers run for it and the
/// reduce-side pipeline that pulls from those servers.
pub trait ShuffleEngine {
    /// The kind this engine implements (for labels and conf validation).
    fn kind(&self) -> ShuffleKind;

    /// Whether the TaskTracker serve path should keep a PrefetchCache.
    /// ANDed with `mapred.local.caching.enabled` at runtime start.
    fn server_cache(&self) -> bool {
        false
    }

    /// Starts this engine's shuffle server on one TaskTracker and returns
    /// its address.
    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle;

    /// Runs one ReduceTask's shuffle/merge/reduce pipeline. `Err` means a
    /// shuffle source died under the attempt; the runtime re-queues it.
    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>>;
}

/// Stock Hadoop 0.20: HTTP servlets + copier pool + two-level disk merge.
pub struct VanillaEngine;

impl ShuffleEngine for VanillaEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::Vanilla
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_http_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_vanilla(ctx))
    }
}

/// Hadoop-A (SC'11): verbs transport, fixed kv-count packets, header-first
/// levitated merge, refetch on buffer overflow.
pub struct HadoopAEngine;

impl ShuffleEngine for HadoopAEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::HadoopA
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_rdma_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::hadoop_a()))
    }
}

/// OSU-IB (the paper): UCR RDMA, byte-budgeted packets, server-side
/// PrefetchCache, eager overlap, local spill on overflow.
pub struct OsuIbEngine;

impl ShuffleEngine for OsuIbEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::OsuIb
    }

    fn server_cache(&self) -> bool {
        true
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_rdma_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::osu_ib()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_round_trips_kinds() {
        for kind in [
            ShuffleKind::Vanilla,
            ShuffleKind::HadoopA,
            ShuffleKind::OsuIb,
        ] {
            assert_eq!(kind.engine().kind(), kind);
        }
    }

    #[test]
    fn only_osu_ib_caches_on_the_server() {
        assert!(!ShuffleKind::Vanilla.engine().server_cache());
        assert!(!ShuffleKind::HadoopA.engine().server_cache());
        assert!(ShuffleKind::OsuIb.engine().server_cache());
    }
}
