//! The [`ShuffleEngine`] trait: one object per shuffle design, carrying both
//! halves of the data plane.
//!
//! * the **server side** (`start_server`): what listens on every TaskTracker
//!   when the cluster runtime comes up, and whether the serve path keeps a
//!   PrefetchCache;
//! * the **reduce side** (`run_reduce`): the copier/merge pipeline a
//!   ReduceTask runs.
//!
//! The runtime dispatches through this trait only — no code outside
//! [`crate::config`]'s construction factory branches on
//! [`ShuffleKind`] — so a new design plugs in by implementing the trait and
//! extending the factory.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use rmr_net::Network;
use rmr_obs::Recorder;

use crate::cluster::Cluster;
use crate::config::{JobConf, ShuffleKind};
use crate::mapoutput::MapOutputInfo;
use crate::reduce::common::{ReduceCtx, ReduceError, ReduceStats};
use crate::reduce::rdma::{run_reduce_rdma, RdmaVariant};
use crate::reduce::vanilla::run_reduce_vanilla;
use crate::runtime::JobId;
use crate::spec::JobSpec;
use crate::tasktracker::{
    start_http_server, start_rdma_server, start_rdma_server_with, TaskTracker, TtServerHandle,
};

/// A boxed single-threaded future (the DES executor is `!Send` throughout).
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// What a map attempt's output hands the engine's staging hook.
pub struct StageCtx {
    /// The cluster (node handles for staging CPU/disk work).
    pub cluster: Cluster,
    /// The job's configuration.
    pub conf: Rc<JobConf>,
    /// The job's spec (combiner fn, synthetic ratios).
    pub spec: JobSpec,
    /// The job.
    pub job: JobId,
    /// Total maps in the job (termination detection).
    pub total_maps: usize,
    /// The TaskTracker the attempt ran on.
    pub tt_idx: usize,
    /// Observability bus.
    pub obs: Recorder,
}

/// Outcome of [`ShuffleEngine::stage_map_output`].
pub enum Staged {
    /// Register the output right away (the default: no staging stage).
    Direct(MapOutputInfo),
    /// The engine buffered or folded the output. `accepted` is false when
    /// the output was a duplicate (speculative loser) the engine discarded.
    /// `ready` lists every output — possibly aggregated, possibly from
    /// *other* nodes whose buffers this call flushed — that is now final
    /// and must be registered with the MapOutputStore.
    Deferred {
        /// Whether this attempt's output was taken (vs discarded as a dup).
        accepted: bool,
        /// Outputs now ready for registration, in deterministic order.
        ready: Vec<MapOutputInfo>,
    },
}

/// One shuffle design: the server the TaskTrackers run for it and the
/// reduce-side pipeline that pulls from those servers.
pub trait ShuffleEngine {
    /// The kind this engine implements (for labels and conf validation).
    fn kind(&self) -> ShuffleKind;

    /// Whether the TaskTracker serve path should keep a PrefetchCache.
    /// ANDed with `mapred.local.caching.enabled` at runtime start.
    fn server_cache(&self) -> bool {
        false
    }

    /// Starts this engine's shuffle server on one TaskTracker and returns
    /// its address.
    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle;

    /// Hook between a map attempt finishing and its output being registered
    /// for serving. The default registers immediately; an aggregating
    /// engine may buffer the output and release folded results later.
    fn stage_map_output(&self, _ctx: StageCtx, info: MapOutputInfo) -> LocalBoxFuture<Staged> {
        Box::pin(async move { Staged::Direct(info) })
    }

    /// Notifies the engine that a node died (staged-but-unregistered
    /// outputs on it are gone; the JobTracker re-queues their maps).
    fn node_lost(&self, _tt_idx: usize) {}

    /// Notifies the engine that a job finished (drop per-job staging state).
    fn job_finalized(&self, _job: JobId) {}

    /// Runs one ReduceTask's shuffle/merge/reduce pipeline. `Err` means a
    /// shuffle source died under the attempt; the runtime re-queues it.
    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>>;
}

/// Stock Hadoop 0.20: HTTP servlets + copier pool + two-level disk merge.
pub struct VanillaEngine;

impl ShuffleEngine for VanillaEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::Vanilla
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_http_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_vanilla(ctx))
    }
}

/// Hadoop-A (SC'11): verbs transport, fixed kv-count packets, header-first
/// levitated merge, refetch on buffer overflow.
pub struct HadoopAEngine;

impl ShuffleEngine for HadoopAEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::HadoopA
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_rdma_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::hadoop_a()))
    }
}

/// OSU-IB (the paper): UCR RDMA, byte-budgeted packets, server-side
/// PrefetchCache, eager overlap, local spill on overflow.
pub struct OsuIbEngine;

impl ShuffleEngine for OsuIbEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::OsuIb
    }

    fn server_cache(&self) -> bool {
        true
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_rdma_server(tt, net)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::osu_ib()))
    }
}

/// OSU-IB striped across the fabric's rails, with RDMAbox-style request
/// batching in the responder pool: queued requests from the same reduce
/// attempt for adjacent maps coalesce into one serve turn.
pub struct MultiRailEngine;

impl ShuffleEngine for MultiRailEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::MultiRail
    }

    fn server_cache(&self) -> bool {
        true
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &Network) -> TtServerHandle {
        start_rdma_server_with(tt, net, true)
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::multi_rail()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_round_trips_kinds() {
        for kind in ShuffleKind::ALL {
            assert_eq!(kind.engine().kind(), kind);
        }
    }

    #[test]
    fn osu_ib_family_caches_on_the_server() {
        assert!(!ShuffleKind::Vanilla.engine().server_cache());
        assert!(!ShuffleKind::HadoopA.engine().server_cache());
        assert!(ShuffleKind::OsuIb.engine().server_cache());
        assert!(ShuffleKind::NodeCombiner.engine().server_cache());
        assert!(ShuffleKind::MultiRail.engine().server_cache());
    }
}
