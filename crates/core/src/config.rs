//! Job and engine configuration.
//!
//! Parameter names follow the Hadoop 0.20.2 keys the paper cites where one
//! exists (`mapred.rdma.enabled`, `mapred.local.caching.enabled`,
//! `io.sort.mb`, `io.sort.factor`, …). §III-C(3) highlights configurability
//! — RDMA packet size, caching toggle, kv-pairs per packet — as a
//! contribution over Hadoop-A, so all of those are first-class here.

use std::rc::Rc;

use rmr_des::SimDuration;

use crate::combine::NodeCombinerEngine;
use crate::engine::{HadoopAEngine, MultiRailEngine, OsuIbEngine, ShuffleEngine, VanillaEngine};

/// Which shuffle engine a job runs (the paper's three systems plus the
/// shuffle-volume extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShuffleKind {
    /// Stock Hadoop: HTTP over sockets, copier threads, two-level disk
    /// merge, reduce barrier.
    Vanilla,
    /// Hadoop-A (SC'11): verbs transport, network-levitated merge pulling
    /// fixed kv-count packets, DataEngine reads disk per request (no cache).
    HadoopA,
    /// The paper's design: UCR RDMA shuffle, MapOutputPrefetcher +
    /// PrefetchCache on the TaskTracker, byte-budgeted packets,
    /// priority-queue merge overlapped with reduce.
    OsuIb,
    /// OSU-IB plus a per-node aggregation stage: all co-located maps' sorted
    /// output is folded through the job's combiner before registration with
    /// the shuffle servers, cutting bytes served and reducer merge fan-in.
    /// Jobs without a combiner fall back to plain OSU-IB pass-through.
    NodeCombiner,
    /// OSU-IB striped across `k` fabric rails, with responder-pool request
    /// batching: adjacent segment requests from one reduce attempt coalesce
    /// into one serve (RDMAbox-style doorbell batching).
    MultiRail,
}

impl ShuffleKind {
    /// Whether the engine runs over IB verbs (vs sockets).
    pub fn uses_rdma(self) -> bool {
        !matches!(self, ShuffleKind::Vanilla)
    }

    /// Constructs the engine implementation for this kind. This factory is
    /// the one place that branches on the kind — everything downstream
    /// dispatches through the [`ShuffleEngine`] trait.
    pub fn engine(self) -> Rc<dyn ShuffleEngine> {
        match self {
            ShuffleKind::Vanilla => Rc::new(VanillaEngine),
            ShuffleKind::HadoopA => Rc::new(HadoopAEngine),
            ShuffleKind::OsuIb => Rc::new(OsuIbEngine),
            ShuffleKind::NodeCombiner => Rc::new(NodeCombinerEngine::new()),
            ShuffleKind::MultiRail => Rc::new(MultiRailEngine),
        }
    }

    /// Display name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ShuffleKind::Vanilla => "Hadoop",
            ShuffleKind::HadoopA => "HadoopA-IB",
            ShuffleKind::OsuIb => "OSU-IB",
            ShuffleKind::NodeCombiner => "OSU-IB+Comb",
            ShuffleKind::MultiRail => "OSU-IB-MR",
        }
    }

    /// Every engine the repo hosts, in table order (the paper's three plus
    /// the shuffle-volume extensions).
    pub const ALL: [ShuffleKind; 5] = [
        ShuffleKind::Vanilla,
        ShuffleKind::HadoopA,
        ShuffleKind::OsuIb,
        ShuffleKind::NodeCombiner,
        ShuffleKind::MultiRail,
    ];
}

/// CPU cost coefficients of the data-plane operations, in core-seconds.
/// Calibrated for a 2.67 GHz Westmere core (§IV-A) running Hadoop's Java
/// code paths (object churn and serialisation included — these are far above
/// raw memcpy speeds on purpose).
#[derive(Debug, Clone)]
pub struct CpuCosts {
    /// Running the user map function, per record.
    pub map_per_record: f64,
    /// Byte-stream handling in the map input path, per byte.
    pub map_per_byte: f64,
    /// One comparison+move step in sort/merge, per record per log2-level.
    pub sort_per_record_level: f64,
    /// Running the user reduce function, per record.
    pub reduce_per_record: f64,
    /// Byte-stream handling in the reduce output path, per byte.
    pub reduce_per_byte: f64,
    /// Serialisation/deserialisation, per byte (spill, shuffle staging).
    pub serde_per_byte: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            map_per_record: 0.8e-6,
            map_per_byte: 2.5e-9,
            sort_per_record_level: 0.14e-6,
            reduce_per_record: 0.9e-6,
            reduce_per_byte: 2.5e-9,
            serde_per_byte: 3.0e-9,
        }
    }
}

/// Full job + engine configuration.
#[derive(Debug, Clone)]
pub struct JobConf {
    /// Shuffle engine (vanilla / Hadoop-A / OSU-IB).
    pub shuffle: ShuffleKind,
    /// Number of ReduceTasks for the job.
    pub num_reduces: usize,
    /// Concurrent MapTasks per TaskTracker (the paper tuned 4).
    pub map_slots: usize,
    /// Concurrent ReduceTasks per TaskTracker (the paper tuned 4).
    pub reduce_slots: usize,

    /// `io.sort.mb` — map-side sort buffer, bytes.
    pub io_sort_buffer: u64,
    /// `io.sort.factor` — merge fan-in.
    pub io_sort_factor: usize,

    /// Reduce-side in-memory shuffle buffer, bytes
    /// (`mapred.job.shuffle.input.buffer.percent` × task heap).
    pub shuffle_buffer: u64,
    /// Fraction of `shuffle_buffer` that triggers the in-memory merger.
    pub inmem_merge_threshold: f64,
    /// Largest single segment kept in memory, as a fraction of
    /// `shuffle_buffer` (`mapred.job.shuffle.merge.percent` era semantics).
    pub inmem_segment_limit: f64,
    /// `mapred.reduce.parallel.copies` — vanilla copier threads.
    pub parallel_copies: usize,
    /// Server-side HTTP servlet thread pool (`tasktracker.http.threads`).
    pub http_threads: usize,
    /// Simulation granularity of streaming transfers (disk-read/send
    /// pipelining chunk). Wire packetisation costs are charged by the
    /// fabric's MTU model independently of this.
    pub stream_chunk: u64,

    /// `mapred.local.caching.enabled` — the paper's PrefetchCache toggle.
    pub caching_enabled: bool,
    /// PrefetchCache capacity, bytes (bounded by TT heap availability).
    pub prefetch_cache_bytes: u64,
    /// MapOutputPrefetcher daemon pool size.
    pub prefetcher_threads: usize,
    /// RDMAResponder pool size (OSU-IB server side).
    pub responder_threads: usize,

    /// OSU-IB packet sizing: target *bytes* of kv-pairs per shuffle packet
    /// ("number of key,value pairs transmitted in each packet" chosen
    /// size-aware — §III-C(3), §IV-C).
    pub osu_packet_bytes: u64,
    /// Hadoop-A packet sizing: fixed *count* of kv-pairs per packet,
    /// regardless of their size (the inefficiency §IV-C exposes on Sort).
    pub hadoop_a_kv_per_packet: u64,

    /// `mapred.reduce.slowstart.completed.maps`.
    pub reduce_slowstart: f64,
    /// TaskTracker heartbeat interval.
    pub heartbeat: SimDuration,
    /// Reducer map-completion-event poll interval.
    pub event_poll: SimDuration,

    /// Replication factor for job output files.
    pub output_replication: u32,

    /// Fixed wall-clock cost of launching a task attempt (JVM spawn +
    /// localisation; Hadoop 0.20 has no JVM reuse by default).
    pub task_launch_overhead: rmr_des::SimDuration,

    /// CPU cost model.
    pub costs: CpuCosts,

    /// `mapred.map.tasks.speculative.execution`: when the pending queue is
    /// empty, idle slots re-run the oldest still-running map; the first
    /// attempt to finish wins, the loser is discarded.
    pub speculative_maps: bool,

    /// `mapred.job.queue.name` analog: the capacity-scheduler queue (tenant)
    /// this job is submitted to. Only meaningful under
    /// `SchedulePolicy::Capacity`; other policies ignore it.
    pub queue: u32,

    /// Delay scheduling for map locality: how many non-local scheduling
    /// opportunities the job skips, waiting for a data-local slot, before
    /// accepting a non-local launch. `0` disables the wait (stock Hadoop
    /// 0.20 behaviour, and the default so existing replays are unchanged).
    pub locality_delay: u32,
}

impl Default for JobConf {
    fn default() -> Self {
        JobConf {
            shuffle: ShuffleKind::Vanilla,
            num_reduces: 4,
            map_slots: 4,
            reduce_slots: 4,
            io_sort_buffer: 200 << 20,
            io_sort_factor: 10,
            shuffle_buffer: 140 << 20,
            inmem_merge_threshold: 0.66,
            inmem_segment_limit: 0.25,
            parallel_copies: 5,
            http_threads: 40,
            stream_chunk: 1 << 20,
            caching_enabled: false,
            prefetch_cache_bytes: 1 << 30,
            prefetcher_threads: 4,
            responder_threads: 8,
            osu_packet_bytes: 512 << 10,
            hadoop_a_kv_per_packet: 3_000,
            reduce_slowstart: 0.05,
            heartbeat: SimDuration::from_secs(3),
            event_poll: SimDuration::from_secs(1),
            output_replication: 1,
            task_launch_overhead: SimDuration::from_millis(1_200),
            costs: CpuCosts::default(),
            speculative_maps: false,
            queue: 0,
            locality_delay: 0,
        }
    }
}

impl JobConf {
    /// The paper's OSU-IB configuration: RDMA shuffle with pre-fetching and
    /// caching enabled.
    pub fn osu_ib() -> Self {
        JobConf {
            shuffle: ShuffleKind::OsuIb,
            caching_enabled: true,
            ..Default::default()
        }
    }

    /// OSU-IB with `mapred.local.caching.enabled = false` (Fig 8 ablation).
    pub fn osu_ib_no_cache() -> Self {
        JobConf {
            shuffle: ShuffleKind::OsuIb,
            caching_enabled: false,
            ..Default::default()
        }
    }

    /// Hadoop-A as characterised by the paper and SC'11.
    pub fn hadoop_a() -> Self {
        JobConf {
            shuffle: ShuffleKind::HadoopA,
            caching_enabled: false,
            ..Default::default()
        }
    }

    /// Stock Hadoop 0.20.2.
    pub fn vanilla() -> Self {
        JobConf::default()
    }

    /// The paper's preset for `kind` (caching on only where the design
    /// has a cache). The shuffle-volume engines extend OSU-IB, so they
    /// inherit its PrefetchCache.
    pub fn for_kind(kind: ShuffleKind) -> Self {
        JobConf {
            shuffle: kind,
            caching_enabled: matches!(
                kind,
                ShuffleKind::OsuIb | ShuffleKind::NodeCombiner | ShuffleKind::MultiRail
            ),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_select_engines() {
        assert_eq!(JobConf::vanilla().shuffle, ShuffleKind::Vanilla);
        assert_eq!(JobConf::hadoop_a().shuffle, ShuffleKind::HadoopA);
        assert_eq!(JobConf::osu_ib().shuffle, ShuffleKind::OsuIb);
        assert!(JobConf::osu_ib().caching_enabled);
        assert!(!JobConf::osu_ib_no_cache().caching_enabled);
        assert!(!JobConf::hadoop_a().caching_enabled);
    }

    #[test]
    fn rdma_flag_matches_engines() {
        assert!(!ShuffleKind::Vanilla.uses_rdma());
        assert!(ShuffleKind::HadoopA.uses_rdma());
        assert!(ShuffleKind::OsuIb.uses_rdma());
        assert!(ShuffleKind::NodeCombiner.uses_rdma());
        assert!(ShuffleKind::MultiRail.uses_rdma());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = ShuffleKind::ALL.iter().map(|k| k.label()).collect();
        let set: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(set.len(), ShuffleKind::ALL.len());
    }

    #[test]
    fn extension_presets_keep_the_cache() {
        assert!(JobConf::for_kind(ShuffleKind::NodeCombiner).caching_enabled);
        assert!(JobConf::for_kind(ShuffleKind::MultiRail).caching_enabled);
        assert!(!JobConf::for_kind(ShuffleKind::HadoopA).caching_enabled);
    }
}
