//! Map-output bookkeeping: what each finished map produced, per reduce
//! partition, and where it lives.
//!
//! The store is the simulation's omniscient view of the intermediate data
//! directory (`mapred.local.dir`); serving that data still charges the
//! owning TaskTracker's disks and network. The store is cluster-lifetime
//! and serves every job on the runtime, so entries are keyed by
//! `(JobId, map_idx)`. Serving state (how far each reducer has consumed
//! each segment) lives with the TaskTracker.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_net::NodeId;

use crate::record::Segment;
use crate::runtime::JobId;

/// One completed map's output.
#[derive(Debug)]
pub struct MapOutputInfo {
    /// The job this output belongs to.
    pub job: JobId,
    /// The map task index.
    pub map_idx: usize,
    /// The TaskTracker (worker index) holding the output.
    pub tt_idx: usize,
    /// The host.
    pub node: NodeId,
    /// File on the TaskTracker's local filesystem.
    pub file: String,
    /// Total bytes across all partitions.
    pub total_bytes: u64,
    /// Total records.
    pub total_records: u64,
    /// Per-reduce-partition sorted segments.
    pub parts: Vec<Segment>,
}

type OutputsByJobAndMap = BTreeMap<(JobId, usize), Rc<MapOutputInfo>>;

/// Registry of completed map outputs across all jobs on the runtime.
#[derive(Clone, Default)]
pub struct MapOutputStore {
    inner: Rc<RefCell<OutputsByJobAndMap>>,
}

impl MapOutputStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a completed map output.
    pub fn insert(&self, info: MapOutputInfo) {
        self.inner
            .borrow_mut()
            .insert((info.job, info.map_idx), Rc::new(info));
    }

    /// Fetches a map's output info.
    pub fn get(&self, job: JobId, map_idx: usize) -> Option<Rc<MapOutputInfo>> {
        self.inner.borrow().get(&(job, map_idx)).cloned()
    }

    /// Removes (failed-map invalidation).
    pub fn remove(&self, job: JobId, map_idx: usize) -> Option<Rc<MapOutputInfo>> {
        self.inner.borrow_mut().remove(&(job, map_idx))
    }

    /// Drops every output of `job` (job cleanup at commit).
    pub fn remove_job(&self, job: JobId) {
        self.inner.borrow_mut().retain(|(j, _), _| *j != job);
    }

    /// Drops every output held by TaskTracker `tt_idx` (node death: the
    /// files are unreachable until the maps re-execute elsewhere). Returns
    /// the removed entries so the caller can re-queue their tasks.
    pub fn remove_node(&self, tt_idx: usize) -> Vec<Rc<MapOutputInfo>> {
        let mut lost = Vec::new();
        self.inner.borrow_mut().retain(|_, info| {
            if info.tt_idx == tt_idx {
                lost.push(Rc::clone(info));
                false
            } else {
                true
            }
        });
        lost
    }

    /// Number of registered outputs (all jobs).
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all output bytes (conservation checks).
    pub fn total_bytes(&self) -> u64 {
        self.inner.borrow().values().map(|i| i.total_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(job: u32, idx: usize, bytes: u64) -> MapOutputInfo {
        MapOutputInfo {
            job: JobId(job),
            map_idx: idx,
            tt_idx: 0,
            node: NodeId(0),
            file: format!("j{job}_map_{idx}.out"),
            total_bytes: bytes,
            total_records: bytes / 10,
            parts: vec![Segment::synthetic(bytes / 10, bytes)],
        }
    }

    #[test]
    fn insert_get_remove() {
        let s = MapOutputStore::new();
        s.insert(info(0, 3, 100));
        s.insert(info(0, 5, 200));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(JobId(0), 3).unwrap().total_bytes, 100);
        assert_eq!(s.total_bytes(), 300);
        assert!(s.remove(JobId(0), 3).is_some());
        assert!(s.get(JobId(0), 3).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_node_returns_the_lost_outputs() {
        let s = MapOutputStore::new();
        s.insert(info(0, 1, 100));
        let mut other = info(0, 2, 200);
        other.tt_idx = 1;
        s.insert(other);
        let lost = s.remove_node(0);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].map_idx, 1);
        assert!(s.get(JobId(0), 1).is_none());
        assert!(s.get(JobId(0), 2).is_some(), "other node's output survives");
    }

    #[test]
    fn jobs_are_isolated() {
        let s = MapOutputStore::new();
        s.insert(info(0, 1, 100));
        s.insert(info(1, 1, 200));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(JobId(0), 1).unwrap().total_bytes, 100);
        assert_eq!(s.get(JobId(1), 1).unwrap().total_bytes, 200);
        s.remove_job(JobId(0));
        assert!(s.get(JobId(0), 1).is_none());
        assert_eq!(s.get(JobId(1), 1).unwrap().total_bytes, 200);
    }
}
