//! Map-output bookkeeping: what each finished map produced, per reduce
//! partition, and where it lives.
//!
//! The store is the simulation's omniscient view of the intermediate data
//! directory (`mapred.local.dir`); serving that data still charges the
//! owning TaskTracker's disks and network. Serving state (how far each
//! reducer has consumed each segment) lives with the TaskTracker.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_net::NodeId;

use crate::record::Segment;

/// One completed map's output.
#[derive(Debug)]
pub struct MapOutputInfo {
    /// The map task index.
    pub map_idx: usize,
    /// The TaskTracker (worker index) holding the output.
    pub tt_idx: usize,
    /// The host.
    pub node: NodeId,
    /// File on the TaskTracker's local filesystem.
    pub file: String,
    /// Total bytes across all partitions.
    pub total_bytes: u64,
    /// Total records.
    pub total_records: u64,
    /// Per-reduce-partition sorted segments.
    pub parts: Vec<Segment>,
}

/// Registry of completed map outputs.
#[derive(Clone, Default)]
pub struct MapOutputStore {
    inner: Rc<RefCell<BTreeMap<usize, Rc<MapOutputInfo>>>>,
}

impl MapOutputStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a completed map output.
    pub fn insert(&self, info: MapOutputInfo) {
        self.inner.borrow_mut().insert(info.map_idx, Rc::new(info));
    }

    /// Fetches a map's output info.
    pub fn get(&self, map_idx: usize) -> Option<Rc<MapOutputInfo>> {
        self.inner.borrow().get(&map_idx).cloned()
    }

    /// Removes (job cleanup or failed-map invalidation).
    pub fn remove(&self, map_idx: usize) -> Option<Rc<MapOutputInfo>> {
        self.inner.borrow_mut().remove(&map_idx)
    }

    /// Number of registered outputs.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all output bytes (conservation checks).
    pub fn total_bytes(&self) -> u64 {
        self.inner.borrow().values().map(|i| i.total_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(idx: usize, bytes: u64) -> MapOutputInfo {
        MapOutputInfo {
            map_idx: idx,
            tt_idx: 0,
            node: NodeId(0),
            file: format!("map_{idx}.out"),
            total_bytes: bytes,
            total_records: bytes / 10,
            parts: vec![Segment::synthetic(bytes / 10, bytes)],
        }
    }

    #[test]
    fn insert_get_remove() {
        let s = MapOutputStore::new();
        s.insert(info(3, 100));
        s.insert(info(5, 200));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3).unwrap().total_bytes, 100);
        assert_eq!(s.total_bytes(), 300);
        assert!(s.remove(3).is_some());
        assert!(s.get(3).is_none());
        assert_eq!(s.len(), 1);
    }
}
