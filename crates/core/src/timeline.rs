//! Per-attempt task timelines.
//!
//! Every map/reduce attempt records when it started, where it ran, and how
//! it ended. The timeline is the raw material for swimlane visualisations
//! (one lane per task slot, as in the Hadoop job-history UI) and for
//! computing slot-occupancy statistics; `JobResult` carries it out of
//! `run_job`.

use std::cell::RefCell;
use std::rc::Rc;

/// Task flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A MapTask attempt.
    Map,
    /// A ReduceTask attempt.
    Reduce,
}

/// How an attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Finished and its output was committed.
    Completed,
    /// Died (fault injection) and was re-scheduled.
    Failed,
    /// Finished but lost a speculative race; output discarded.
    Discarded,
    /// Cancelled mid-flight by the capacity scheduler to free its slot for
    /// a starved queue (only ever a redundant speculative attempt).
    Preempted,
}

/// One task attempt's lifetime.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its phase.
    pub idx: usize,
    /// TaskTracker (worker) index it ran on.
    pub tt: usize,
    /// Virtual start time, seconds.
    pub start_s: f64,
    /// Virtual end time, seconds.
    pub end_s: f64,
    /// How it ended.
    pub outcome: Outcome,
}

impl TaskEvent {
    /// Attempt duration in virtual seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// The obs-layer view of this attempt (shared renderer input).
    pub fn to_span(&self, job: u32) -> rmr_obs::Span {
        rmr_obs::Span {
            node: self.tt,
            job,
            kind: match self.kind {
                TaskKind::Map => rmr_obs::TaskFlavor::Map,
                TaskKind::Reduce => rmr_obs::TaskFlavor::Reduce,
            },
            idx: self.idx,
            start_s: self.start_s,
            end_s: self.end_s,
            outcome: match self.outcome {
                Outcome::Completed => rmr_obs::AttemptOutcome::Completed,
                Outcome::Failed => rmr_obs::AttemptOutcome::Failed,
                Outcome::Discarded => rmr_obs::AttemptOutcome::Discarded,
                Outcome::Preempted => rmr_obs::AttemptOutcome::Preempted,
            },
        }
    }

    /// One JSON object (hand-rolled: the core crate stays serde-free).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"kind":"{}","idx":{},"tt":{},"start_s":{:.6},"end_s":{:.6},"outcome":"{}"}}"#,
            match self.kind {
                TaskKind::Map => "map",
                TaskKind::Reduce => "reduce",
            },
            self.idx,
            self.tt,
            self.start_s,
            self.end_s,
            match self.outcome {
                Outcome::Completed => "completed",
                Outcome::Failed => "failed",
                Outcome::Discarded => "discarded",
                Outcome::Preempted => "preempted",
            }
        )
    }
}

/// Shared, append-only attempt log.
#[derive(Clone, Default)]
pub struct Timeline {
    events: Rc<RefCell<Vec<TaskEvent>>>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finished attempt.
    pub fn record(&self, ev: TaskEvent) {
        self.events.borrow_mut().push(ev);
    }

    /// All attempts, in completion order.
    pub fn events(&self) -> Vec<TaskEvent> {
        self.events.borrow().clone()
    }

    /// JSON-lines export.
    pub fn to_json_lines(&self) -> String {
        self.events
            .borrow()
            .iter()
            .map(TaskEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// (map attempts, reduce attempts) recorded.
    pub fn counts(&self) -> (usize, usize) {
        let ev = self.events.borrow();
        (
            ev.iter().filter(|e| e.kind == TaskKind::Map).count(),
            ev.iter().filter(|e| e.kind == TaskKind::Reduce).count(),
        )
    }

    /// Integral of concurrently running attempts of `kind` divided by the
    /// job's makespan — average occupied slots (swimlane density).
    ///
    /// Delegates to [`rmr_obs::mean_concurrency`], the single implementation
    /// of this figure (the obs renderers use it on event-derived spans).
    pub fn mean_concurrency(&self, kind: TaskKind) -> f64 {
        let spans: Vec<rmr_obs::Span> = self.events.borrow().iter().map(|e| e.to_span(0)).collect();
        let flavor = match kind {
            TaskKind::Map => rmr_obs::TaskFlavor::Map,
            TaskKind::Reduce => rmr_obs::TaskFlavor::Reduce,
        };
        rmr_obs::mean_concurrency(&spans, Some(flavor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TaskKind, idx: usize, start: f64, end: f64, outcome: Outcome) -> TaskEvent {
        TaskEvent {
            kind,
            idx,
            tt: 0,
            start_s: start,
            end_s: end,
            outcome,
        }
    }

    #[test]
    fn records_and_counts() {
        let t = Timeline::new();
        t.record(ev(TaskKind::Map, 0, 0.0, 2.0, Outcome::Completed));
        t.record(ev(TaskKind::Map, 1, 0.0, 3.0, Outcome::Failed));
        t.record(ev(TaskKind::Reduce, 0, 2.0, 6.0, Outcome::Completed));
        assert_eq!(t.counts(), (2, 1));
        assert_eq!(t.events()[1].outcome, Outcome::Failed);
    }

    #[test]
    fn json_lines_round_trip_shape() {
        let t = Timeline::new();
        t.record(ev(TaskKind::Reduce, 7, 1.5, 2.5, Outcome::Discarded));
        let json = t.to_json_lines();
        assert!(json.contains(r#""kind":"reduce""#));
        assert!(json.contains(r#""idx":7"#));
        assert!(json.contains(r#""outcome":"discarded""#));
        // Exactly one line per event.
        assert_eq!(json.lines().count(), 1);
    }

    #[test]
    fn mean_concurrency_integrates_busy_time() {
        let t = Timeline::new();
        // Two maps fully overlapping across the whole [0, 4] span → 2.0.
        t.record(ev(TaskKind::Map, 0, 0.0, 4.0, Outcome::Completed));
        t.record(ev(TaskKind::Map, 1, 0.0, 4.0, Outcome::Completed));
        assert!((t.mean_concurrency(TaskKind::Map) - 2.0).abs() < 1e-9);
        assert_eq!(t.mean_concurrency(TaskKind::Reduce), 0.0);
    }

    #[test]
    fn empty_timeline_is_sane() {
        let t = Timeline::new();
        assert_eq!(t.counts(), (0, 0));
        assert_eq!(t.mean_concurrency(TaskKind::Map), 0.0);
        assert_eq!(t.to_json_lines(), "");
    }
}
