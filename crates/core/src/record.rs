//! The dual data plane: real records and synthetic (accounting-only) runs.
//!
//! Correctness runs (tests, examples) materialise every key-value pair and
//! genuinely sort, partition, and merge them; paper-scale benchmark runs
//! carry only record/byte counts through exactly the same code paths, so
//! the *timing* model is identical in both modes. [`RunData::Real`] holds a
//! shared, immutable, sorted record vector plus a slice window, which lets
//! shuffle packets reference sub-ranges without copying.

use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};

/// One key-value pair. Keys and values are opaque byte strings, compared
/// lexicographically (Hadoop's `BytesWritable` ordering, which is also
/// TeraSort's ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The key.
    pub key: Bytes,
    /// The value.
    pub value: Bytes,
}

impl Record {
    /// Builds a record from owned byte vectors.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Record {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Bytes this record occupies in a shuffle stream / file.
    pub fn size(&self) -> u64 {
        (self.key.len() + self.value.len()) as u64
    }
}

/// Length-prefixed serialisation of records (4-byte key length, 4-byte value
/// length, then the bytes) — the on-HDFS representation used by the real
/// data plane.
pub fn encode_records(records: &[Record]) -> Bytes {
    let total: usize = records
        .iter()
        .map(|r| 8 + r.key.len() + r.value.len())
        .sum();
    let mut buf = BytesMut::with_capacity(total);
    for r in records {
        buf.put_u32(r.key.len() as u32);
        buf.put_u32(r.value.len() as u32);
        buf.put_slice(&r.key);
        buf.put_slice(&r.value);
    }
    buf.freeze()
}

/// Inverse of [`encode_records`]. Panics on malformed input (the encoder is
/// the only producer in this system).
pub fn decode_records(mut data: Bytes) -> Vec<Record> {
    use bytes::Buf;
    let mut out = Vec::new();
    while data.remaining() > 0 {
        let klen = data.get_u32() as usize;
        let vlen = data.get_u32() as usize;
        let key = data.split_to(klen);
        let value = data.split_to(vlen);
        out.push(Record { key, value });
    }
    out
}

/// The contents of a sorted run: real records or synthetic counts.
#[derive(Debug, Clone)]
pub enum RunData {
    /// A window `[start, end)` into a shared sorted record vector.
    Real {
        /// The backing records, sorted by key.
        recs: Rc<Vec<Record>>,
        /// Window start (inclusive).
        start: usize,
        /// Window end (exclusive).
        end: usize,
    },
    /// Counts only.
    Synthetic {
        /// Number of records represented.
        records: u64,
        /// Total bytes represented.
        bytes: u64,
    },
}

/// A sorted run with its size metadata; the unit moved through spills,
/// shuffles, and merges.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Record count.
    pub records: u64,
    /// Byte count.
    pub bytes: u64,
    /// Contents.
    pub data: RunData,
}

impl Segment {
    /// An empty segment (synthetic flavour).
    pub fn empty() -> Self {
        Segment {
            records: 0,
            bytes: 0,
            data: RunData::Synthetic {
                records: 0,
                bytes: 0,
            },
        }
    }

    /// Builds a real segment by sorting `records` by key.
    pub fn from_records(mut records: Vec<Record>) -> Self {
        records.sort_by(|a, b| a.key.cmp(&b.key));
        Self::from_sorted(records)
    }

    /// Builds a real segment from records already sorted by key.
    pub fn from_sorted(records: Vec<Record>) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].key <= w[1].key));
        let bytes = records.iter().map(Record::size).sum();
        let n = records.len();
        Segment {
            records: n as u64,
            bytes,
            data: RunData::Real {
                recs: Rc::new(records),
                start: 0,
                end: n,
            },
        }
    }

    /// Builds a synthetic segment.
    pub fn synthetic(records: u64, bytes: u64) -> Self {
        Segment {
            records,
            bytes,
            data: RunData::Synthetic { records, bytes },
        }
    }

    /// True if this segment carries real records.
    pub fn is_real(&self) -> bool {
        matches!(self.data, RunData::Real { .. })
    }

    /// True if the segment holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records == 0 && self.bytes == 0
    }

    /// Iterates the real records in the window (empty iterator for
    /// synthetic data).
    pub fn iter_real(&self) -> impl Iterator<Item = &Record> {
        match &self.data {
            RunData::Real { recs, start, end } => recs[*start..*end].iter(),
            RunData::Synthetic { .. } => [].iter(),
        }
    }

    /// Collects the real records (clones the window; None for synthetic).
    pub fn to_records(&self) -> Option<Vec<Record>> {
        match &self.data {
            RunData::Real { recs, start, end } => Some(recs[*start..*end].to_vec()),
            RunData::Synthetic { .. } => None,
        }
    }

    /// First key in the window (real only).
    pub fn first_key(&self) -> Option<&Bytes> {
        match &self.data {
            RunData::Real { recs, start, end } if start < end => Some(&recs[*start].key),
            _ => None,
        }
    }

    /// Last key in the window (real only).
    pub fn last_key(&self) -> Option<&Bytes> {
        match &self.data {
            RunData::Real { recs, start, end } if start < end => Some(&recs[*end - 1].key),
            _ => None,
        }
    }

    /// Checks the sortedness invariant (vacuously true for synthetic).
    pub fn is_sorted(&self) -> bool {
        match &self.data {
            RunData::Real { recs, start, end } => {
                recs[*start..*end].windows(2).all(|w| w[0].key <= w[1].key)
            }
            RunData::Synthetic { .. } => true,
        }
    }

    /// Partitions this segment's records into `n` partitions with `part`.
    /// Real: by actual key. Synthetic: evenly, remainder spread over the
    /// first partitions (uniform-key assumption — true for TeraGen and
    /// RandomWriter data).
    pub fn partition(&self, n: usize, part: &dyn Partitioner) -> Vec<Segment> {
        assert!(n > 0);
        match &self.data {
            RunData::Real { recs, start, end } => {
                if part.is_monotone() {
                    // Sorted input + monotone partitioner ⇒ each partition
                    // is a contiguous window of the backing vector. Emit
                    // shared windows: no record clones, no bucket vectors.
                    let window = &recs[*start..*end];
                    let mut out = Vec::with_capacity(n);
                    let mut lo = 0usize;
                    for p in 0..n {
                        let hi =
                            lo + window[lo..].partition_point(|r| part.partition(&r.key, n) <= p);
                        let bytes = window[lo..hi].iter().map(Record::size).sum();
                        out.push(Segment {
                            records: (hi - lo) as u64,
                            bytes,
                            data: RunData::Real {
                                recs: Rc::clone(recs),
                                start: *start + lo,
                                end: *start + hi,
                            },
                        });
                        lo = hi;
                    }
                    return out;
                }
                let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); n];
                for r in recs[*start..*end].iter() {
                    buckets[part.partition(&r.key, n)].push(r.clone());
                }
                // Records were sorted; stable bucketing keeps each bucket
                // sorted.
                buckets.into_iter().map(Segment::from_sorted).collect()
            }
            RunData::Synthetic { records, bytes } => {
                let mut out = Vec::with_capacity(n);
                let (rq, rr) = (records / n as u64, records % n as u64);
                let (bq, br) = (bytes / n as u64, bytes % n as u64);
                for i in 0..n as u64 {
                    let r = rq + u64::from(i < rr);
                    let b = bq + u64::from(i < br);
                    out.push(Segment::synthetic(r, b));
                }
                out
            }
        }
    }

    /// Concatenates packets that together form one sorted segment (the
    /// windows a cursor produced, in order). Contiguous windows over the
    /// same backing vector are rejoined without copying; anything else falls
    /// back to a merge. Synthetic packets just sum.
    pub fn concat(parts: Vec<Segment>) -> Segment {
        if parts.is_empty() {
            return Segment::empty();
        }
        if parts.iter().all(|p| !p.is_real()) {
            let records = parts.iter().map(|p| p.records).sum();
            let bytes = parts.iter().map(|p| p.bytes).sum();
            return Segment::synthetic(records, bytes);
        }
        // Fast path: consecutive windows of one backing vector.
        let contiguous = {
            let mut ok = true;
            let mut prev_end: Option<(*const Vec<Record>, usize)> = None;
            for p in &parts {
                match &p.data {
                    RunData::Real { recs, start, end } => {
                        let ptr = Rc::as_ptr(recs);
                        if let Some((pp, pe)) = prev_end {
                            if pp != ptr || pe != *start {
                                ok = false;
                                break;
                            }
                        }
                        prev_end = Some((ptr, *end));
                    }
                    RunData::Synthetic { .. } => {
                        ok = false;
                        break;
                    }
                }
            }
            ok
        };
        if contiguous {
            let (first_recs, first_start) = match &parts[0].data {
                RunData::Real { recs, start, .. } => (Rc::clone(recs), *start),
                _ => unreachable!(),
            };
            let last_end = match &parts.last().unwrap().data {
                RunData::Real { end, .. } => *end,
                _ => unreachable!(),
            };
            let records = parts.iter().map(|p| p.records).sum();
            let bytes = parts.iter().map(|p| p.bytes).sum();
            return Segment {
                records,
                bytes,
                data: RunData::Real {
                    recs: first_recs,
                    start: first_start,
                    end: last_end,
                },
            };
        }
        Segment::merge(&parts)
    }

    /// K-way merges sorted segments into one sorted segment. All-real and
    /// all-synthetic inputs are supported; mixing panics (a job runs in one
    /// mode).
    pub fn merge(segments: &[Segment]) -> Segment {
        if segments.is_empty() {
            return Segment::empty();
        }
        if segments.iter().all(|s| !s.is_real()) {
            let records = segments.iter().map(|s| s.records).sum();
            let bytes = segments.iter().map(|s| s.bytes).sum();
            return Segment::synthetic(records, bytes);
        }
        assert!(
            segments.iter().all(Segment::is_real),
            "cannot merge mixed real/synthetic segments"
        );
        // Standard k-way heap merge over window iterators. Heads borrow
        // their keys from the backing vectors — no per-record key clones.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq, Eq)]
        struct Head<'a> {
            key: &'a Bytes,
            src: usize,
            idx: usize,
        }
        impl Ord for Head<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.key, self.src, self.idx).cmp(&(other.key, other.src, other.idx))
            }
        }
        impl PartialOrd for Head<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let windows: Vec<(&Rc<Vec<Record>>, usize, usize)> = segments
            .iter()
            .map(|s| match &s.data {
                RunData::Real { recs, start, end } => (recs, *start, *end),
                RunData::Synthetic { .. } => unreachable!(),
            })
            .collect();
        let mut heap = BinaryHeap::with_capacity(windows.len());
        for (src, (recs, start, end)) in windows.iter().enumerate() {
            if start < end {
                heap.push(Reverse(Head {
                    key: &recs[*start].key,
                    src,
                    idx: *start,
                }));
            }
        }
        let total: usize = segments.iter().map(|s| s.records as usize).sum();
        let mut out = Vec::with_capacity(total);
        while let Some(Reverse(h)) = heap.pop() {
            let (recs, _, end) = windows[h.src];
            out.push(recs[h.idx].clone());
            let next = h.idx + 1;
            if next < end {
                heap.push(Reverse(Head {
                    key: &recs[next].key,
                    src: h.src,
                    idx: next,
                }));
            }
        }
        Segment::from_sorted(out)
    }
}

/// A sequential cursor over a segment, yielding shuffle packets.
#[derive(Debug, Clone)]
pub struct SegmentCursor {
    seg: Segment,
    rec_pos: u64,
    byte_pos: u64,
}

impl SegmentCursor {
    /// Starts a cursor at the beginning of `seg`.
    pub fn new(seg: Segment) -> Self {
        SegmentCursor {
            seg,
            rec_pos: 0,
            byte_pos: 0,
        }
    }

    /// Records not yet taken.
    pub fn remaining_records(&self) -> u64 {
        self.seg.records - self.rec_pos
    }

    /// Bytes not yet taken.
    pub fn remaining_bytes(&self) -> u64 {
        self.seg.bytes - self.byte_pos
    }

    /// True when fully consumed.
    pub fn exhausted(&self) -> bool {
        self.rec_pos >= self.seg.records
    }

    /// Takes the next packet of at most `budget` bytes (always at least one
    /// record if any remain, so oversized records still move).
    pub fn take_bytes(&mut self, budget: u64) -> Segment {
        match &self.seg.data {
            RunData::Real { recs, start, .. } => {
                let from = *start + self.rec_pos as usize;
                let end = *start + self.seg.records as usize;
                let mut idx = from;
                let mut bytes = 0u64;
                while idx < end {
                    let sz = recs[idx].size();
                    if idx > from && bytes + sz > budget {
                        break;
                    }
                    bytes += sz;
                    idx += 1;
                }
                let taken = Segment {
                    records: (idx - from) as u64,
                    bytes,
                    data: RunData::Real {
                        recs: Rc::clone(recs),
                        start: from,
                        end: idx,
                    },
                };
                self.rec_pos += taken.records;
                self.byte_pos += taken.bytes;
                taken
            }
            RunData::Synthetic { .. } => {
                let rem_bytes = self.remaining_bytes();
                let rem_recs = self.remaining_records();
                if rem_recs == 0 {
                    return Segment::empty();
                }
                let avg = (rem_bytes / rem_recs).max(1);
                let bytes = budget.min(rem_bytes);
                let recs = (bytes / avg).clamp(1, rem_recs);
                // Final packet flushes any rounding residue.
                let (recs, bytes) = if recs == rem_recs {
                    (rem_recs, rem_bytes)
                } else {
                    (recs, bytes.min(rem_bytes))
                };
                self.rec_pos += recs;
                self.byte_pos += bytes;
                Segment::synthetic(recs, bytes)
            }
        }
    }

    /// Takes the next packet of at most `n` records (Hadoop-A's fixed-count
    /// packets).
    pub fn take_records(&mut self, n: u64) -> Segment {
        match &self.seg.data {
            RunData::Real { recs, start, .. } => {
                let from = *start + self.rec_pos as usize;
                let end = *start + self.seg.records as usize;
                let to = (from + n as usize).min(end);
                let bytes = recs[from..to].iter().map(Record::size).sum();
                let taken = Segment {
                    records: (to - from) as u64,
                    bytes,
                    data: RunData::Real {
                        recs: Rc::clone(recs),
                        start: from,
                        end: to,
                    },
                };
                self.rec_pos += taken.records;
                self.byte_pos += taken.bytes;
                taken
            }
            RunData::Synthetic { .. } => {
                let rem_recs = self.remaining_records();
                let rem_bytes = self.remaining_bytes();
                if rem_recs == 0 {
                    return Segment::empty();
                }
                let recs = n.min(rem_recs);
                let bytes = if recs == rem_recs {
                    rem_bytes
                } else {
                    (rem_bytes as u128 * recs as u128 / rem_recs as u128) as u64
                };
                self.rec_pos += recs;
                self.byte_pos += bytes;
                Segment::synthetic(recs, bytes)
            }
        }
    }
}

/// Assigns keys to reduce partitions.
pub trait Partitioner {
    /// Partition index for `key` among `n` partitions.
    fn partition(&self, key: &[u8], n: usize) -> usize;

    /// True when partition indices are non-decreasing in key order, so
    /// partitioning a sorted run yields contiguous windows.
    /// [`Segment::partition`] then shares slices instead of cloning records.
    fn is_monotone(&self) -> bool {
        false
    }
}

/// Hadoop's default: hash of the key modulo partitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &[u8], n: usize) -> usize {
        // FNV-1a — stable across runs, unlike Java's String.hashCode, but
        // serves the same role.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % n as u64) as usize
    }
}

/// TeraSort's total-order partitioner: partitions by leading key bytes so
/// partition `i`'s keys all precede partition `i+1`'s (global sort order).
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalOrderPartitioner;

impl Partitioner for TotalOrderPartitioner {
    fn partition(&self, key: &[u8], n: usize) -> usize {
        // Interpret the first 8 key bytes as a big-endian fraction of the
        // key space.
        let mut prefix = [0u8; 8];
        for (i, b) in key.iter().take(8).enumerate() {
            prefix[i] = *b;
        }
        let x = u64::from_be_bytes(prefix);
        ((x as u128 * n as u128) >> 64) as usize
    }

    fn is_monotone(&self) -> bool {
        // The partition index is a non-decreasing function of the 8-byte
        // big-endian key prefix, which orders like the key itself.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &[u8], v: &[u8]) -> Record {
        Record::new(k.to_vec(), v.to_vec())
    }

    #[test]
    fn encode_decode_round_trip() {
        let records = vec![rec(b"bb", b"2"), rec(b"a", b"111"), rec(b"", b"")];
        let decoded = decode_records(encode_records(&records));
        assert_eq!(decoded, records);
    }

    #[test]
    fn from_records_sorts() {
        let s = Segment::from_records(vec![rec(b"c", b"3"), rec(b"a", b"1"), rec(b"b", b"2")]);
        assert!(s.is_sorted());
        assert_eq!(s.records, 3);
        assert_eq!(s.bytes, 6);
        assert_eq!(s.first_key().unwrap().as_ref(), b"a");
        assert_eq!(s.last_key().unwrap().as_ref(), b"c");
    }

    #[test]
    fn real_partition_preserves_order_and_count() {
        let recs: Vec<Record> = (0..100u32).map(|i| rec(&i.to_be_bytes(), b"v")).collect();
        let s = Segment::from_records(recs);
        let parts = s.partition(7, &HashPartitioner);
        assert_eq!(parts.iter().map(|p| p.records).sum::<u64>(), 100);
        for p in &parts {
            assert!(p.is_sorted());
        }
    }

    #[test]
    fn synthetic_partition_spreads_remainder() {
        let s = Segment::synthetic(10, 103);
        let parts = s.partition(4, &HashPartitioner);
        assert_eq!(parts.iter().map(|p| p.records).sum::<u64>(), 10);
        assert_eq!(parts.iter().map(|p| p.bytes).sum::<u64>(), 103);
        let recs: Vec<u64> = parts.iter().map(|p| p.records).collect();
        assert_eq!(recs, vec![3, 3, 2, 2]);
    }

    #[test]
    fn total_order_partitioner_is_monotone() {
        let p = TotalOrderPartitioner;
        let lo = p.partition(&[0x10, 0, 0, 0, 0, 0, 0, 0, 0, 0], 8);
        let hi = p.partition(&[0xF0, 0, 0, 0, 0, 0, 0, 0, 0, 0], 8);
        assert!(lo < hi);
        assert_eq!(p.partition(&[0; 10], 8), 0);
        assert_eq!(p.partition(&[0xFF; 10], 8), 7);
    }

    #[test]
    fn merge_real_produces_global_order() {
        let a = Segment::from_records(vec![rec(b"a", b"1"), rec(b"d", b"4")]);
        let b = Segment::from_records(vec![rec(b"b", b"2"), rec(b"c", b"3")]);
        let m = Segment::merge(&[a, b]);
        assert!(m.is_sorted());
        assert_eq!(m.records, 4);
        let keys: Vec<&[u8]> = m.iter_real().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_synthetic_sums() {
        let m = Segment::merge(&[Segment::synthetic(5, 50), Segment::synthetic(7, 70)]);
        assert_eq!((m.records, m.bytes), (12, 120));
        assert!(!m.is_real());
    }

    #[test]
    fn cursor_take_bytes_real() {
        let recs: Vec<Record> = (0..10u8).map(|i| rec(&[i], &[0u8; 9])).collect(); // 10 B each
        let mut c = SegmentCursor::new(Segment::from_records(recs));
        let p1 = c.take_bytes(25);
        assert_eq!(p1.records, 2); // 2 × 10 B fit, 3rd would exceed
        assert_eq!(p1.bytes, 20);
        let mut total = p1.records;
        while !c.exhausted() {
            total += c.take_bytes(25).records;
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn cursor_take_bytes_always_progresses_on_oversized_record() {
        let mut c = SegmentCursor::new(Segment::from_records(vec![rec(b"k", &[0u8; 100])]));
        let p = c.take_bytes(10); // record is 101 B but budget is 10 B
        assert_eq!(p.records, 1);
        assert!(c.exhausted());
    }

    #[test]
    fn cursor_take_records_synthetic_conserves_totals() {
        let mut c = SegmentCursor::new(Segment::synthetic(10, 1_003));
        let mut recs = 0;
        let mut bytes = 0;
        while !c.exhausted() {
            let p = c.take_records(3);
            recs += p.records;
            bytes += p.bytes;
        }
        assert_eq!(recs, 10);
        assert_eq!(bytes, 1_003, "final packet must flush rounding residue");
    }

    #[test]
    fn cursor_take_bytes_synthetic_conserves_totals() {
        let mut c = SegmentCursor::new(Segment::synthetic(1_000, 100_000));
        let mut recs = 0;
        let mut bytes = 0;
        while !c.exhausted() {
            let p = c.take_bytes(1_700);
            recs += p.records;
            bytes += p.bytes;
            assert!(p.records > 0);
        }
        assert_eq!(recs, 1_000);
        assert_eq!(bytes, 100_000);
    }

    #[test]
    fn packet_windows_share_backing_storage() {
        let recs: Vec<Record> = (0..4u8).map(|i| rec(&[i], b"v")).collect();
        let seg = Segment::from_records(recs);
        let rc = match &seg.data {
            RunData::Real { recs, .. } => Rc::clone(recs),
            _ => unreachable!(),
        };
        let mut c = SegmentCursor::new(seg);
        let _p = c.take_records(2);
        // 1 original + 1 in cursor's segment + 1 in packet = 3? The cursor
        // consumed the original; count just proves sharing, not copying.
        assert!(Rc::strong_count(&rc) >= 2);
    }
}
