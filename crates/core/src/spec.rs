//! Job specifications: what a MapReduce job computes.
//!
//! A [`JobSpec`] names the HDFS input/output, the partitioner, the user map
//! and reduce functions (real data plane), and the sizing ratios the
//! synthetic plane uses in their place. The sort benchmarks (TeraSort,
//! Sort) are identity map / identity reduce with ratio 1.0; WordCount shows
//! a non-trivial pair.

use std::rc::Rc;

use bytes::Bytes;

use crate::record::{Partitioner, Record, TotalOrderPartitioner};

/// Real-mode map function: one input record to any number of intermediate
/// records.
pub type MapFn = Rc<dyn Fn(&Record) -> Vec<Record>>;

/// Real-mode reduce function: one key and its values to output records.
pub type ReduceFn = Rc<dyn Fn(&Bytes, &[Bytes]) -> Vec<Record>>;

/// A MapReduce job description.
#[derive(Clone)]
pub struct JobSpec {
    /// Job name (reports).
    pub name: String,
    /// HDFS input path.
    pub input: String,
    /// HDFS output path.
    pub output: String,
    /// Key → reduce-partition mapping.
    pub partitioner: Rc<dyn Partitioner>,
    /// Synthetic sizing: map output bytes per input byte.
    pub map_output_ratio: f64,
    /// Synthetic sizing: reduce output bytes per merged input byte.
    pub reduce_output_ratio: f64,
    /// Synthetic sizing: average intermediate record size, bytes.
    pub avg_record_bytes: u64,
    /// Real-mode map function (`None` = identity).
    pub mapper: Option<MapFn>,
    /// Real-mode reduce function (`None` = identity pass-through).
    pub reducer: Option<ReduceFn>,
    /// Map-side combiner applied to sorted map output before it is written
    /// and shuffled (must be associative, as in Hadoop).
    pub combiner: Option<ReduceFn>,
    /// Synthetic sizing: intermediate volume surviving the combiner
    /// (1.0 = no reduction).
    pub combine_ratio: f64,
}

impl JobSpec {
    /// An identity sort job with a total-order partitioner (the TeraSort
    /// shape): globally sorted output.
    pub fn sort(input: &str, output: &str, avg_record_bytes: u64) -> Self {
        JobSpec {
            name: format!("sort({input})"),
            input: input.to_string(),
            output: output.to_string(),
            partitioner: Rc::new(TotalOrderPartitioner),
            map_output_ratio: 1.0,
            reduce_output_ratio: 1.0,
            avg_record_bytes,
            mapper: None,
            reducer: None,
            combiner: None,
            combine_ratio: 1.0,
        }
    }

    /// Sets a custom partitioner.
    pub fn with_partitioner(mut self, p: Rc<dyn Partitioner>) -> Self {
        self.partitioner = p;
        self
    }

    /// Sets the real-mode map function.
    pub fn with_mapper(mut self, f: MapFn) -> Self {
        self.mapper = Some(f);
        self
    }

    /// Sets the real-mode reduce function.
    pub fn with_reducer(mut self, f: ReduceFn) -> Self {
        self.reducer = Some(f);
        self
    }

    /// Sets the map-side combiner and the synthetic volume ratio it leaves.
    pub fn with_combiner(mut self, f: ReduceFn, combine_ratio: f64) -> Self {
        self.combiner = Some(f);
        self.combine_ratio = combine_ratio;
        self
    }

    /// Sets the synthetic sizing ratios.
    pub fn with_ratios(mut self, map_out: f64, reduce_out: f64) -> Self {
        self.map_output_ratio = map_out;
        self.reduce_output_ratio = reduce_out;
        self
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("input", &self.input)
            .field("output", &self.output)
            .field("map_output_ratio", &self.map_output_ratio)
            .field("reduce_output_ratio", &self.reduce_output_ratio)
            .field("avg_record_bytes", &self.avg_record_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_spec_defaults() {
        let s = JobSpec::sort("/in", "/out", 100);
        assert_eq!(s.map_output_ratio, 1.0);
        assert_eq!(s.reduce_output_ratio, 1.0);
        assert!(s.mapper.is_none());
        assert!(s.reducer.is_none());
        assert_eq!(s.avg_record_bytes, 100);
    }

    #[test]
    fn combiner_builder_applies() {
        let s = JobSpec::sort("/in", "/out", 8).with_combiner(
            Rc::new(|k: &Bytes, vs: &[Bytes]| vec![Record::new(k.clone(), vs[0].clone())]),
            0.2,
        );
        assert!(s.combiner.is_some());
        assert_eq!(s.combine_ratio, 0.2);
    }

    #[test]
    fn builders_apply() {
        let s = JobSpec::sort("/in", "/out", 100)
            .with_ratios(0.5, 0.1)
            .with_mapper(Rc::new(|r: &Record| vec![r.clone()]));
        assert_eq!(s.map_output_ratio, 0.5);
        assert_eq!(s.reduce_output_ratio, 0.1);
        assert!(s.mapper.is_some());
    }
}
