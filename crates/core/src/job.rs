//! Single-job convenience wrapper over the persistent cluster runtime.
//!
//! `run_job` spins up a fresh [`Runtime`] on the cluster, submits the one
//! job, and waits for it — exactly what the figure benchmarks need. The
//! scheduling loop, task-attempt spawning, and result assembly all live in
//! [`crate::runtime`].

use crate::cluster::Cluster;
use crate::config::JobConf;
use crate::faults::FaultPlan;
use crate::runtime::Runtime;
use crate::spec::JobSpec;

pub use crate::runtime::JobResult;

/// Runs `spec` on `cluster` under `conf`, returning when the job commits.
pub async fn run_job(cluster: &Cluster, conf: JobConf, spec: JobSpec) -> JobResult {
    run_job_with_faults(cluster, conf, spec, &FaultPlan::none()).await
}

/// [`run_job`] with a [`FaultPlan`] armed before submission (the job is
/// ordinal 0). An empty plan is exactly `run_job`.
pub async fn run_job_with_faults(
    cluster: &Cluster,
    conf: JobConf,
    spec: JobSpec,
    plan: &FaultPlan,
) -> JobResult {
    let rt = Runtime::start(cluster, conf.clone());
    rt.apply_fault_plan(plan);
    let id = rt.submit(conf, spec);
    rt.join(id).await
}
