//! Single-job convenience wrapper over the persistent cluster runtime.
//!
//! `run_job` spins up a fresh [`Runtime`] on the cluster, submits the one
//! job, and waits for it — exactly what the figure benchmarks need. The
//! scheduling loop, task-attempt spawning, and result assembly all live in
//! [`crate::runtime`].

use crate::cluster::Cluster;
use crate::config::JobConf;
use crate::runtime::Runtime;
use crate::spec::JobSpec;

pub use crate::runtime::JobResult;

/// Runs `spec` on `cluster` under `conf`, returning when the job commits.
pub async fn run_job(cluster: &Cluster, conf: JobConf, spec: JobSpec) -> JobResult {
    let rt = Runtime::start(cluster, conf.clone());
    let id = rt.submit(conf, spec);
    rt.join(id).await
}
