//! Job orchestration: drives a complete MapReduce job on a [`Cluster`].
//!
//! `run_job` computes input splits, builds the JobTracker, starts a
//! TaskTracker (with its shuffle server) on every worker, and runs the
//! heartbeat-driven scheduling loop until every ReduceTask has committed
//! its output. The returned [`JobResult`] carries the phase timings and
//! volume counters the benchmark harness reports.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_des::prelude::*;

use crate::cluster::Cluster;
use crate::config::{JobConf, ShuffleKind};
use crate::jobtracker::{JobTracker, MapTaskDesc};
use crate::mapoutput::MapOutputStore;
use crate::maptask::run_map;
use crate::reduce::common::{ReduceCtx, ReduceStats};
use crate::reduce::rdma::run_reduce_rdma;
use crate::reduce::vanilla::run_reduce_vanilla;
use crate::spec::JobSpec;
use crate::tasktracker::{start_shuffle_server, TaskTracker, TtServerHandle};
use crate::timeline::{Outcome, TaskEvent, TaskKind, Timeline};

/// Heartbeat RPC payload size on the wire.
const HEARTBEAT_BYTES: u64 = 1024;

/// Results of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// The engine that ran it.
    pub shuffle: ShuffleKind,
    /// Job execution time, seconds (submission at t=start to last reduce
    /// commit).
    pub duration_s: f64,
    /// Virtual time the job started.
    pub start_s: f64,
    /// Virtual time the last map finished.
    pub map_phase_end_s: f64,
    /// Virtual time the job finished.
    pub end_s: f64,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
    /// Input bytes read from HDFS.
    pub input_bytes: u64,
    /// Intermediate bytes shuffled.
    pub shuffled_bytes: u64,
    /// Output bytes written to HDFS.
    pub output_bytes: u64,
    /// PrefetchCache hits and misses across TaskTrackers (OSU-IB).
    pub cache_hits: u64,
    /// PrefetchCache misses.
    pub cache_misses: u64,
    /// Map attempts that failed (fault injection) and were re-executed.
    pub failed_map_attempts: usize,
    /// Per-reducer phase stats.
    pub reduce_stats: Vec<ReduceStats>,
    /// Every task attempt's lifetime (swimlane data).
    pub timeline: Vec<TaskEvent>,
}

struct JobProgress {
    map_phase_end_s: f64,
    reduce_stats: Vec<Option<ReduceStats>>,
    done: Notify,
}

/// Runs `spec` on `cluster` under `conf`, returning when the job commits.
pub async fn run_job(cluster: &Cluster, conf: JobConf, spec: JobSpec) -> JobResult {
    let sim = cluster.sim.clone();
    let start = sim.now();
    let conf = Rc::new(conf);

    // Input splits with locality info. The input names either a single file
    // or a directory prefix whose files are all scanned (TeraGen and
    // RandomWriter write one part file per worker).
    let input_files: Vec<String> = if cluster.hdfs.exists(&spec.input) {
        vec![spec.input.clone()]
    } else {
        let prefix = format!("{}/", spec.input.trim_end_matches('/'));
        let files: Vec<String> = cluster
            .hdfs
            .list()
            .into_iter()
            .filter(|p| p.starts_with(&prefix))
            .collect();
        assert!(!files.is_empty(), "job input missing: {}", spec.input);
        files
    };
    let mut splits = Vec::new();
    for f in &input_files {
        splits.extend(cluster.hdfs.split_locations(f).expect("job input missing"));
    }
    let input_bytes: u64 = splits.iter().map(|(b, _)| b.size).sum();
    let descs: Vec<MapTaskDesc> = splits
        .into_iter()
        .enumerate()
        .map(|(idx, (block, locations))| MapTaskDesc {
            idx,
            block,
            locations,
        })
        .collect();
    let total_maps = descs.len();

    let jt = Rc::new(RefCell::new(JobTracker::new(
        descs,
        conf.num_reduces,
        conf.reduce_slowstart,
        conf.fail_map_once,
    )));
    jt.borrow_mut().set_speculative(conf.speculative_maps);
    jt.borrow_mut().set_fail_reduce_once(conf.fail_reduce_once);
    let outputs = MapOutputStore::new();

    // TaskTrackers + shuffle servers on every worker.
    let mut tts = Vec::new();
    let mut servers = Vec::new();
    for (i, w) in cluster.workers.iter().enumerate() {
        let tt = TaskTracker::new(&sim, i, w.clone(), Rc::clone(&conf), outputs.clone());
        servers.push(start_shuffle_server(&tt, &cluster.net));
        tts.push(tt);
    }
    let servers: Rc<Vec<TtServerHandle>> = Rc::new(servers);

    let timeline = Timeline::new();
    let progress = Rc::new(RefCell::new(JobProgress {
        map_phase_end_s: 0.0,
        reduce_stats: vec![None; conf.num_reduces],
        done: Notify::new(),
    }));

    // Heartbeat loop per TaskTracker.
    for tt in &tts {
        let hb_name = format!("tt{}-heartbeat", tt.idx);
        let tt = Rc::clone(tt);
        let cluster2 = cluster.clone();
        let conf2 = Rc::clone(&conf);
        let spec2 = spec.clone();
        let jt2 = Rc::clone(&jt);
        let outputs2 = outputs.clone();
        let servers2 = Rc::clone(&servers);
        let progress2 = Rc::clone(&progress);
        let timeline2 = timeline.clone();
        let sim2 = sim.clone();
        sim.spawn_named(hb_name, async move {
            loop {
                if jt2.borrow().job_done() {
                    break;
                }
                // Heartbeat RPC to the JobTracker.
                cluster2
                    .net
                    .transfer(tt.node.id, cluster2.master, HEARTBEAT_BYTES)
                    .await;
                let free_m = tt.map_slots.available() as usize;
                let free_r = tt.reduce_slots.available() as usize;
                let (maps, reduces) = jt2.borrow_mut().heartbeat(tt.node.id, free_m, free_r);
                cluster2
                    .net
                    .transfer(cluster2.master, tt.node.id, HEARTBEAT_BYTES)
                    .await;

                for desc in maps {
                    let permit = tt
                        .map_slots
                        .try_acquire(1)
                        .expect("slot advertised but unavailable");
                    spawn_map_attempt(
                        &sim2, &cluster2, &conf2, &spec2, &jt2, &outputs2, &tt, desc, permit,
                        &progress2, &timeline2,
                    );
                }
                for reduce_idx in reduces {
                    let permit = tt
                        .reduce_slots
                        .try_acquire(1)
                        .expect("slot advertised but unavailable");
                    spawn_reduce_attempt(
                        &sim2, &cluster2, &conf2, &spec2, &jt2, &servers2, &tt, reduce_idx, permit,
                        &progress2, total_maps, &timeline2,
                    );
                }
                sim2.sleep(conf2.heartbeat).await;
            }
        })
        .detach();
    }

    // Wait for completion.
    loop {
        if jt.borrow().job_done() {
            break;
        }
        let waiter = progress.borrow().done.notified();
        waiter.await;
    }

    let end = sim.now();
    let (mut hits, mut misses) = (0u64, 0u64);
    for tt in &tts {
        let (h, m) = tt.cache.stats();
        hits += h;
        misses += m;
    }
    let failed_map_attempts = jt.borrow().failures_seen();
    let prog = progress.borrow();
    let reduce_stats: Vec<ReduceStats> = prog
        .reduce_stats
        .iter()
        .map(|s| s.clone().expect("reducer finished without stats"))
        .collect();
    let shuffled_bytes = reduce_stats.iter().map(|s| s.shuffled_bytes).sum();
    let output_bytes = reduce_stats.iter().map(|s| s.output_bytes).sum();
    JobResult {
        name: spec.name.clone(),
        shuffle: conf.shuffle,
        duration_s: (end - start).as_secs_f64(),
        start_s: start.as_secs_f64(),
        map_phase_end_s: prog.map_phase_end_s,
        end_s: end.as_secs_f64(),
        maps: total_maps,
        reduces: conf.num_reduces,
        input_bytes,
        shuffled_bytes,
        output_bytes,
        cache_hits: hits,
        cache_misses: misses,
        failed_map_attempts,
        reduce_stats,
        timeline: timeline.events(),
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_map_attempt(
    sim: &Sim,
    cluster: &Cluster,
    conf: &Rc<JobConf>,
    spec: &JobSpec,
    jt: &Rc<RefCell<JobTracker>>,
    outputs: &MapOutputStore,
    tt: &Rc<TaskTracker>,
    desc: MapTaskDesc,
    permit: Permit,
    progress: &Rc<RefCell<JobProgress>>,
    timeline: &Timeline,
) {
    let timeline = timeline.clone();
    let cluster = cluster.clone();
    let conf = Rc::clone(conf);
    let spec = spec.clone();
    let jt = Rc::clone(jt);
    let outputs = outputs.clone();
    let tt = Rc::clone(tt);
    let progress = Rc::clone(progress);
    let sim2c = sim.clone();
    sim.spawn_named(format!("map-task-{}", desc.idx), async move {
        let sim2 = sim2c;
        let attempt_start = sim2.now().as_secs_f64();
        // JVM spawn + task localisation.
        sim2.sleep(conf.task_launch_overhead).await;
        let fail = jt.borrow_mut().should_fail(desc.idx);
        let abort = fail.then_some(0.5);
        let out = run_map(&cluster, &conf, &spec, &tt, &desc, abort).await;
        // Status notification to the JobTracker.
        cluster.net.transfer(tt.node.id, cluster.master, 256).await;
        let idx = desc.idx;
        match out {
            Some(info) => {
                let map_idx = info.map_idx;
                let first = jt.borrow_mut().map_completed(map_idx, tt.idx);
                timeline.record(TaskEvent {
                    kind: TaskKind::Map,
                    idx,
                    tt: tt.idx,
                    start_s: attempt_start,
                    end_s: sim2.now().as_secs_f64(),
                    outcome: if first {
                        Outcome::Completed
                    } else {
                        Outcome::Discarded
                    },
                });
                if first {
                    // Only the winning attempt's output is committed;
                    // speculative losers are discarded (their file stays on
                    // disk until job cleanup, as in Hadoop).
                    outputs.insert(info);
                    tt.on_map_output(map_idx);
                    let jtb = jt.borrow();
                    if jtb.maps_done() {
                        drop(jtb);
                        progress.borrow_mut().map_phase_end_s = sim2.now().as_secs_f64();
                    }
                }
            }
            None => {
                timeline.record(TaskEvent {
                    kind: TaskKind::Map,
                    idx,
                    tt: tt.idx,
                    start_s: attempt_start,
                    end_s: sim2.now().as_secs_f64(),
                    outcome: Outcome::Failed,
                });
                jt.borrow_mut().map_failed(desc);
            }
        }
        drop(permit);
    })
    .detach();
}

#[allow(clippy::too_many_arguments)]
fn spawn_reduce_attempt(
    sim: &Sim,
    cluster: &Cluster,
    conf: &Rc<JobConf>,
    spec: &JobSpec,
    jt: &Rc<RefCell<JobTracker>>,
    servers: &Rc<Vec<TtServerHandle>>,
    tt: &Rc<TaskTracker>,
    reduce_idx: usize,
    permit: Permit,
    progress: &Rc<RefCell<JobProgress>>,
    total_maps: usize,
    timeline: &Timeline,
) {
    let timeline = timeline.clone();
    let ctx = ReduceCtx {
        cluster: cluster.clone(),
        conf: Rc::clone(conf),
        spec: spec.clone(),
        jt: Rc::clone(jt),
        servers: Rc::clone(servers),
        tt: Rc::clone(tt),
        reduce_idx,
        total_maps,
    };
    let cluster = cluster.clone();
    let jt = Rc::clone(jt);
    let progress = Rc::clone(progress);
    let kind = conf.shuffle;
    let launch = conf.task_launch_overhead;
    let sim2 = sim.clone();
    let tt_idx = tt.idx;
    sim.spawn_named(format!("reduce-task-{reduce_idx}"), async move {
        let attempt_start = sim2.now().as_secs_f64();
        sim2.sleep(launch).await;
        // Fault injection: this attempt dies before shuffling and the task
        // goes back to the queue (detected at the next status interval).
        if jt.borrow_mut().should_fail_reduce(reduce_idx) {
            sim2.sleep(SimDuration::from_secs(10)).await;
            cluster
                .net
                .transfer(ctx.tt.node.id, cluster.master, 256)
                .await;
            timeline.record(TaskEvent {
                kind: TaskKind::Reduce,
                idx: reduce_idx,
                tt: tt_idx,
                start_s: attempt_start,
                end_s: sim2.now().as_secs_f64(),
                outcome: Outcome::Failed,
            });
            jt.borrow_mut().reduce_failed(reduce_idx);
            drop(permit);
            return;
        }
        let stats = match kind {
            ShuffleKind::Vanilla => run_reduce_vanilla(ctx).await,
            ShuffleKind::HadoopA | ShuffleKind::OsuIb => run_reduce_rdma(ctx).await,
        };
        // Commit notification.
        cluster
            .net
            .transfer(cluster.workers[0].id, cluster.master, 256)
            .await;
        timeline.record(TaskEvent {
            kind: TaskKind::Reduce,
            idx: reduce_idx,
            tt: tt_idx,
            start_s: attempt_start,
            end_s: sim2.now().as_secs_f64(),
            outcome: Outcome::Completed,
        });
        {
            let mut prog = progress.borrow_mut();
            prog.reduce_stats[reduce_idx] = Some(stats);
        }
        let mut jtb = jt.borrow_mut();
        jtb.reduce_completed();
        let finished = jtb.job_done();
        drop(jtb);
        if finished {
            progress.borrow().done.notify_all();
        }
        drop(permit);
    })
    .detach();
}
