//! MapTask execution: split read, user map, sort & spill, final merge.
//!
//! Follows Hadoop 0.20's map side: the split is read from HDFS (local
//! replica preferred), the map function emits intermediate records into a
//! sort buffer of `io.sort.mb`; each buffer-full is sorted and spilled to
//! the local disk as a partitioned, sorted run; multiple spills are merged
//! into the single indexed map-output file the shuffle serves.

use std::rc::Rc;

use crate::cluster::Cluster;
use crate::config::JobConf;
use crate::jobtracker::MapTaskDesc;
use crate::mapoutput::MapOutputInfo;
use crate::record::{decode_records, Record, Segment};
use crate::runtime::JobId;
use crate::spec::JobSpec;
use crate::tasktracker::TaskTracker;

/// Runs one map attempt of `job`. When `abort_fraction` is set (fault
/// injection), the attempt does that fraction of its input work and then
/// dies, returning `None`.
pub async fn run_map(
    cluster: &Cluster,
    conf: &JobConf,
    spec: &JobSpec,
    tt: &Rc<TaskTracker>,
    job: JobId,
    desc: &MapTaskDesc,
    abort_fraction: Option<f64>,
) -> Option<MapOutputInfo> {
    let node = tt.node.clone();
    let sim = &cluster.sim;
    let costs = &conf.costs;

    // 1. Read the input split (locality-aware).
    let block = cluster
        .hdfs
        .read_block(&desc.block, node.id)
        .await
        .expect("split read failed");
    let in_bytes = block.size;

    // 2. Decode input records.
    let real_records: Option<Vec<Record>> = block.data.map(decode_records);
    let in_records = match &real_records {
        Some(v) => v.len() as u64,
        None => (in_bytes / spec.avg_record_bytes.max(1)).max(1),
    };
    node.compute(costs.serde_per_byte * in_bytes as f64).await;

    // 3. User map function.
    let map_cpu = costs.map_per_record * in_records as f64 + costs.map_per_byte * in_bytes as f64;
    if let Some(frac) = abort_fraction {
        // The attempt dies here after burning `frac` of its map work.
        node.compute(map_cpu * frac).await;
        sim.metrics().incr("map.failed_attempts");
        return None;
    }
    node.compute(map_cpu).await;
    let mut out_records_real: Option<Vec<Record>> = real_records.map(|recs| {
        let mut out = Vec::with_capacity(recs.len());
        match &spec.mapper {
            Some(f) => {
                for r in &recs {
                    out.extend(f(r));
                }
            }
            None => out = recs,
        }
        out
    });

    // Map-side combiner: group sorted intermediate records by key and fold
    // each group (same key ⇒ same partition, so combining before the
    // partition step is equivalent to Hadoop's per-spill combine).
    if let Some(combine) = &spec.combiner {
        if let Some(recs) = out_records_real.take() {
            let mut sorted = recs;
            sorted.sort_by(|a, b| a.key.cmp(&b.key));
            node.compute(costs.reduce_per_record * sorted.len() as f64)
                .await;
            let mut combined = Vec::new();
            let mut i = 0;
            while i < sorted.len() {
                let key = sorted[i].key.clone();
                let mut values = Vec::new();
                while i < sorted.len() && sorted[i].key == key {
                    values.push(sorted[i].value.clone());
                    i += 1;
                }
                combined.extend(combine(&key, &values));
            }
            out_records_real = Some(combined);
        }
    }

    // 4. Sizing of the intermediate output.
    let (out_records, out_bytes) = match &out_records_real {
        Some(v) => (v.len() as u64, v.iter().map(Record::size).sum::<u64>()),
        None => {
            let bytes = (in_bytes as f64 * spec.map_output_ratio * spec.combine_ratio) as u64;
            ((bytes / spec.avg_record_bytes.max(1)).max(1), bytes)
        }
    };

    // 5. Sort + spill. Each buffer-full is sorted (n·log n) and written.
    let n_spills = out_bytes.div_ceil(conf.io_sort_buffer.max(1)).max(1);
    let per_spill_records = (out_records as f64 / n_spills as f64).max(1.0);
    let sort_cpu =
        out_records as f64 * per_spill_records.log2().max(1.0) * costs.sort_per_record_level
            + costs.serde_per_byte * out_bytes as f64;
    node.compute(sort_cpu).await;

    let final_file = format!("{job}_map_{idx}.out", idx = desc.idx);
    if n_spills == 1 {
        let w = node.fs.writer(&final_file).expect("spill file");
        w.append(out_bytes).await.expect("spill write");
    } else {
        // Write each spill, then merge them into the final file.
        let mut spill_files = Vec::new();
        for s in 0..n_spills {
            let f = format!("{job}_map_{idx}_spill{s}", idx = desc.idx);
            let w = node.fs.writer(&f).expect("spill file");
            w.append(out_bytes / n_spills).await.expect("spill write");
            spill_files.push(f);
        }
        // Merge: read every spill back, k-way merge CPU, write final.
        for f in &spill_files {
            let mut r = node.fs.reader(f).expect("spill readback");
            let sz = node.fs.size(f).expect("spill size");
            r.read_exact(sz).await.expect("spill read");
        }
        node.compute(
            out_records as f64 * (n_spills as f64).log2().max(1.0) * costs.sort_per_record_level,
        )
        .await;
        let w = node.fs.writer(&final_file).expect("final map output");
        w.append(out_bytes).await.expect("final write");
        for f in &spill_files {
            let _ = node.fs.delete(f);
        }
    }

    // 6. Partition the (sorted) output per reducer.
    let parts = match out_records_real {
        Some(recs) => {
            let seg = Segment::from_records(recs);
            seg.partition(conf.num_reduces, spec.partitioner.as_ref())
        }
        None => Segment::synthetic(out_records, out_bytes)
            .partition(conf.num_reduces, spec.partitioner.as_ref()),
    };

    sim.metrics().add("map.output_bytes", out_bytes as f64);
    sim.metrics().incr("map.completed");
    Some(MapOutputInfo {
        job,
        map_idx: desc.idx,
        tt_idx: tt.idx,
        node: node.id,
        file: final_file,
        total_bytes: out_bytes,
        total_records: out_records,
        parts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeSpec;
    use crate::config::JobConf;
    use crate::mapoutput::MapOutputStore;
    use crate::record::encode_records;
    use bytes::Bytes;
    use rmr_des::prelude::*;
    use rmr_hdfs::{Blob, HdfsConfig};
    use rmr_net::FabricParams;

    fn mk_cluster(sim: &Sim) -> Cluster {
        Cluster::build(
            sim,
            FabricParams::ib_verbs_qdr(),
            &[NodeSpec::westmere_compute(), NodeSpec::westmere_compute()],
            HdfsConfig {
                block_size: 1 << 20,
                replication: 1,
                packet_size: 256 << 10,
            },
        )
    }

    fn mk_tt(sim: &Sim, cluster: &Cluster, conf: &Rc<JobConf>) -> Rc<TaskTracker> {
        TaskTracker::new(
            sim,
            0,
            cluster.workers[0].clone(),
            Rc::clone(conf),
            MapOutputStore::new(),
            false,
            rmr_obs::Recorder::off(),
        )
    }

    #[test]
    fn real_map_sorts_and_partitions() {
        let sim = Sim::new(1);
        let cluster = mk_cluster(&sim);
        let conf = Rc::new(JobConf {
            num_reduces: 4,
            ..JobConf::default()
        });
        let spec = JobSpec::sort("/in", "/out", 14);
        let tt = mk_tt(&sim, &cluster, &conf);
        let c2 = cluster.clone();
        let done = Rc::new(std::cell::RefCell::new(None));
        let d2 = Rc::clone(&done);
        sim.spawn(async move {
            // Write real input: 50 records with descending keys.
            let recs: Vec<Record> = (0..50u32)
                .rev()
                .map(|i| Record::new(i.to_be_bytes().to_vec(), Bytes::from_static(b"valuedata")))
                .collect();
            let mut w = c2.hdfs.create("/in", c2.workers[0].id).await.unwrap();
            w.write(Blob::real(encode_records(&recs))).await.unwrap();
            w.close().await.unwrap();
            let locs = c2.hdfs.split_locations("/in").unwrap();
            let desc = MapTaskDesc {
                idx: 0,
                block: locs[0].0.clone(),
                locations: locs[0].1.clone(),
            };
            let out = run_map(&c2, &conf, &spec, &tt, JobId(0), &desc, None)
                .await
                .unwrap();
            *d2.borrow_mut() = Some(out);
        })
        .detach();
        sim.run();
        let out = done.borrow_mut().take().unwrap();
        assert_eq!(out.total_records, 50);
        assert_eq!(out.parts.len(), 4);
        assert_eq!(out.parts.iter().map(|p| p.records).sum::<u64>(), 50);
        for p in &out.parts {
            assert!(p.is_sorted());
        }
        // The map output file exists with the right size.
        assert_eq!(
            cluster.workers[0].fs.size(&out.file).unwrap(),
            out.total_bytes
        );
    }

    #[test]
    fn synthetic_map_scales_with_ratio() {
        let sim = Sim::new(2);
        let cluster = mk_cluster(&sim);
        let conf = Rc::new(JobConf {
            num_reduces: 2,
            ..JobConf::default()
        });
        let spec = JobSpec::sort("/in", "/out", 100).with_ratios(0.5, 1.0);
        let tt = mk_tt(&sim, &cluster, &conf);
        let c2 = cluster.clone();
        let done = Rc::new(std::cell::RefCell::new(None));
        let d2 = Rc::clone(&done);
        sim.spawn(async move {
            let mut w = c2.hdfs.create("/in", c2.workers[0].id).await.unwrap();
            w.write(Blob::synthetic(1 << 20)).await.unwrap();
            w.close().await.unwrap();
            let locs = c2.hdfs.split_locations("/in").unwrap();
            let desc = MapTaskDesc {
                idx: 0,
                block: locs[0].0.clone(),
                locations: locs[0].1.clone(),
            };
            let out = run_map(&c2, &conf, &spec, &tt, JobId(0), &desc, None)
                .await
                .unwrap();
            *d2.borrow_mut() = Some(out);
        })
        .detach();
        sim.run();
        let out = done.borrow_mut().take().unwrap();
        assert_eq!(out.total_bytes, 1 << 19, "ratio 0.5 halves output");
        assert_eq!(
            out.parts.iter().map(|p| p.bytes).sum::<u64>(),
            out.total_bytes
        );
    }

    #[test]
    fn multi_spill_charges_extra_io() {
        // Same input, tiny sort buffer → spills + merge pass → more disk
        // traffic and a later finish.
        let mut times = Vec::new();
        for sort_buffer in [u64::MAX, 128 << 10] {
            let sim = Sim::new(3);
            let cluster = mk_cluster(&sim);
            let conf = Rc::new(JobConf {
                num_reduces: 1,
                io_sort_buffer: sort_buffer,
                ..JobConf::default()
            });
            let spec = JobSpec::sort("/in", "/out", 100);
            let tt = mk_tt(&sim, &cluster, &conf);
            let c2 = cluster.clone();
            let sim2 = sim.clone();
            let t = Rc::new(std::cell::Cell::new(0u64));
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                let mut w = c2.hdfs.create("/in", c2.workers[0].id).await.unwrap();
                w.write(Blob::synthetic(1 << 20)).await.unwrap();
                w.close().await.unwrap();
                let locs = c2.hdfs.split_locations("/in").unwrap();
                let desc = MapTaskDesc {
                    idx: 0,
                    block: locs[0].0.clone(),
                    locations: locs[0].1.clone(),
                };
                let start = sim2.now();
                run_map(&c2, &conf, &spec, &tt, JobId(0), &desc, None)
                    .await
                    .unwrap();
                t2.set((sim2.now() - start).as_nanos());
            })
            .detach();
            sim.run();
            times.push(t.get());
        }
        assert!(times[1] > times[0], "spilling must cost extra time");
    }

    #[test]
    fn aborted_attempt_produces_nothing() {
        let sim = Sim::new(4);
        let cluster = mk_cluster(&sim);
        let conf = Rc::new(JobConf::default());
        let spec = JobSpec::sort("/in", "/out", 100);
        let tt = mk_tt(&sim, &cluster, &conf);
        let c2 = cluster.clone();
        let got = Rc::new(std::cell::Cell::new(true));
        let g2 = Rc::clone(&got);
        sim.spawn(async move {
            let mut w = c2.hdfs.create("/in", c2.workers[0].id).await.unwrap();
            w.write(Blob::synthetic(1 << 20)).await.unwrap();
            w.close().await.unwrap();
            let locs = c2.hdfs.split_locations("/in").unwrap();
            let desc = MapTaskDesc {
                idx: 0,
                block: locs[0].0.clone(),
                locations: locs[0].1.clone(),
            };
            let out = run_map(&c2, &conf, &spec, &tt, JobId(0), &desc, Some(0.5)).await;
            g2.set(out.is_some());
        })
        .detach();
        sim.run();
        assert!(!got.get());
        assert_eq!(sim.metrics().get("map.failed_attempts"), 1.0);
    }
}
