//! The in-node combiner engine: OSU-IB's data plane plus a per-node
//! aggregation stage in front of the shuffle servers.
//!
//! Stock Hadoop combines map output *per map attempt* (see
//! [`crate::maptask`]); records with the same key emitted by different maps
//! on the same node still cross the fabric separately and meet only in the
//! reducer's merge. This engine holds each node's finished map outputs back
//! from registration, folds them through the job's combiner once a node has
//! a full wave (`map_slots` outputs) — or once every map in the job has
//! staged — and registers one aggregated output per wave instead. For
//! WordCount-shaped jobs that cuts both bytes served and reducer merge
//! fan-in roughly by the co-location factor.
//!
//! Jobs without a combiner fn bypass the stage entirely
//! ([`Staged::Direct`]), so TeraSort/Sort replay bit-identically to OSU-IB.
//!
//! Fault model: staged-but-unregistered outputs live only on their node's
//! disk. When a node dies, [`ShuffleEngine::node_lost`] drops its staging
//! state, the JobTracker re-queues the affected maps (they were never
//! reported complete), and the re-executed attempts re-stage cleanly —
//! including re-running the aggregation. A fold that was already in flight
//! when its node died is discarded on completion via an ownership re-check.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_obs::Ev;

use crate::config::ShuffleKind;
use crate::engine::{LocalBoxFuture, ShuffleEngine, StageCtx, Staged};
use crate::mapoutput::MapOutputInfo;
use crate::record::Segment;
use crate::reduce::common::{ReduceCtx, ReduceError, ReduceStats};
use crate::reduce::rdma::{run_reduce_rdma, RdmaVariant};
use crate::runtime::JobId;
use crate::spec::ReduceFn;
use crate::tasktracker::{start_rdma_server, TaskTracker, TtServerHandle};

/// Per-job staging state.
#[derive(Default)]
struct JobStage {
    /// Which node first staged each map (`map_idx` → `tt_idx`). Duplicate
    /// stages (speculative losers) are discarded; `node_lost` removes a dead
    /// node's entries so re-executed maps re-stage.
    owner: BTreeMap<usize, usize>,
    /// Buffered, not-yet-folded outputs per node.
    pending: BTreeMap<usize, Vec<MapOutputInfo>>,
    /// Per-node flush counter (names the aggregate files).
    wave: BTreeMap<usize, u32>,
}

type StageState = Rc<RefCell<BTreeMap<JobId, JobStage>>>;

/// OSU-IB plus the per-node aggregation stage.
pub struct NodeCombinerEngine {
    jobs: StageState,
}

impl NodeCombinerEngine {
    /// A fresh engine with empty staging state.
    pub fn new() -> Self {
        NodeCombinerEngine {
            jobs: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }
}

impl Default for NodeCombinerEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ShuffleEngine for NodeCombinerEngine {
    fn kind(&self) -> ShuffleKind {
        ShuffleKind::NodeCombiner
    }

    fn server_cache(&self) -> bool {
        true
    }

    fn start_server(&self, tt: &Rc<TaskTracker>, net: &rmr_net::Network) -> TtServerHandle {
        start_rdma_server(tt, net)
    }

    fn stage_map_output(&self, ctx: StageCtx, info: MapOutputInfo) -> LocalBoxFuture<Staged> {
        if ctx.spec.combiner.is_none() {
            // No combiner to fold through: pass-through, bit-identical to
            // OSU-IB.
            return Box::pin(async move { Staged::Direct(info) });
        }
        let jobs = Rc::clone(&self.jobs);
        Box::pin(stage(jobs, ctx, info))
    }

    fn node_lost(&self, tt_idx: usize) {
        let mut jobs = self.jobs.borrow_mut();
        for st in jobs.values_mut() {
            st.owner.retain(|_, t| *t != tt_idx);
            st.pending.remove(&tt_idx);
        }
    }

    fn job_finalized(&self, job: JobId) {
        self.jobs.borrow_mut().remove(&job);
    }

    fn run_reduce(&self, ctx: ReduceCtx) -> LocalBoxFuture<Result<ReduceStats, ReduceError>> {
        Box::pin(run_reduce_rdma(ctx, RdmaVariant::osu_ib()))
    }
}

/// Buffers one map output; flushes (folds + registers) a node's wave when
/// full, or every node's remainder when the job's last map stages.
async fn stage(jobs: StageState, ctx: StageCtx, info: MapOutputInfo) -> Staged {
    let t = ctx.tt_idx;
    // Bookkeeping is synchronous (no await while the state is borrowed).
    let flush_groups: Vec<(usize, u32, Vec<MapOutputInfo>)> = {
        let mut jobs = jobs.borrow_mut();
        let st = jobs.entry(ctx.job).or_default();
        if st.owner.contains_key(&info.map_idx) {
            // A speculative duplicate of an already-staged map: discard.
            return Staged::Deferred {
                accepted: false,
                ready: vec![],
            };
        }
        st.owner.insert(info.map_idx, t);
        st.pending.entry(t).or_default().push(info);
        let mut groups = Vec::new();
        if st.owner.len() == ctx.total_maps {
            // Last map staged: flush every node's remainder, node order.
            let nodes: Vec<usize> = st.pending.keys().copied().collect();
            for n in nodes {
                let buf = st.pending.remove(&n).expect("listed pending node");
                let w = st.wave.entry(n).or_insert(0);
                groups.push((n, *w, buf));
                *w += 1;
            }
        } else if st.pending[&t].len() >= ctx.conf.map_slots.max(1) {
            // One full wave of co-located maps: fold it now.
            let buf = st.pending.remove(&t).expect("own pending buffer");
            let w = st.wave.entry(t).or_insert(0);
            groups.push((t, *w, buf));
            *w += 1;
        }
        groups
    };
    let mut ready = Vec::new();
    for (n, wave, buf) in flush_groups {
        let folded = fold_group(&ctx, n, wave, &buf).await;
        // The fold awaited disk and CPU; if node `n` died meanwhile its
        // staging state was cleared and the JobTracker re-queued these
        // maps — the stale aggregate must not register.
        let still_owned = {
            let jobs = jobs.borrow();
            jobs.get(&ctx.job)
                .is_some_and(|st| buf.iter().all(|i| st.owner.get(&i.map_idx) == Some(&n)))
        };
        if still_owned {
            ready.extend(folded);
        }
    }
    Staged::Deferred {
        accepted: true,
        ready,
    }
}

/// Folds one node's buffered outputs into a single aggregated map output
/// plus zero-record placeholders for the other folded maps (the
/// `discovered == total_maps` shuffle protocol needs one entry per map).
async fn fold_group(
    ctx: &StageCtx,
    n: usize,
    wave: u32,
    buf: &[MapOutputInfo],
) -> Vec<MapOutputInfo> {
    if buf.len() == 1 {
        // Nothing to fold with; register the lone output as-is.
        let i = &buf[0];
        return vec![MapOutputInfo {
            job: i.job,
            map_idx: i.map_idx,
            tt_idx: i.tt_idx,
            node: i.node,
            file: i.file.clone(),
            total_bytes: i.total_bytes,
            total_records: i.total_records,
            parts: i.parts.clone(),
        }];
    }
    let node = ctx.cluster.workers[n].clone();
    let costs = &ctx.conf.costs;
    let combine = ctx.spec.combiner.clone().expect("stage without combiner");
    let sum_records: u64 = buf.iter().map(|i| i.total_records).sum();
    let sum_bytes: u64 = buf.iter().map(|i| i.total_bytes).sum();

    // Read every buffered map-output file back from the node's disk.
    for i in buf {
        if i.total_bytes > 0 {
            let mut r = node.fs.reader(&i.file).expect("staged map output");
            r.read_exact(i.total_bytes).await.expect("stage readback");
        }
    }
    // One k-way merge pass plus the combiner over every record.
    let k = buf.len() as f64;
    node.compute(
        costs.sort_per_record_level * sum_records as f64 * k.log2().max(1.0)
            + costs.reduce_per_record * sum_records as f64,
    )
    .await;

    // Fold each reduce partition across the wave's maps.
    let nparts = buf[0].parts.len();
    let mut parts = Vec::with_capacity(nparts);
    for r in 0..nparts {
        let srcs: Vec<Segment> = buf.iter().map(|i| i.parts[r].clone()).collect();
        let peak = srcs.iter().map(|s| s.records).max().unwrap_or(0);
        let merged = Segment::merge(&srcs);
        parts.push(fold_segment(merged, peak, &combine, ctx.spec.combine_ratio));
    }
    let total_records: u64 = parts.iter().map(|p| p.records).sum();
    let total_bytes: u64 = parts.iter().map(|p| p.bytes).sum();

    // Write the aggregate file the shuffle will serve.
    let file = format!("{}_nodeagg_{n}_{wave}.out", ctx.job);
    let w = node.fs.writer(&file).expect("aggregate file");
    if total_bytes > 0 {
        w.append(total_bytes).await.expect("aggregate write");
    }
    node.compute(costs.serde_per_byte * total_bytes as f64)
        .await;

    ctx.obs.emit(|| Ev::CombineFold {
        node: n,
        job: ctx.job.0,
        maps: buf.len(),
        bytes_in: sum_bytes,
        bytes_out: total_bytes,
    });
    ctx.cluster
        .sim
        .metrics()
        .add("combine.bytes_saved", (sum_bytes - total_bytes) as f64);

    // The smallest folded map index carries the aggregate; the rest become
    // zero-record placeholders pointing at the same file (never read:
    // serving skips disk for empty segments).
    let rep = buf.iter().map(|i| i.map_idx).min().expect("non-empty wave");
    let mut out = Vec::with_capacity(buf.len());
    out.push(MapOutputInfo {
        job: ctx.job,
        map_idx: rep,
        tt_idx: n,
        node: node.id,
        file: file.clone(),
        total_bytes,
        total_records,
        parts,
    });
    let mut others: Vec<usize> = buf
        .iter()
        .map(|i| i.map_idx)
        .filter(|&m| m != rep)
        .collect();
    others.sort_unstable();
    for m in others {
        out.push(MapOutputInfo {
            job: ctx.job,
            map_idx: m,
            tt_idx: n,
            node: node.id,
            file: file.clone(),
            total_bytes: 0,
            total_records: 0,
            parts: vec![Segment::empty(); nparts],
        });
    }
    out
}

/// Applies the combiner to one merged partition. Real segments group-fold
/// through the user fn; synthetic segments shrink to the shared-vocabulary
/// model: the wave's largest source survives (every map re-emits the same
/// hot keys), floored by `combine_ratio` of the merged volume.
fn fold_segment(merged: Segment, peak_records: u64, combine: &ReduceFn, ratio: f64) -> Segment {
    if merged.records == 0 {
        return merged;
    }
    if merged.is_real() {
        let recs = merged.to_records().expect("real segment records");
        let mut out = Vec::new();
        let mut i = 0;
        while i < recs.len() {
            let key = recs[i].key.clone();
            let mut values = Vec::new();
            while i < recs.len() && recs[i].key == key {
                values.push(recs[i].value.clone());
                i += 1;
            }
            out.extend(combine(&key, &values));
        }
        Segment::from_records(out)
    } else {
        let floor = (merged.records as f64 * ratio).ceil() as u64;
        let records = peak_records.max(floor).clamp(1, merged.records);
        let bytes = (merged.bytes as f64 * records as f64 / merged.records as f64) as u64;
        Segment::synthetic(records, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use bytes::Bytes;

    fn sum_combiner() -> ReduceFn {
        Rc::new(|k: &Bytes, vs: &[Bytes]| {
            let total: u64 = vs
                .iter()
                .map(|v| String::from_utf8_lossy(v).parse::<u64>().unwrap_or(0))
                .sum();
            vec![Record::new(k.clone(), Bytes::from(total.to_string()))]
        })
    }

    #[test]
    fn real_fold_collapses_shared_keys() {
        let a = Segment::from_records(vec![
            Record::new(&b"x"[..], &b"1"[..]),
            Record::new(&b"y"[..], &b"2"[..]),
        ]);
        let b = Segment::from_records(vec![
            Record::new(&b"x"[..], &b"3"[..]),
            Record::new(&b"z"[..], &b"4"[..]),
        ]);
        let merged = Segment::merge(&[a, b]);
        let folded = fold_segment(merged, 2, &sum_combiner(), 0.5);
        assert_eq!(folded.records, 3, "x collapses, y and z survive");
        let recs = folded.to_records().unwrap();
        assert_eq!(recs[0].key, Bytes::from_static(b"x"));
        assert_eq!(recs[0].value, Bytes::from_static(b"4"));
    }

    #[test]
    fn synthetic_fold_keeps_the_peak_source() {
        let merged = Segment::synthetic(100, 1000);
        let folded = fold_segment(merged, 40, &sum_combiner(), 0.05);
        assert_eq!(folded.records, 40, "shared-vocabulary model");
        assert_eq!(folded.bytes, 400);
    }

    #[test]
    fn synthetic_fold_floors_at_combine_ratio() {
        let merged = Segment::synthetic(100, 1000);
        let folded = fold_segment(merged, 10, &sum_combiner(), 0.5);
        assert_eq!(folded.records, 50, "ratio floor dominates a small peak");
    }

    #[test]
    fn node_lost_clears_staging_state() {
        let eng = NodeCombinerEngine::new();
        {
            let mut jobs = eng.jobs.borrow_mut();
            let st = jobs.entry(JobId(0)).or_default();
            st.owner.insert(0, 1);
            st.owner.insert(1, 2);
            st.pending.entry(1).or_default();
        }
        eng.node_lost(1);
        let jobs = eng.jobs.borrow();
        let st = jobs.get(&JobId(0)).unwrap();
        assert_eq!(st.owner.len(), 1);
        assert_eq!(st.owner.get(&1), Some(&2));
        assert!(st.pending.is_empty());
    }
}
