//! # rmr-core — RDMA-based Hadoop MapReduce (the paper's contribution)
//!
//! A complete MapReduce engine over the simulated substrates, with the three
//! shuffle designs the paper evaluates:
//!
//! * **Vanilla Hadoop 0.20** — HTTP-over-sockets copiers, two-level disk
//!   merge, and the shuffle→merge→reduce barrier ([`reduce::vanilla`]).
//! * **Hadoop-A** (Wang et al., SC'11) — verbs transport, network-levitated
//!   merge with fixed kv-count packets, no server-side cache
//!   ([`reduce::rdma`]).
//! * **OSU-IB** — the paper's design: UCR RDMA shuffle, TaskTracker-side
//!   [`prefetch::PrefetchCache`] + `MapOutputPrefetcher`, byte-budgeted
//!   packets, and full shuffle/merge/reduce overlap ([`reduce::rdma`]).
//!
//! Entry points: [`runtime::Runtime`] for a persistent multi-job cluster
//! (submit/poll/join over shared TaskTrackers and task slots), or the
//! single-job wrapper [`job::run_job`], both on a [`cluster::Cluster`]
//! with a [`config::JobConf`] and [`spec::JobSpec`].
//!
//! The data plane is dual: tests and examples run *real* records through
//! sort/partition/merge/validate; paper-scale benchmarks run the same code
//! paths with counts only ([`record::RunData`]).

pub mod cluster;
pub mod combine;
pub mod config;
pub mod engine;
pub mod faults;
pub mod job;
pub mod jobtracker;
pub mod mapoutput;
pub mod maptask;
pub mod merge;
pub mod prefetch;
pub mod proto;
pub mod record;
pub mod reduce;
pub mod runtime;
pub mod spec;
pub mod tasktracker;
pub mod timeline;

pub use cluster::{Cluster, NodeHandle, NodeSpec};
pub use config::{CpuCosts, JobConf, ShuffleKind};
pub use engine::ShuffleEngine;
pub use faults::{FaultEvent, FaultPlan, NodeLiveness};
pub use job::{run_job, run_job_with_faults, JobResult};
pub use record::{
    decode_records, encode_records, HashPartitioner, Partitioner, Record, Segment,
    TotalOrderPartitioner,
};
pub use runtime::{CapacityPlan, JobId, QueueShare, Runtime, SchedulePolicy, StateFootprint};
pub use spec::JobSpec;
