//! The reduce-side streaming merge (§III-B-2, "Faster Merge").
//!
//! Both RDMA designs merge the heads of all map-output segments through a
//! priority queue, emitting globally sorted key-value pairs into the
//! `DataToReduceQueue` while later packets are still in flight. The
//! correctness rule is the one the paper states: the merge may only extract
//! while *every* non-exhausted source has data available — when "the number
//! of key-value pairs from a particular map decreases to zero", extraction
//! pauses until that map's next packet arrives.
//!
//! [`StreamingMerge`] is a plain synchronous data structure; the shuffle
//! engines drive it and do the fetching/awaiting around it. It supports both
//! data planes: real packets heap-merge by key; synthetic packets emit
//! proportionally to each source's remaining share (the fluid limit of a
//! merge over uniformly distributed keys — exactly TeraGen/RandomWriter
//! key distributions).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bytes::Bytes;

use crate::record::{Record, RunData, Segment};

/// What [`StreamingMerge::emit`] produced.
#[derive(Debug)]
pub enum Emit {
    /// Merged, globally sorted output.
    Data(Segment),
    /// No progress possible: these sources are dry but not exhausted.
    Stalled(Vec<usize>),
    /// Every source fully consumed and emitted.
    Done,
}

struct Source {
    expected_records: u64,
    appended_records: u64,
    consumed_records: u64,
    consumed_bytes_in_head: u64,
    /// FIFO of delivered, not-yet-fully-consumed packets.
    packets: VecDeque<Segment>,
    /// Index into the head packet (real mode).
    head_idx: usize,
}

impl Source {
    fn available(&self) -> u64 {
        self.appended_records - self.consumed_records
    }

    fn exhausted(&self) -> bool {
        self.consumed_records >= self.expected_records
    }

    /// The current head record (real mode; None if dry).
    fn head(&self) -> Option<&Record> {
        let pkt = self.packets.front()?;
        match &pkt.data {
            RunData::Real { recs, start, end } => {
                let i = start + self.head_idx;
                if i < *end {
                    Some(&recs[i])
                } else {
                    None
                }
            }
            RunData::Synthetic { .. } => None,
        }
    }

    /// Consumes the head record (real mode), returning it.
    fn pop_real(&mut self) -> Record {
        let pkt = self.packets.front().expect("pop from dry source");
        let rec = match &pkt.data {
            RunData::Real { recs, start, .. } => recs[start + self.head_idx].clone(),
            RunData::Synthetic { .. } => unreachable!("pop_real on synthetic"),
        };
        self.head_idx += 1;
        self.consumed_records += 1;
        if self.head_idx as u64 >= pkt.records {
            self.packets.pop_front();
            self.head_idx = 0;
        }
        rec
    }

    /// Consumes `n` records from the packet FIFO (synthetic mode), returning
    /// bytes consumed (proportional within partially consumed packets).
    fn pop_synthetic(&mut self, mut n: u64) -> u64 {
        let mut bytes = 0u64;
        while n > 0 {
            let pkt = self.packets.front_mut().expect("pop from dry source");
            let pkt_consumed = self.head_idx as u64;
            let left_in_pkt = pkt.records - pkt_consumed;
            let take = n.min(left_in_pkt);
            let b = if take == left_in_pkt {
                pkt.bytes - self.consumed_bytes_in_head
            } else {
                (pkt.bytes as u128 * take as u128 / pkt.records as u128) as u64
            };
            bytes += b;
            self.consumed_bytes_in_head += b;
            self.head_idx += take as usize;
            self.consumed_records += take;
            n -= take;
            if self.head_idx as u64 >= pkt.records {
                self.packets.pop_front();
                self.head_idx = 0;
                self.consumed_bytes_in_head = 0;
            }
        }
        bytes
    }
}

/// Head-of-source entry in the real-mode merge heap: the minimum buffered
/// key of one source. Ties break on source index, matching the scan order
/// the merge used before it was heap-based.
#[derive(PartialEq, Eq)]
struct HeadKey {
    key: Bytes,
    src: usize,
}

impl Ord for HeadKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.key, self.src).cmp(&(&other.key, other.src))
    }
}

impl PartialOrd for HeadKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority-queue merge over incrementally delivered packet streams.
///
/// The extraction stall rule ("pause while any non-exhausted source is
/// dry") is tracked incrementally in `dry_count`, and real-mode extraction
/// pops a min-heap of buffered head keys — both O(log k) per record instead
/// of a scan over all k sources per record.
pub struct StreamingMerge {
    sources: Vec<Source>,
    real: Option<bool>,
    emitted_records: u64,
    emitted_bytes: u64,
    /// Number of sources that are dry (not exhausted, nothing buffered).
    /// Invariant: equals the count the scan in [`Self::dry_sources`] finds.
    dry_count: usize,
    /// Real mode only: one entry per source that has a buffered head.
    heads: BinaryHeap<Reverse<HeadKey>>,
}

impl StreamingMerge {
    /// Creates a merge expecting, per source, the given total record count.
    pub fn new(expected_records: Vec<u64>) -> Self {
        let sources: Vec<Source> = expected_records
            .into_iter()
            .map(|expected_records| Source {
                expected_records,
                appended_records: 0,
                consumed_records: 0,
                consumed_bytes_in_head: 0,
                packets: VecDeque::new(),
                head_idx: 0,
            })
            .collect();
        // Every source expecting data starts dry; zero-record sources are
        // born exhausted.
        let dry_count = sources.iter().filter(|s| !s.exhausted()).count();
        let heads = BinaryHeap::with_capacity(sources.len());
        StreamingMerge {
            sources,
            real: None,
            emitted_records: 0,
            emitted_bytes: 0,
            dry_count,
            heads,
        }
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Records emitted so far.
    pub fn emitted_records(&self) -> u64 {
        self.emitted_records
    }

    /// Bytes emitted so far.
    pub fn emitted_bytes(&self) -> u64 {
        self.emitted_bytes
    }

    /// Delivers a shuffle packet for `source`.
    pub fn append(&mut self, source: usize, packet: Segment) {
        if packet.records == 0 {
            return;
        }
        let is_real = packet.is_real();
        match self.real {
            None => self.real = Some(is_real),
            Some(r) => assert_eq!(r, is_real, "mixed real/synthetic packets"),
        }
        let s = &mut self.sources[source];
        let was_dry = !s.exhausted() && s.available() == 0;
        let had_head = !s.packets.is_empty();
        s.appended_records += packet.records;
        assert!(
            s.appended_records <= s.expected_records,
            "source {source} over-delivered: {} > {}",
            s.appended_records,
            s.expected_records
        );
        s.packets.push_back(packet);
        if was_dry {
            self.dry_count -= 1;
        }
        if is_real && !had_head {
            let key = self.sources[source]
                .head()
                .expect("appended head")
                .key
                .clone();
            self.heads.push(Reverse(HeadKey { key, src: source }));
        }
    }

    /// Sources whose buffered (unconsumed) records are below `watermark` and
    /// which still expect more data — the engine's refill set.
    pub fn sources_below(&self, watermark: u64) -> Vec<usize> {
        self.sources
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.exhausted()
                    && s.available() < watermark
                    && s.appended_records < s.expected_records
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Debug view of one source: (expected, appended, consumed) records.
    pub fn source_debug(&self, i: usize) -> (u64, u64, u64) {
        let s = &self.sources[i];
        (s.expected_records, s.appended_records, s.consumed_records)
    }

    /// True once everything expected has been emitted.
    pub fn done(&self) -> bool {
        self.sources.iter().all(Source::exhausted)
    }

    /// The sources currently blocking extraction (dry but not exhausted).
    /// Only built when a stall is actually reported.
    fn dry_sources(&self) -> Vec<usize> {
        self.sources
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.exhausted() && s.available() == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Extracts up to `max_records` merged records.
    pub fn emit(&mut self, max_records: u64) -> Emit {
        if self.done() {
            return Emit::Done;
        }
        if self.dry_count > 0 {
            return Emit::Stalled(self.dry_sources());
        }
        let seg = match self.real {
            Some(true) => self.emit_real(max_records),
            // Synthetic (or nothing appended yet, which can't happen: dry
            // check above would have fired).
            _ => self.emit_synthetic(max_records),
        };
        if seg.records == 0 {
            // All sources dry at zero-progress: report who needs data.
            return Emit::Stalled(self.dry_sources());
        }
        self.emitted_records += seg.records;
        self.emitted_bytes += seg.bytes;
        Emit::Data(seg)
    }

    fn emit_real(&mut self, max_records: u64) -> Segment {
        let mut out = Vec::new();
        while (out.len() as u64) < max_records {
            // Extraction is only safe while every non-exhausted source has a
            // buffered head.
            if self.dry_count > 0 {
                break;
            }
            // The heap holds exactly one entry per source with a buffered
            // head, so its minimum is the global minimum head key.
            let Some(Reverse(top)) = self.heads.pop() else {
                break;
            };
            let src = top.src;
            out.push(self.sources[src].pop_real());
            let s = &self.sources[src];
            match s.head() {
                Some(h) => {
                    let key = h.key.clone();
                    self.heads.push(Reverse(HeadKey { key, src }));
                }
                None => {
                    if !s.exhausted() {
                        self.dry_count += 1;
                    }
                }
            }
        }
        Segment::from_sorted(out)
    }

    fn emit_synthetic(&mut self, max_records: u64) -> Segment {
        let seg = self.emit_synthetic_inner(max_records);
        // A synthetic draw touches many sources per batch; recount dryness
        // once per batch instead of tracking every pop.
        self.dry_count = self
            .sources
            .iter()
            .filter(|s| !s.exhausted() && s.available() == 0)
            .count();
        seg
    }

    fn emit_synthetic_inner(&mut self, max_records: u64) -> Segment {
        // Fluid limit: emission draws from each source proportionally to its
        // remaining share; any source running dry caps the batch.
        let total_remaining: u64 = self
            .sources
            .iter()
            .map(|s| s.expected_records - s.consumed_records)
            .sum();
        if total_remaining == 0 {
            return Segment::empty();
        }
        let mut feasible = max_records.min(total_remaining);
        for s in &self.sources {
            let rem = s.expected_records - s.consumed_records;
            if rem == 0 {
                continue;
            }
            // Largest E such that E * rem / total ≤ available.
            let cap = (s.available() as u128 * total_remaining as u128 / rem as u128) as u64;
            feasible = feasible.min(cap);
        }
        if feasible == 0 {
            // Can't take a proportional slice, but per the stall rule we may
            // still take single records from the fullest source(s) — emulate
            // the PQ draining whichever head happens to be minimal. Take one
            // record from the source with the most available.
            let i = self
                .sources
                .iter()
                .enumerate()
                .filter(|(_, s)| s.available() > 0)
                .max_by_key(|(_, s)| s.available())
                .map(|(i, _)| i);
            return match i {
                Some(i) => {
                    let bytes = self.sources[i].pop_synthetic(1);
                    Segment::synthetic(1, bytes)
                }
                None => Segment::empty(),
            };
        }
        // Distribute `feasible` across sources by remaining share.
        let mut taken_total = 0u64;
        let mut bytes_total = 0u64;
        let n = self.sources.len();
        for idx in 0..n {
            let rem = self.sources[idx].expected_records - self.sources[idx].consumed_records;
            let mut take = (feasible as u128 * rem as u128 / total_remaining as u128) as u64;
            take = take.min(self.sources[idx].available());
            if take > 0 {
                bytes_total += self.sources[idx].pop_synthetic(take);
                taken_total += take;
            }
        }
        // Rounding residue: top up from sources with availability.
        let mut residue = feasible - taken_total;
        let mut idx = 0;
        while residue > 0 && idx < n {
            let avail = self.sources[idx].available();
            if avail > 0 {
                let take = avail.min(residue);
                bytes_total += self.sources[idx].pop_synthetic(take);
                taken_total += take;
                residue -= take;
            }
            idx += 1;
        }
        Segment::synthetic(taken_total, bytes_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(k: u32) -> Record {
        Record::new(k.to_be_bytes().to_vec(), Bytes::from_static(b"v"))
    }

    fn real_packet(keys: &[u32]) -> Segment {
        Segment::from_sorted(keys.iter().map(|&k| rec(k)).collect())
    }

    #[test]
    fn real_merge_produces_global_order_across_packets() {
        let mut m = StreamingMerge::new(vec![4, 4]);
        m.append(0, real_packet(&[1, 5]));
        m.append(1, real_packet(&[2, 3]));
        let mut out = Vec::new();
        // First emit: both sources have data; may emit until someone dries.
        if let Emit::Data(seg) = m.emit(100) {
            out.extend(
                seg.iter_real()
                    .map(|r| u32::from_be_bytes(r.key[..4].try_into().unwrap())),
            );
        }
        // Source 1 dry after 2,3 consumed... emit stops when its buffer
        // empties (5 can't be emitted before knowing source 1's next key).
        assert_eq!(out, vec![1, 2, 3]);
        match m.emit(100) {
            Emit::Stalled(s) => assert_eq!(s, vec![1]),
            other => panic!("expected stall, got {other:?}"),
        }
        m.append(1, real_packet(&[4, 9]));
        m.append(0, real_packet(&[7, 8]));
        let mut rest = Vec::new();
        loop {
            match m.emit(100) {
                Emit::Data(seg) => rest.extend(
                    seg.iter_real()
                        .map(|r| u32::from_be_bytes(r.key[..4].try_into().unwrap())),
                ),
                Emit::Done => break,
                Emit::Stalled(s) => panic!("unexpected stall on {s:?}"),
            }
        }
        assert_eq!(rest, vec![4, 5, 7, 8, 9]);
        assert_eq!(m.emitted_records(), 8);
    }

    #[test]
    fn stall_until_first_packets_arrive() {
        let mut m = StreamingMerge::new(vec![2, 2]);
        match m.emit(10) {
            Emit::Stalled(s) => assert_eq!(s, vec![0, 1]),
            other => panic!("{other:?}"),
        }
        m.append(0, real_packet(&[1, 2]));
        match m.emit(10) {
            Emit::Stalled(s) => assert_eq!(s, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synthetic_merge_emits_proportionally_and_stalls() {
        let mut m = StreamingMerge::new(vec![100, 100]);
        m.append(0, Segment::synthetic(10, 1_000));
        m.append(1, Segment::synthetic(10, 1_000));
        match m.emit(1_000) {
            Emit::Data(seg) => {
                // Proportional: both sources equally loaded → drains both.
                assert_eq!(seg.records, 20);
                assert_eq!(seg.bytes, 2_000);
            }
            other => panic!("{other:?}"),
        }
        match m.emit(1_000) {
            Emit::Stalled(s) => assert_eq!(s, vec![0, 1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synthetic_merge_capped_by_lean_source() {
        let mut m = StreamingMerge::new(vec![100, 100]);
        m.append(0, Segment::synthetic(50, 5_000));
        m.append(1, Segment::synthetic(2, 200));
        match m.emit(1_000) {
            Emit::Data(seg) => {
                // Proportional draw: source 1 has 2 available of 100
                // remaining → batch ≈ 4 total.
                assert!(seg.records <= 4, "got {}", seg.records);
                assert!(seg.records >= 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_delivery_then_done() {
        let mut m = StreamingMerge::new(vec![3, 2]);
        m.append(0, Segment::synthetic(3, 300));
        m.append(1, Segment::synthetic(2, 200));
        let mut recs = 0;
        let mut bytes = 0;
        loop {
            match m.emit(2) {
                Emit::Data(s) => {
                    recs += s.records;
                    bytes += s.bytes;
                }
                Emit::Done => break,
                Emit::Stalled(s) => panic!("stall {s:?}"),
            }
        }
        assert_eq!(recs, 5);
        assert_eq!(bytes, 500);
        assert!(m.done());
    }

    #[test]
    fn sources_below_reports_refill_set() {
        let mut m = StreamingMerge::new(vec![10, 10, 3]);
        m.append(0, Segment::synthetic(8, 80));
        m.append(1, Segment::synthetic(1, 10));
        m.append(2, Segment::synthetic(3, 30)); // fully delivered
        assert_eq!(m.sources_below(4), vec![1]);
    }

    #[test]
    #[should_panic(expected = "over-delivered")]
    fn over_delivery_is_rejected() {
        let mut m = StreamingMerge::new(vec![1]);
        m.append(0, Segment::synthetic(2, 20));
    }

    #[test]
    fn zero_record_packets_are_ignored() {
        let mut m = StreamingMerge::new(vec![1]);
        m.append(0, Segment::empty());
        match m.emit(1) {
            Emit::Stalled(s) => assert_eq!(s, vec![0]),
            other => panic!("{other:?}"),
        }
    }
}
