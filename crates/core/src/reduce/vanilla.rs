//! The stock Hadoop 0.20 reduce side (§III-A): HTTP copiers, in-memory
//! merger, local-FS merger, and the shuffle→merge→reduce *barrier*.
//!
//! Copier threads fetch whole map-output partitions over socket
//! connections. Small segments land in the in-memory shuffle buffer; when
//! it passes the threshold, the In-Memory Merger flushes a merged run to
//! local disk. Oversized segments go straight to disk. The Local FS Merger
//! keeps the number of on-disk runs bounded by `io.sort.factor`. Only after
//! every map output has been fetched and merged down does the reduce
//! function start — the implicit barrier the paper's design removes.
//!
//! Fault handling is *in-band*, like real 0.20: a dead server shows up as a
//! refused connection or a closed socket, the copier backs off and re-polls
//! the JobTracker, and the fetch retries wherever the map re-executed
//! (latest completion event wins). Already-fetched segments survive — they
//! live in the reducer's own memory and local disk.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_des::SimDuration;
use rmr_obs::Ev;

use crate::cluster::NodeHandle;
use crate::proto::{PacketBudget, ShufMsg};
use crate::record::Segment;
use crate::reduce::common::{poll_events, ReduceCtx, ReduceError, ReduceSink, ReduceStats};
use crate::tasktracker::TtServerHandle;

struct VanillaState {
    /// In-memory segments with their buffer-space permits.
    inmem: Vec<(Segment, Permit)>,
    inmem_bytes: u64,
    /// On-disk merged runs: (file name, contents).
    disk_runs: Vec<(String, Segment)>,
    run_seq: usize,
    fetched: usize,
    shuffled_bytes: u64,
}

/// Latest-wins serving location per map, shared between the event fetcher
/// (writer) and the copiers (readers, and writers again on retry polls).
type Locations = Rc<RefCell<BTreeMap<usize, usize>>>;

/// Polls the JobTracker through a cursor shared by the event fetcher and
/// every retrying copier, folding new events into `locations` latest-wins.
async fn poll_shared(
    ctx: &ReduceCtx,
    node: &NodeHandle,
    cursor: &Rc<Cell<usize>>,
    locations: &Locations,
) -> Vec<(usize, usize)> {
    let mut c = cursor.get();
    let events = poll_events(&ctx.cluster, &ctx.jt, node, &mut c).await;
    // A concurrent poller may have advanced further while this RPC was on
    // the wire; never move the shared cursor backwards.
    if c > cursor.get() {
        cursor.set(c);
    }
    for (m, t) in &events {
        locations.borrow_mut().insert(*m, *t);
    }
    events
}

/// Runs one vanilla ReduceTask to completion. Always `Ok`: fetch failures
/// are absorbed in-band by copier retries, never surfaced as attempt death.
pub async fn run_reduce_vanilla(ctx: ReduceCtx) -> Result<ReduceStats, ReduceError> {
    let sim = ctx.cluster.sim.clone();
    let conf = Rc::clone(&ctx.conf);
    let node = ctx.tt.node.clone();
    let r_idx = ctx.reduce_idx;
    let mem = Semaphore::new_named(&format!("r{r_idx}-shuffle-buffer"), conf.shuffle_buffer);
    let state = Rc::new(RefCell::new(VanillaState {
        inmem: Vec::new(),
        inmem_bytes: 0,
        disk_runs: Vec::new(),
        run_seq: 0,
        fetched: 0,
        shuffled_bytes: 0,
    }));

    let locations: Locations = Rc::new(RefCell::new(BTreeMap::new()));
    let cursor = Rc::new(Cell::new(0usize));

    // Map Completion Fetcher: poll the JobTracker and feed the copiers.
    // Each map is enqueued once, on its *first* completion event; a
    // re-execution event only refreshes the serving location.
    let (map_tx, map_rx) = channel_named::<usize>(&format!("r{r_idx}-map-events"));
    {
        let ctx = ctx.clone();
        let node = node.clone();
        let sim2 = sim.clone();
        let locations = Rc::clone(&locations);
        let cursor = Rc::clone(&cursor);
        sim.spawn_named(format!("r{r_idx}-event-fetcher"), async move {
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            while seen.len() < ctx.total_maps {
                for (m, _) in poll_shared(&ctx, &node, &cursor, &locations).await {
                    if seen.insert(m) {
                        let _ = map_tx.send_now(m);
                    }
                }
                sim2.sleep(ctx.conf.event_poll).await;
            }
        })
        .detach();
    }

    // Copier pool.
    let mut copiers = Vec::new();
    for i in 0..conf.parallel_copies.max(1) {
        let ctx = ctx.clone();
        let state = Rc::clone(&state);
        let mem = mem.clone();
        let map_rx = map_rx.clone();
        let locations = Rc::clone(&locations);
        let cursor = Rc::clone(&cursor);
        copiers.push(sim.spawn_named(format!("r{r_idx}-copier-{i}"), async move {
            while let Some(map_idx) = map_rx.recv().await {
                fetch_with_retry(&ctx, &state, &mem, &locations, &cursor, map_idx).await;
            }
        }));
    }
    drop(map_rx);
    for c in copiers {
        c.await;
    }
    let shuffle_end_s = sim.now().as_secs_f64();

    // ---- Barrier: final merge down to io.sort.factor streams. ----
    let factor = conf.io_sort_factor.max(2);
    loop {
        let n_runs = {
            let st = state.borrow();
            st.disk_runs.len() + usize::from(!st.inmem.is_empty())
        };
        if n_runs <= factor {
            break;
        }
        merge_smallest_disk_runs(&ctx, &state, factor).await;
    }
    let merge_end_s = sim.now().as_secs_f64();

    // ---- Reduce pass: stream the final k-way merge into the sink. ----
    let (disk_files, all_segs, disk_bytes): (Vec<String>, Vec<Segment>, u64) = {
        let mut st = state.borrow_mut();
        let mut files = Vec::new();
        let mut segs = Vec::new();
        let mut disk_bytes = 0;
        for (f, s) in st.disk_runs.drain(..) {
            disk_bytes += s.bytes;
            files.push(f);
            segs.push(s);
        }
        for (s, permit) in st.inmem.drain(..) {
            segs.push(s);
            drop(permit);
        }
        (files, segs, disk_bytes)
    };
    let total_records: u64 = all_segs.iter().map(|s| s.records).sum();
    let total_bytes: u64 = all_segs.iter().map(|s| s.bytes).sum();
    let k = all_segs.len().max(2) as f64;

    let mut sink = ReduceSink::open(&ctx.cluster, &conf, &ctx.spec, &node, ctx.reduce_idx).await;
    if total_records > 0 {
        let merged = Segment::merge(&all_segs);
        let mut readers: Vec<_> = disk_files
            .iter()
            .map(|f| node.fs.reader(f).expect("run file"))
            .collect();
        let mut cursor = crate::record::SegmentCursor::new(merged);
        let disk_frac = if total_bytes > 0 {
            disk_bytes as f64 / total_bytes as f64
        } else {
            0.0
        };
        let batch_bytes = conf.stream_chunk * readers.len().max(1) as u64;
        let mut disk_read_budget = 0.0f64;
        while !cursor.exhausted() {
            let batch = cursor.take_bytes(batch_bytes);
            // Charge the disk reads feeding this batch, spread across runs.
            disk_read_budget += batch.bytes as f64 * disk_frac;
            if !readers.is_empty() {
                let per = (disk_read_budget / readers.len() as f64) as u64;
                if per > 0 {
                    let mut legs = Vec::new();
                    for r in readers.iter_mut() {
                        let want = per.min(r.remaining().unwrap_or(0));
                        if want > 0 {
                            legs.push(async move {
                                r.read_exact(want).await.expect("run read");
                            });
                        }
                    }
                    disk_read_budget -= (per * disk_files.len() as u64) as f64;
                    rmr_des::sync::join_all(legs).await;
                }
            }
            // Final merge CPU for this batch.
            node.compute(batch.records as f64 * k.log2() * conf.costs.sort_per_record_level)
                .await;
            ctx.tt.obs().emit(|| Ev::MergeBatch {
                node: ctx.tt.idx,
                job: ctx.job.0,
                reduce: ctx.reduce_idx,
                records: batch.records,
                bytes: batch.bytes,
            });
            sink.consume(batch).await;
        }
    }
    let (in_records, _in_bytes, out_bytes) = sink.finish().await;
    // Clean up run files.
    for f in &disk_files {
        let _ = node.fs.delete(f);
    }

    let st = state.borrow();
    Ok(ReduceStats {
        shuffle_end_s,
        merge_end_s,
        reduce_end_s: sim.now().as_secs_f64(),
        shuffled_bytes: st.shuffled_bytes,
        reduced_records: in_records,
        output_bytes: out_bytes,
    })
}

/// Fetches one map's partition, retrying in-band on server death: back off
/// exponentially, re-poll the event log for the map's new home (it
/// re-executes elsewhere after node loss), and fetch again.
async fn fetch_with_retry(
    ctx: &ReduceCtx,
    state: &Rc<RefCell<VanillaState>>,
    mem: &Semaphore,
    locations: &Locations,
    cursor: &Rc<Cell<usize>>,
    map_idx: usize,
) {
    let sim = &ctx.cluster.sim;
    let mut backoff = ctx.conf.event_poll;
    let cap = SimDuration::from_secs_f64(30.0);
    loop {
        let tt_idx = *locations
            .borrow()
            .get(&map_idx)
            .expect("map enqueued before its completion event");
        if fetch_one(ctx, state, mem, map_idx, tt_idx).await.is_ok() {
            return;
        }
        sim.metrics().incr("reduce.fetch_failures");
        sim.sleep(backoff).await;
        backoff = (backoff * 2).min(cap);
        // The re-executed map's completion event carries its new location.
        let _ = poll_shared(ctx, &ctx.tt.node, cursor, locations).await;
    }
}

/// Fetches one whole map-output partition over HTTP and routes it to memory
/// or disk, running the mergers as thresholds trip. `Err` = the server died
/// (refused or dropped the connection); nothing was committed.
async fn fetch_one(
    ctx: &ReduceCtx,
    state: &Rc<RefCell<VanillaState>>,
    mem: &Semaphore,
    map_idx: usize,
    tt_idx: usize,
) -> Result<(), ()> {
    let conf = &ctx.conf;
    let node = &ctx.tt.node;
    let server = {
        let servers = ctx.servers.borrow();
        let TtServerHandle::Http(server) = &servers[tt_idx] else {
            panic!("vanilla reducer needs HTTP servers");
        };
        server.clone()
    };
    ctx.tt.obs().emit(|| Ev::ShuffleRequest {
        node: ctx.tt.idx,
        server: tt_idx,
        job: ctx.job.0,
        map_idx,
        reduce: ctx.reduce_idx,
    });
    // One HTTP connection per fetch (0.20 behaviour). A dead TaskTracker
    // refuses the connection (its listener died with it).
    let Some(conn) = server.try_connect(node.id).await else {
        return Err(());
    };
    if conn
        .send(ShufMsg::Request {
            job: ctx.job,
            map_idx,
            reduce: ctx.reduce_idx,
            attempt: ctx.attempt,
            budget: PacketBudget::Full,
        })
        .await
        .is_err()
    {
        return Err(());
    }
    let mut packets = Vec::new();
    let mut bytes = 0u64;
    loop {
        let Some(ShufMsg::Response {
            packet,
            remaining_records,
            ..
        }) = conn.recv().await
        else {
            return Err(()); // server died mid-stream; retry from scratch
        };
        bytes += packet.bytes;
        if packet.records > 0 {
            packets.push(packet);
        }
        if remaining_records == 0 {
            break;
        }
    }
    drop(conn);
    let seg = Segment::concat(packets);
    {
        let mut st = state.borrow_mut();
        st.fetched += 1;
        st.shuffled_bytes += bytes;
    }
    ctx.cluster
        .sim
        .metrics()
        .add("reduce.shuffled_bytes", bytes as f64);

    // Memory or disk?
    let seg_limit = (conf.shuffle_buffer as f64 * conf.inmem_segment_limit) as u64;
    let to_memory = seg.bytes <= seg_limit;
    let permit = if to_memory {
        mem.try_acquire(seg.bytes)
    } else {
        None
    };
    match permit {
        Some(p) => {
            let over = {
                let mut st = state.borrow_mut();
                st.inmem_bytes += seg.bytes;
                st.inmem.push((seg, p));
                let threshold = (conf.shuffle_buffer as f64 * conf.inmem_merge_threshold) as u64;
                st.inmem_bytes > threshold
            };
            if over {
                merge_inmem_to_disk(ctx, state).await;
            }
        }
        None => {
            // Straight to disk.
            let file = {
                let mut st = state.borrow_mut();
                st.run_seq += 1;
                format!("{}_r{}_seg{}", ctx.job, ctx.reduce_idx, st.run_seq)
            };
            let w = node.fs.writer(&file).expect("run file");
            w.append(seg.bytes).await.expect("run write");
            ctx.tt.obs().emit(|| Ev::Spill {
                node: ctx.tt.idx,
                job: ctx.job.0,
                reduce: ctx.reduce_idx,
                bytes: seg.bytes,
            });
            node.compute(conf.costs.serde_per_byte * seg.bytes as f64)
                .await;
            state.borrow_mut().disk_runs.push((file, seg));
            let too_many = state.borrow().disk_runs.len() >= 2 * conf.io_sort_factor - 1;
            if too_many {
                merge_smallest_disk_runs(ctx, state, conf.io_sort_factor).await;
            }
        }
    }
    Ok(())
}

/// The In-Memory Merger: merges every in-memory segment into one on-disk
/// run, freeing the shuffle buffer.
async fn merge_inmem_to_disk(ctx: &ReduceCtx, state: &Rc<RefCell<VanillaState>>) {
    let node = &ctx.tt.node;
    let conf = &ctx.conf;
    let (segs, permits): (Vec<Segment>, Vec<Permit>) = {
        let mut st = state.borrow_mut();
        if st.inmem.is_empty() {
            return;
        }
        st.inmem_bytes = 0;
        st.inmem.drain(..).unzip()
    };
    let merged = Segment::merge(&segs);
    let k = segs.len().max(2) as f64;
    node.compute(merged.records as f64 * k.log2() * conf.costs.sort_per_record_level)
        .await;
    let file = {
        let mut st = state.borrow_mut();
        st.run_seq += 1;
        format!("{}_r{}_immerge{}", ctx.job, ctx.reduce_idx, st.run_seq)
    };
    let w = node.fs.writer(&file).expect("merge run");
    w.append(merged.bytes).await.expect("merge write");
    ctx.tt.obs().emit(|| Ev::Spill {
        node: ctx.tt.idx,
        job: ctx.job.0,
        reduce: ctx.reduce_idx,
        bytes: merged.bytes,
    });
    state.borrow_mut().disk_runs.push((file, merged));
    drop(permits); // buffer space released only after the flush completes
    ctx.cluster.sim.metrics().incr("reduce.inmem_merges");
}

/// The Local FS Merger: merges the `factor` smallest on-disk runs into one
/// (read + merge CPU + write).
async fn merge_smallest_disk_runs(
    ctx: &ReduceCtx,
    state: &Rc<RefCell<VanillaState>>,
    factor: usize,
) {
    let node = &ctx.tt.node;
    let conf = &ctx.conf;
    let picked: Vec<(String, Segment)> = {
        let mut st = state.borrow_mut();
        if st.disk_runs.len() < 2 {
            return;
        }
        st.disk_runs.sort_by_key(|(_, s)| s.bytes);
        let take = factor.min(st.disk_runs.len());
        st.disk_runs.drain(..take).collect()
    };
    // Read every picked run back (concurrently).
    let mut legs = Vec::new();
    for (f, s) in &picked {
        let fs = node.fs.clone();
        let f = f.clone();
        let sz = s.bytes;
        legs.push(async move {
            let mut r = fs.reader(&f).expect("run file");
            r.read_exact(sz).await.expect("run read");
        });
    }
    rmr_des::sync::join_all(legs).await;
    let segs: Vec<Segment> = picked.iter().map(|(_, s)| s.clone()).collect();
    let merged = Segment::merge(&segs);
    let k = segs.len().max(2) as f64;
    node.compute(merged.records as f64 * k.log2() * conf.costs.sort_per_record_level)
        .await;
    let file = {
        let mut st = state.borrow_mut();
        st.run_seq += 1;
        format!("{}_r{}_fsmerge{}", ctx.job, ctx.reduce_idx, st.run_seq)
    };
    let w = node.fs.writer(&file).expect("merged run");
    w.append(merged.bytes).await.expect("merged write");
    for (f, _) in &picked {
        let _ = node.fs.delete(f);
    }
    state.borrow_mut().disk_runs.push((file, merged));
    ctx.cluster.sim.metrics().incr("reduce.disk_merges");
}
