//! Shared reduce-side machinery: the output sink (user reduce function +
//! HDFS writer) and the map-completion event poller.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use rmr_hdfs::Blob;

use crate::cluster::{Cluster, NodeHandle};
use crate::config::JobConf;
use crate::faults::NodeLiveness;
use crate::jobtracker::{CompletionEvent, JobTracker};
use crate::record::{encode_records, Record, Segment};
use crate::runtime::JobId;
use crate::spec::JobSpec;
use crate::tasktracker::{TaskTracker, TtServerHandle};

/// Why a reduce attempt could not finish; the runtime re-queues it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// A shuffle source died and its map must re-execute; the attempt
    /// restarts from scratch (partial shuffles are not checkpointed).
    SourceLost {
        /// The TaskTracker whose outputs vanished.
        tt_idx: usize,
    },
}

/// Everything a reduce engine needs to run one ReduceTask.
#[derive(Clone)]
pub struct ReduceCtx {
    /// The cluster.
    pub cluster: Cluster,
    /// Engine configuration.
    pub conf: Rc<JobConf>,
    /// The job.
    pub spec: JobSpec,
    /// Scheduling state (for event polls).
    pub jt: Rc<RefCell<JobTracker>>,
    /// Shuffle server addresses, by TaskTracker index. Behind a `RefCell`
    /// because a node restart installs a fresh server handle in place.
    pub servers: Rc<RefCell<Vec<TtServerHandle>>>,
    /// Per-TaskTracker liveness signals (out-of-band death detection for
    /// the RDMA paths, whose completion queues never close on peer death).
    pub liveness: Rc<Vec<Rc<NodeLiveness>>>,
    /// The TaskTracker this reducer runs on.
    pub tt: Rc<TaskTracker>,
    /// The job this reducer belongs to.
    pub job: JobId,
    /// This reducer's partition index.
    pub reduce_idx: usize,
    /// This attempt's launch number (monotone per partition, counting node
    /// deaths as well as fetch-failure retries). Stamped into every shuffle
    /// request so servers rewind their per-attempt serve cursors.
    pub attempt: u32,
    /// Total maps in the job.
    pub total_maps: usize,
}

/// Timing and volume results of one ReduceTask.
#[derive(Debug, Clone, Default)]
pub struct ReduceStats {
    /// Virtual time the last shuffle byte arrived.
    pub shuffle_end_s: f64,
    /// Virtual time the merge finished (vanilla: merge barrier; RDMA
    /// designs: last merged record emitted).
    pub merge_end_s: f64,
    /// Virtual time the reduce function + output write finished.
    pub reduce_end_s: f64,
    /// Intermediate bytes this reducer pulled.
    pub shuffled_bytes: u64,
    /// Records reduced.
    pub reduced_records: u64,
    /// Output bytes written to HDFS.
    pub output_bytes: u64,
}

/// Polls the JobTracker once for new map-completion events (an RPC on the
/// wire), advancing `cursor`.
pub async fn poll_events(
    cluster: &Cluster,
    jt: &Rc<RefCell<JobTracker>>,
    from: &NodeHandle,
    cursor: &mut usize,
) -> Vec<CompletionEvent> {
    cluster.net.transfer(from.id, cluster.master, 256).await;
    let (events, new_cursor) = jt.borrow().events_since(*cursor);
    *cursor = new_cursor;
    cluster
        .net
        .transfer(cluster.master, from.id, 256 + 16 * events.len() as u64)
        .await;
    events
}

/// The reduce output path: applies the user reduce function to merged,
/// sorted batches and streams the result into an HDFS writer. Handles key
/// groups that straddle batch boundaries by holding back the trailing group.
pub struct ReduceSink {
    writer: Option<rmr_hdfs::HdfsWriter>,
    node: NodeHandle,
    conf: Rc<JobConf>,
    spec: JobSpec,
    held: Vec<Record>,
    /// Records consumed (reduce input).
    pub in_records: u64,
    /// Bytes consumed.
    pub in_bytes: u64,
    /// Bytes written.
    pub out_bytes: u64,
}

impl ReduceSink {
    /// Opens the part file for `reduce_idx` under the job's output path.
    pub async fn open(
        cluster: &Cluster,
        conf: &Rc<JobConf>,
        spec: &JobSpec,
        node: &NodeHandle,
        reduce_idx: usize,
    ) -> ReduceSink {
        let path = format!("{}/part-{reduce_idx:05}", spec.output);
        // A previous attempt of this reducer may have died mid-write (node
        // kill or lost shuffle source); its partial part file is replaced.
        // Fault-free runs never take this branch — `exists` is a host-side
        // check, so their event streams are untouched.
        if cluster.hdfs.exists(&path) {
            cluster
                .hdfs
                .delete(&path, node.id)
                .await
                .expect("stale output delete");
        }
        let writer = cluster
            .hdfs
            .create_with_replication(&path, node.id, conf.output_replication)
            .await
            .expect("output create");
        ReduceSink {
            writer: Some(writer),
            node: node.clone(),
            conf: Rc::clone(conf),
            spec: spec.clone(),
            held: Vec::new(),
            in_records: 0,
            in_bytes: 0,
            out_bytes: 0,
        }
    }

    /// Consumes one merged, sorted batch.
    pub async fn consume(&mut self, seg: Segment) {
        self.in_records += seg.records;
        self.in_bytes += seg.bytes;
        let costs = &self.conf.costs;
        self.node
            .compute(
                costs.reduce_per_record * seg.records as f64
                    + costs.reduce_per_byte * seg.bytes as f64,
            )
            .await;
        if seg.is_real() {
            let mut records = std::mem::take(&mut self.held);
            records.extend(seg.iter_real().cloned());
            // Hold back the trailing key group (it may continue in the next
            // batch).
            let boundary = match records.last() {
                Some(last) => records
                    .iter()
                    .rposition(|r| r.key != last.key)
                    .map(|p| p + 1)
                    .unwrap_or(0),
                None => 0,
            };
            let rest = records.split_off(boundary);
            self.held = rest;
            self.emit_groups(records).await;
        } else {
            let out = (seg.bytes as f64 * self.spec.reduce_output_ratio) as u64;
            self.write_blob(Blob::synthetic(out)).await;
        }
    }

    async fn emit_groups(&mut self, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let out_records = match &self.spec.reducer {
            None => records,
            Some(f) => {
                let mut out = Vec::new();
                let mut i = 0;
                while i < records.len() {
                    let key = records[i].key.clone();
                    let mut values: Vec<Bytes> = Vec::new();
                    while i < records.len() && records[i].key == key {
                        values.push(records[i].value.clone());
                        i += 1;
                    }
                    out.extend(f(&key, &values));
                }
                out
            }
        };
        if out_records.is_empty() {
            return;
        }
        let data = encode_records(&out_records);
        let blob = Blob::real(data);
        self.node
            .compute(self.conf.costs.serde_per_byte * blob.len as f64)
            .await;
        self.write_blob(blob).await;
    }

    async fn write_blob(&mut self, blob: Blob) {
        self.out_bytes += blob.len;
        self.writer
            .as_mut()
            .expect("sink already finished")
            .write(blob)
            .await
            .expect("output write");
    }

    /// Flushes the held group and closes the output file. Returns
    /// (input records, input bytes, output bytes).
    pub async fn finish(mut self) -> (u64, u64, u64) {
        let held = std::mem::take(&mut self.held);
        self.emit_groups(held).await;
        self.writer
            .take()
            .expect("double finish")
            .close()
            .await
            .expect("output close");
        (self.in_records, self.in_bytes, self.out_bytes)
    }
}

#[cfg(test)]
impl JobTracker {
    /// Test helper: fabricate one completion event.
    pub fn map_completed_raw_for_test(&mut self) {
        // total_maps is 0 in the test; bypass the counters and just append.
        self.push_event_for_test(0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeSpec;
    use rmr_des::prelude::*;
    use rmr_hdfs::HdfsConfig;
    use rmr_net::FabricParams;

    fn mk() -> (Sim, Cluster) {
        let sim = Sim::new(9);
        let c = Cluster::build(
            &sim,
            FabricParams::ib_verbs_qdr(),
            &[NodeSpec::westmere_compute()],
            HdfsConfig {
                block_size: 64 << 20,
                replication: 1,
                packet_size: 1 << 20,
            },
        );
        (sim, c)
    }

    fn rec(k: &[u8], v: &[u8]) -> Record {
        Record::new(k.to_vec(), v.to_vec())
    }

    #[test]
    fn identity_sink_round_trips_records() {
        let (sim, cluster) = mk();
        let conf = Rc::new(JobConf::default());
        let spec = JobSpec::sort("/in", "/out", 10);
        let c2 = cluster.clone();
        sim.spawn(async move {
            let node = c2.workers[0].clone();
            let mut sink = ReduceSink::open(&c2, &conf, &spec, &node, 0).await;
            sink.consume(Segment::from_records(vec![
                rec(b"a", b"1"),
                rec(b"b", b"2"),
            ]))
            .await;
            sink.consume(Segment::from_records(vec![
                rec(b"b", b"3"),
                rec(b"c", b"4"),
            ]))
            .await;
            let (in_recs, _, out_bytes) = sink.finish().await;
            assert_eq!(in_recs, 4);
            assert!(out_bytes > 0);
            // Read back and check order & count.
            let mut r = c2.hdfs.open("/out/part-00000", node.id).await.unwrap();
            let mut all = Vec::new();
            while let Some(b) = r.next_block().await.unwrap() {
                all.extend(crate::record::decode_records(b.data.unwrap()));
            }
            assert_eq!(all.len(), 4);
            assert!(all.windows(2).all(|w| w[0].key <= w[1].key));
        })
        .detach();
        sim.run();
    }

    #[test]
    fn grouping_reducer_sees_whole_groups_across_batches() {
        let (sim, cluster) = mk();
        let conf = Rc::new(JobConf::default());
        let seen = Rc::new(RefCell::new(Vec::<(Vec<u8>, usize)>::new()));
        let seen2 = Rc::clone(&seen);
        let spec = JobSpec::sort("/in", "/out", 10).with_reducer(Rc::new(move |k, vs| {
            seen2.borrow_mut().push((k.to_vec(), vs.len()));
            vec![Record::new(k.clone(), Bytes::from(vs.len().to_string()))]
        }));
        let c2 = cluster.clone();
        sim.spawn(async move {
            let node = c2.workers[0].clone();
            let mut sink = ReduceSink::open(&c2, &conf, &spec, &node, 0).await;
            // Group "b" straddles the batch boundary: must be seen ONCE with
            // 3 values.
            sink.consume(Segment::from_records(vec![
                rec(b"a", b"1"),
                rec(b"b", b"2"),
            ]))
            .await;
            sink.consume(Segment::from_records(vec![
                rec(b"b", b"3"),
                rec(b"b", b"4"),
            ]))
            .await;
            sink.consume(Segment::from_records(vec![rec(b"c", b"5")]))
                .await;
            sink.finish().await;
        })
        .detach();
        sim.run();
        let seen = seen.borrow();
        assert_eq!(
            *seen,
            vec![(b"a".to_vec(), 1), (b"b".to_vec(), 3), (b"c".to_vec(), 1)]
        );
    }

    #[test]
    fn synthetic_sink_applies_output_ratio() {
        let (sim, cluster) = mk();
        let conf = Rc::new(JobConf::default());
        let spec = JobSpec::sort("/in", "/out", 100).with_ratios(1.0, 0.25);
        let c2 = cluster.clone();
        sim.spawn(async move {
            let node = c2.workers[0].clone();
            let mut sink = ReduceSink::open(&c2, &conf, &spec, &node, 1).await;
            sink.consume(Segment::synthetic(100, 10_000)).await;
            let (_, in_bytes, out_bytes) = sink.finish().await;
            assert_eq!(in_bytes, 10_000);
            assert_eq!(out_bytes, 2_500);
            assert_eq!(c2.hdfs.file_size("/out/part-00001").unwrap(), 2_500);
        })
        .detach();
        sim.run();
    }

    #[test]
    fn poll_events_advances_cursor() {
        let (sim, cluster) = mk();
        let jt = Rc::new(RefCell::new(JobTracker::new(vec![], 1, 0.0)));
        jt.borrow_mut().map_completed_raw_for_test();
        let c2 = cluster.clone();
        let jt2 = Rc::clone(&jt);
        sim.spawn(async move {
            let node = c2.workers[0].clone();
            let mut cursor = 0;
            let ev = poll_events(&c2, &jt2, &node, &mut cursor).await;
            assert_eq!(ev.len(), 1);
            let ev = poll_events(&c2, &jt2, &node, &mut cursor).await;
            assert!(ev.is_empty());
        })
        .detach();
        sim.run();
    }
}
