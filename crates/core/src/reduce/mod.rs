//! Reduce-side engines: vanilla (barrier), Hadoop-A and OSU-IB (pipelined
//! priority-queue merge over RDMA).

pub mod common;
pub mod rdma;
pub mod vanilla;

pub use common::{ReduceCtx, ReduceError, ReduceSink, ReduceStats};
