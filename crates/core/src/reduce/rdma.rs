//! The RDMA reduce side, shared by Hadoop-A and OSU-IB (§III-B).
//!
//! An `RDMACopier` connects UCR endpoints to every TaskTracker up front.
//! Packets stream into per-source buffers; a priority-queue
//! [`StreamingMerge`] extracts globally sorted batches into the bounded
//! `DataToReduceQueue`, which a concurrently running reduce consumer drains
//! — reduce is pipelined with merge and shuffle (§III-B-4), unlike
//! vanilla's barrier.
//!
//! Engine differences (§III-C):
//! * **OSU-IB** — starts pulling data as soon as each map completes
//!   (overlapping the map wave), uses byte-budgeted packets
//!   (`osu_packet_bytes`), and its server serves from the PrefetchCache.
//! * **Hadoop-A** — fetches only segment *headers* during the map wave (the
//!   levitated-merge heap is built when all headers are in), then pulls
//!   fixed kv-count packets (`hadoop_a_kv_per_packet`) that the DataEngine
//!   reads from disk per request. With large kv-pairs (the Sort benchmark)
//!   those packets are enormous, exhausting the shuffle buffer and
//!   serialising fetches — the §IV-C pathology.
//!
//! # Fault handling
//!
//! A verbs CQ never closes on peer death, so a dead TaskTracker cannot be
//! detected in-band the way vanilla's socket copiers detect it. Each copier
//! therefore watches its server's [`NodeLiveness`] signal out of band and
//! reports the death to the merge loop. Because the server-side
//! `SegmentCursor` for a partially-pulled segment dies with the node (the
//! re-executed map's server starts from offset zero), a source that already
//! delivered bytes cannot be resumed: the whole attempt returns
//! [`ReduceError::SourceLost`] and the runtime re-queues it. Sources that
//! were fully delivered before the death, and sources that had delivered
//! nothing yet (which are transparently re-homed onto the re-executed map's
//! TaskTracker), survive within the attempt.
//!
//! [`NodeLiveness`]: crate::faults::NodeLiveness

use std::cell::{Cell, RefCell};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_net::EndPoint;
use rmr_obs::Ev;

use crate::merge::{Emit, StreamingMerge};
use crate::proto::{PacketBudget, ShufMsg};
use crate::record::Segment;
use crate::reduce::common::{poll_events, ReduceCtx, ReduceError, ReduceSink, ReduceStats};
use crate::tasktracker::TtServerHandle;

/// Records per emitted merge batch.
const MERGE_BATCH_RECORDS: u64 = 16 * 1024;
/// DataToReduceQueue depth, in batches.
const REDUCE_QUEUE_DEPTH: usize = 8;

/// The capability knobs that distinguish the two RDMA designs. The engine
/// implementations pick a preset; the pipeline below branches on these
/// capabilities, never on an engine identity.
#[derive(Debug, Clone, Copy)]
pub struct RdmaVariant {
    /// Packets are byte-budgeted (`osu_packet_bytes`) rather than fixed
    /// kv-count (`hadoop_a_kv_per_packet`).
    pub byte_packets: bool,
    /// Pull data eagerly during the map wave (vs headers only, building the
    /// levitated-merge heap when all headers are in).
    pub eager_fetch: bool,
    /// Overflowing packets spill to the reducer's local disk (vs dropped
    /// and refetched from the TaskTracker).
    pub local_spill: bool,
    /// Stripe every shuffle message across the fabric's rails (multi-rail
    /// HCAs). A no-op on single-rail fabrics, so seed variants keep it off.
    pub striped: bool,
}

impl RdmaVariant {
    /// OSU-IB: byte-budgeted packets, eager overlap, local spill.
    pub fn osu_ib() -> Self {
        RdmaVariant {
            byte_packets: true,
            eager_fetch: true,
            local_spill: true,
            striped: false,
        }
    }

    /// Hadoop-A: fixed kv-count packets, header-first merge, drop-and-
    /// refetch on overflow.
    pub fn hadoop_a() -> Self {
        RdmaVariant {
            byte_packets: false,
            eager_fetch: false,
            local_spill: false,
            striped: false,
        }
    }

    /// Multi-rail OSU-IB: the same pipeline, but every reducer↔server QP
    /// stripes its wire bytes across the fabric's rails.
    pub fn multi_rail() -> Self {
        RdmaVariant {
            striped: true,
            ..RdmaVariant::osu_ib()
        }
    }
}

struct SourceState {
    tt_idx: usize,
    total_records: Option<u64>,
    total_bytes: Option<u64>,
    /// Bytes sitting in [`ShufState::pending`] for this source.
    buffered_bytes: u64,
    delivered_records: u64,
    delivered_bytes: u64,
    fully_delivered: bool,
    inflight: bool,
    /// Shuffle-buffer bytes reserved for the in-flight request.
    reserved: u64,
}

struct ShufState {
    sources: BTreeMap<usize, SourceState>,
    /// Arrived-but-not-yet-merged packets in arrival order:
    /// (map_idx, packet, spilled-to-disk flag). Draining pops from the
    /// front, so the merge feed is O(packets) instead of a scan over every
    /// source per drain.
    pending: VecDeque<(usize, Segment, bool)>,
    shuffled_bytes: u64,
    last_arrival_s: f64,
    /// Unconsumed fetched bytes (buffered + inside the merge).
    resident_bytes: u64,
    /// Bytes spilled to local disk because the buffer overflowed.
    spilled_bytes: u64,
}

/// Shuffle-buffer accounting: prefetch requests reserve space; requests that
/// unblock a stalled merge may overdraft (deadlock avoidance), and releases
/// never exceed what was reserved.
struct MemBudget {
    sem: Semaphore,
    outstanding: Cell<u64>,
}

impl MemBudget {
    fn new(bytes: u64) -> Self {
        MemBudget {
            sem: Semaphore::new(bytes),
            outstanding: Cell::new(0),
        }
    }

    fn try_reserve(&self, bytes: u64) -> bool {
        match self.sem.try_acquire(bytes) {
            Some(p) => {
                p.forget();
                self.outstanding.set(self.outstanding.get() + bytes);
                true
            }
            None => false,
        }
    }

    fn release(&self, bytes: u64) {
        let r = bytes.min(self.outstanding.get());
        self.outstanding.set(self.outstanding.get() - r);
        self.sem.release_raw(r);
    }
}

/// Finds an unrecoverable source: one that is not fully delivered and whose
/// partial bytes came from an endpoint that no longer serves them (the node
/// died, or it restarted and lost its MapOutputStore, or the map has already
/// been re-homed away from a lost incarnation — `poisoned`).
fn lost_source(
    state: &RefCell<ShufState>,
    poisoned: &BTreeSet<usize>,
    ep_dead: &dyn Fn(usize) -> bool,
) -> Option<usize> {
    let st = state.borrow();
    st.sources.iter().find_map(|(m, s)| {
        if s.fully_delivered {
            return None;
        }
        if poisoned.contains(m) {
            return Some(s.tt_idx);
        }
        if (s.delivered_records > 0 || s.delivered_bytes > 0) && ep_dead(s.tt_idx) {
            return Some(s.tt_idx);
        }
        None
    })
}

/// Runs one Hadoop-A or OSU-IB ReduceTask to completion, branching on
/// `variant`'s capabilities. `Err` means a shuffle source with partial
/// deliveries died under the attempt; the caller re-queues the whole task.
pub async fn run_reduce_rdma(
    ctx: ReduceCtx,
    variant: RdmaVariant,
) -> Result<ReduceStats, ReduceError> {
    let sim = ctx.cluster.sim.clone();
    let conf = Rc::clone(&ctx.conf);
    let node = ctx.tt.node.clone();
    let obs = ctx.tt.obs().clone();
    let my_idx = ctx.tt.idx;

    // Endpoints keyed by TaskTracker index. Unlike the fault-free design a
    // plain vector no longer works: a dead server has no endpoint, and a
    // restarted one needs a fresh connection (tracked by liveness epoch).
    let eps: Rc<RefCell<BTreeMap<usize, Rc<EndPoint<ShufMsg>>>>> =
        Rc::new(RefCell::new(BTreeMap::new()));
    let ep_epochs: Rc<RefCell<BTreeMap<usize, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let ep_dead = {
        let ep_epochs = Rc::clone(&ep_epochs);
        let liveness = Rc::clone(&ctx.liveness);
        move |tt: usize| -> bool {
            let l = &liveness[tt];
            !l.alive() || ep_epochs.borrow().get(&tt).is_none_or(|e| *e != l.epoch())
        }
    };

    let state = Rc::new(RefCell::new(ShufState {
        sources: BTreeMap::new(),
        pending: VecDeque::new(),
        shuffled_bytes: 0,
        last_arrival_s: 0.0,
        resident_bytes: 0,
        spilled_bytes: 0,
    }));
    let arrived = Notify::new_named(&format!("r{}-packet-arrived", ctx.reduce_idx));
    let mem = Rc::new(MemBudget::new(conf.shuffle_buffer));

    // Attempt-scoped shutdown for the copier daemons (they live in the
    // TaskTracker's task group, so the node's death also reaps them), and a
    // counter the copiers bump when they see their server die.
    let stop_flag = Rc::new(Cell::new(false));
    let stop_note = Notify::new_named(&format!("r{}-attempt-shutdown", ctx.reduce_idx));
    let deaths_seen = Rc::new(Cell::new(0u64));
    // Set when a request could not be sent because the source's TaskTracker
    // has no endpoint — e.g. a map re-executed on a node that was down when
    // this attempt connected up front (so no death was ever *seen* here).
    // Arms the same reconnect sweep a death does.
    let no_ep = Rc::new(Cell::new(false));
    let stop_copiers = {
        let flag = Rc::clone(&stop_flag);
        let note = stop_note.clone();
        move || {
            flag.set(true);
            note.notify_all();
        }
    };

    // Receiver: one task per endpoint, buffering packets. A packet that
    // lands when the shuffle buffer is already full cannot stay in memory:
    // it is spilled to the reducer's local disk and read back when the
    // merge consumes it — this is what breaks Hadoop-A's stage overlap when
    // its fixed-count packets are huge (§IV-C). Each copier also watches its
    // server's liveness: the CQ never closes, so death is out of band.
    let spawn_copier = {
        let state = Rc::clone(&state);
        let arrived = arrived.clone();
        let sim = sim.clone();
        let mem = Rc::clone(&mem);
        let node = node.clone();
        let conf = Rc::clone(&conf);
        let obs = obs.clone();
        let group = ctx.tt.group.clone();
        let liveness = Rc::clone(&ctx.liveness);
        let stop_flag = Rc::clone(&stop_flag);
        let stop_note = stop_note.clone();
        let deaths_seen = Rc::clone(&deaths_seen);
        let (job_id, reduce_idx) = (ctx.job, ctx.reduce_idx);
        let spill_file = format!("{}_r{}_shufspill", ctx.job, ctx.reduce_idx);
        move |tt_i: usize, ep: Rc<EndPoint<ShufMsg>>, ep_epoch: u64| {
            let state = Rc::clone(&state);
            let arrived = arrived.clone();
            let sim2 = sim.clone();
            let mem = Rc::clone(&mem);
            let node2 = node.clone();
            let conf = Rc::clone(&conf);
            let obs2 = obs.clone();
            let live = Rc::clone(&liveness[tt_i]);
            let stop_flag = Rc::clone(&stop_flag);
            let stop_note = stop_note.clone();
            let deaths_seen = Rc::clone(&deaths_seen);
            let spill_file = spill_file.clone();
            let copier_name = format!("r{reduce_idx}-rdma-copier-tt{tt_i}");
            group
                .spawn_daemon(copier_name, async move {
                    loop {
                        if stop_flag.get() {
                            break;
                        }
                        let stopped = stop_note.notified();
                        let death = live.changed.notified();
                        let msg = match select2(ep.recv(), select2(death, stopped)).await {
                            Either::Left(Some(msg)) => msg,
                            Either::Left(None) => break,
                            Either::Right(Either::Left(())) => {
                                if live.alive() && live.epoch() == ep_epoch {
                                    continue; // not our death (e.g. a later restart's kill)
                                }
                                deaths_seen.set(deaths_seen.get() + 1);
                                arrived.notify_all();
                                break;
                            }
                            Either::Right(Either::Right(())) => break,
                        };
                        let ShufMsg::Response {
                            map_idx,
                            packet,
                            remaining_records,
                            total_records,
                            total_bytes,
                            ..
                        } = msg
                        else {
                            continue;
                        };
                        let spill = {
                            let mut st = state.borrow_mut();
                            st.shuffled_bytes += packet.bytes;
                            st.last_arrival_s = sim2.now().as_secs_f64();
                            let src = st.sources.get_mut(&map_idx).expect("unknown source");
                            src.total_records = Some(total_records);
                            src.total_bytes = Some(total_bytes);
                            src.delivered_records += packet.records;
                            src.delivered_bytes += packet.bytes;
                            src.fully_delivered = remaining_records == 0;
                            // Reserved packets always fit (the budget was held for
                            // them); only overdraft packets can overflow and spill.
                            let covered = src.reserved >= packet.bytes;
                            // Balance the reservation against what actually came.
                            if src.reserved > packet.bytes {
                                mem.release(src.reserved - packet.bytes);
                            }
                            src.reserved = 0;
                            src.inflight = false;
                            let over =
                                !covered && st.resident_bytes + packet.bytes > conf.shuffle_buffer;
                            if packet.records > 0 {
                                st.resident_bytes += packet.bytes;
                                if over {
                                    st.spilled_bytes += packet.bytes;
                                }
                                let src = st.sources.get_mut(&map_idx).unwrap();
                                src.buffered_bytes += packet.bytes;
                                let bytes = packet.bytes;
                                st.pending.push_back((map_idx, packet, over));
                                over.then_some(bytes)
                            } else {
                                None
                            }
                        };
                        if let Some(bytes) = spill {
                            sim2.metrics()
                                .add("reduce.shuffle_spill_bytes", bytes as f64);
                            obs2.emit(|| Ev::Spill {
                                node: my_idx,
                                job: job_id.0,
                                reduce: reduce_idx,
                                bytes,
                            });
                            if variant.local_spill {
                                // OSU-IB reuses Hadoop's local spill machinery
                                // (§III-C-2: minimal changes to the existing merge).
                                let w = node2.fs.writer(&spill_file).expect("shuffle spill file");
                                w.append(bytes).await.expect("shuffle spill write");
                            }
                            // Hadoop-A's native-C merge has no reduce-side spill
                            // path: the overflowing packet is dropped and later
                            // refetched from the TaskTracker (charged at drain).
                        }
                        arrived.notify_all();
                    }
                })
                .detach();
        }
    };

    // Connect an endpoint to every live TaskTracker up front (§III-B-1: "one
    // RDMACopier sends such information to all available TaskTrackers").
    // Dead servers are skipped; if a source later lands on one (restart or
    // re-execution), the Phase A reconnect pass picks it up.
    {
        let n_servers = ctx.servers.borrow().len();
        let mut connected: Vec<(usize, Rc<EndPoint<ShufMsg>>, u64)> = Vec::new();
        for tt_i in 0..n_servers {
            if !ctx.liveness[tt_i].alive() {
                continue;
            }
            let epoch = ctx.liveness[tt_i].epoch();
            let connector = match &ctx.servers.borrow()[tt_i] {
                TtServerHandle::Rdma(c) => c.clone(),
                _ => panic!("RDMA reducer needs RDMA servers"),
            };
            if let Some(ep) = connector
                .try_connect_striped(node.id, variant.striped)
                .await
            {
                connected.push((tt_i, Rc::new(ep), epoch));
            }
        }
        for (tt_i, ep, epoch) in connected {
            eps.borrow_mut().insert(tt_i, Rc::clone(&ep));
            ep_epochs.borrow_mut().insert(tt_i, epoch);
            spawn_copier(tt_i, ep, epoch);
        }
    }

    let packet_budget = || {
        if variant.byte_packets {
            PacketBudget::Bytes(conf.osu_packet_bytes)
        } else {
            PacketBudget::Records(conf.hadoop_a_kv_per_packet)
        }
    };
    let est_packet_bytes = if variant.byte_packets {
        conf.osu_packet_bytes
    } else {
        conf.hadoop_a_kv_per_packet * ctx.spec.avg_record_bytes.max(1)
    };

    // Sends the next packet request for `map_idx`. `forced` bypasses the
    // memory budget (stall recovery); otherwise the request is skipped when
    // the buffer has no room. Returns false (no request) when the source's
    // TaskTracker has no live endpoint.
    let send_request = {
        let state = Rc::clone(&state);
        let eps = Rc::clone(&eps);
        let mem = Rc::clone(&mem);
        let obs = obs.clone();
        let no_ep = Rc::clone(&no_ep);
        let job = ctx.job;
        let reduce_idx = ctx.reduce_idx;
        let attempt = ctx.attempt;
        move |map_idx: usize, budget: PacketBudget, est: u64, forced: bool| -> bool {
            let mut st = state.borrow_mut();
            let src = st.sources.get_mut(&map_idx).expect("unknown source");
            if src.inflight || src.fully_delivered {
                return false;
            }
            let ep = match eps.borrow().get(&src.tt_idx) {
                Some(e) => Rc::clone(e),
                None => {
                    no_ep.set(true);
                    return false;
                }
            };
            // Refine the estimate with what the server already told us.
            let est = match src.total_bytes {
                Some(t) => est.min(t.saturating_sub(src.delivered_bytes)).max(1),
                None => est,
            };
            let reserved = if mem.try_reserve(est) {
                est
            } else if forced {
                0 // overdraft: the packet will spill on arrival if needed
            } else {
                return false;
            };
            src.reserved = reserved;
            src.inflight = true;
            let server = src.tt_idx;
            drop(st);
            obs.emit(|| Ev::ShuffleRequest {
                node: my_idx,
                server,
                job: job.0,
                map_idx,
                reduce: reduce_idx,
            });
            ep.send_nowait(ShufMsg::Request {
                job,
                map_idx,
                reduce: reduce_idx,
                attempt,
                budget,
            });
            true
        }
    };

    // ---- Phase A: discover map completions; OSU overlaps data shuffle
    // with the map wave, Hadoop-A only pulls headers. ----
    let mut cursor = 0usize;
    let mut discovered = 0usize;
    let mut phase_a_iters = 0u64;
    // Maps whose partial deliveries came from a since-lost incarnation.
    let mut poisoned: BTreeSet<usize> = BTreeSet::new();
    loop {
        for (map_idx, tt_idx) in poll_events(&ctx.cluster, &ctx.jt, &node, &mut cursor).await {
            // A repeated completion event for the same map means it was
            // re-executed after a node loss: dedup via the entry API so
            // `discovered` counts unique maps.
            let (is_new, want_request) = {
                let mut st = state.borrow_mut();
                match st.sources.entry(map_idx) {
                    Entry::Vacant(v) => {
                        v.insert(SourceState {
                            tt_idx,
                            total_records: None,
                            total_bytes: None,
                            buffered_bytes: 0,
                            delivered_records: 0,
                            delivered_bytes: 0,
                            fully_delivered: false,
                            inflight: false,
                            reserved: 0,
                        });
                        (true, true)
                    }
                    Entry::Occupied(mut e) => {
                        let s = e.get_mut();
                        if s.fully_delivered {
                            // Already fully pulled from the old incarnation;
                            // the re-execution serves other reducers.
                            (false, false)
                        } else if s.delivered_records > 0 || s.delivered_bytes > 0 {
                            // Partial data from a lost incarnation cannot be
                            // resumed (the new server's cursor starts over):
                            // the attempt must restart.
                            poisoned.insert(map_idx);
                            (false, false)
                        } else {
                            // Nothing delivered yet: re-home cleanly, dropping
                            // any request that was in flight to the dead node.
                            if s.reserved > 0 {
                                mem.release(s.reserved);
                                s.reserved = 0;
                            }
                            s.inflight = false;
                            s.tt_idx = tt_idx;
                            (false, true)
                        }
                    }
                }
            };
            if is_new {
                discovered += 1;
            }
            if want_request {
                if variant.eager_fetch {
                    send_request(map_idx, packet_budget(), est_packet_bytes, false);
                } else {
                    // Header only: first kv pair + segment metadata.
                    send_request(
                        map_idx,
                        PacketBudget::Records(1),
                        ctx.spec.avg_record_bytes,
                        true,
                    );
                }
            }
        }
        // Fault sweep — skipped entirely on the fault-free path. `no_ep`
        // also arms it: a source can live on a TaskTracker this attempt has
        // no endpoint for without ever witnessing a death (the node was down
        // at connect time and a re-executed map landed on it post-restart).
        if deaths_seen.get() > 0 || !poisoned.is_empty() || no_ep.replace(false) {
            if let Some(tt_idx) = lost_source(&state, &poisoned, &ep_dead) {
                stop_copiers();
                return Err(ReduceError::SourceLost { tt_idx });
            }
            // Reconnect to the (live) homes of still-pending sources whose
            // endpoint died — a restarted node, or a re-execution landing on
            // a TaskTracker that was down when we connected up front.
            let need: Vec<usize> = {
                let st = state.borrow();
                let mut v: Vec<usize> = st
                    .sources
                    .values()
                    .filter(|s| {
                        !s.fully_delivered && ep_dead(s.tt_idx) && ctx.liveness[s.tt_idx].alive()
                    })
                    .map(|s| s.tt_idx)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            for tt in need {
                let epoch = ctx.liveness[tt].epoch();
                let connector = match &ctx.servers.borrow()[tt] {
                    TtServerHandle::Rdma(c) => c.clone(),
                    _ => panic!("RDMA reducer needs RDMA servers"),
                };
                if let Some(ep) = connector
                    .try_connect_striped(node.id, variant.striped)
                    .await
                {
                    let ep = Rc::new(ep);
                    eps.borrow_mut().insert(tt, Rc::clone(&ep));
                    ep_epochs.borrow_mut().insert(tt, epoch);
                    spawn_copier(tt, ep, epoch);
                }
            }
        }
        // Keep the pipeline fed while maps are still finishing (OSU): pull
        // each discovered source up to its fair share of the shuffle buffer,
        // overlapping the data movement with the map wave (§III-B-4).
        if variant.eager_fetch {
            let idle: Vec<usize> = {
                let st = state.borrow();
                let target = conf.shuffle_buffer / (st.sources.len().max(8) as u64);
                st.sources
                    .iter()
                    .filter(|(_, s)| !s.inflight && !s.fully_delivered && s.buffered_bytes < target)
                    .map(|(m, _)| *m)
                    .collect()
            };
            for m in idle {
                send_request(m, packet_budget(), est_packet_bytes, false);
            }
        }
        // Done discovering once every map reported and every source has its
        // totals (needed to build the merge).
        if discovered == ctx.total_maps {
            let missing: Vec<usize> = {
                let st = state.borrow();
                st.sources
                    .iter()
                    .filter(|(_, s)| s.total_records.is_none())
                    .map(|(m, _)| *m)
                    .collect()
            };
            if missing.is_empty() {
                break;
            }
            for m in missing {
                send_request(m, packet_budget(), est_packet_bytes, true);
            }
        }
        // Wake on the next poll tick or on any packet arrival (copiers also
        // fire the arrival notify when they observe a server death).
        phase_a_iters += 1;
        if phase_a_iters.is_multiple_of(512) && std::env::var("RMR_RDMA_DEBUG").is_ok() {
            let st = state.borrow();
            let no_totals: Vec<(usize, usize, bool, bool)> = st
                .sources
                .iter()
                .filter(|(_, s)| s.total_records.is_none())
                .map(|(m, s)| (*m, s.tt_idx, s.inflight, ep_dead(s.tt_idx)))
                .collect();
            eprintln!(
                "[rdma r{} tt{}] PHASE-A iter={} discovered={}/{} deaths={} poisoned={:?} \
                 no-totals(map,tt,inflight,ep_dead)={:?}",
                ctx.reduce_idx,
                my_idx,
                phase_a_iters,
                discovered,
                ctx.total_maps,
                deaths_seen.get(),
                poisoned,
                no_totals
            );
        }
        let n = arrived.notified();
        rmr_des::sync::select2(sim.sleep(conf.event_poll), n).await;
    }

    // ---- Phase B: priority-queue merge pipelined with reduce. ----
    // No new sources appear past this point, and every non-fully-delivered
    // source has delivered at least a header — so a server death in Phase B
    // either touches only fully-delivered sources (harmless) or fails the
    // attempt; there is no Phase B re-home/reconnect path.
    let order: Vec<usize> = state.borrow().sources.keys().copied().collect();
    let dense: BTreeMap<usize, usize> = order.iter().enumerate().map(|(i, m)| (*m, i)).collect();
    let expected: Vec<u64> = {
        let st = state.borrow();
        order
            .iter()
            .map(|m| st.sources[m].total_records.unwrap())
            .collect()
    };
    let mut merge = StreamingMerge::new(expected);
    let watermark = if variant.byte_packets {
        (conf.osu_packet_bytes / ctx.spec.avg_record_bytes.max(1)).max(16)
    } else {
        conf.hadoop_a_kv_per_packet.max(16)
    };

    // DataToReduceQueue + reduce consumer (overlap of merge and reduce).
    // The consumer lives in the TaskTracker's group so the node's own death
    // tears it down with the attempt.
    let (out_tx, out_rx) = bounded_named::<Segment>(
        &format!("r{}-data-to-reduce-queue", ctx.reduce_idx),
        REDUCE_QUEUE_DEPTH,
    );
    let consumer = {
        let ctx2 = ctx.clone();
        let node2 = node.clone();
        let conf2 = Rc::clone(&conf);
        ctx.tt.group.clone().spawn_named(
            format!("r{}-reduce-consumer", ctx.reduce_idx),
            async move {
                let mut sink =
                    ReduceSink::open(&ctx2.cluster, &conf2, &ctx2.spec, &node2, ctx2.reduce_idx)
                        .await;
                while let Some(seg) = out_rx.recv().await {
                    sink.consume(seg).await;
                }
                sink.finish().await
            },
        )
    };

    // Moves pending packets into the merge in arrival order (per-source
    // FIFO order is preserved, and cross-source append order does not affect
    // the merge result). Returns the total spilled bytes drained plus, for
    // Hadoop-A, the refetch charge list: (tt_idx, map_idx, bytes) per
    // spilled packet.
    let spill_readback = {
        let state = Rc::clone(&state);
        move |merge: &mut StreamingMerge| -> (u64, Vec<(usize, usize, u64)>) {
            let mut st = state.borrow_mut();
            let mut spilled = 0u64;
            let mut refetch = Vec::new();
            while let Some((m, pkt, was_spilled)) = st.pending.pop_front() {
                let s = st.sources.get_mut(&m).expect("pending from unknown source");
                s.buffered_bytes = s.buffered_bytes.saturating_sub(pkt.bytes);
                if was_spilled {
                    spilled += pkt.bytes;
                    refetch.push((s.tt_idx, m, pkt.bytes));
                }
                merge.append(dense[&m], pkt);
            }
            (spilled, refetch)
        }
    };

    let spill_file = format!("{}_r{}_shufspill", ctx.job, ctx.reduce_idx);
    let metrics = sim.metrics().clone();
    // Cached counter handles: the loop body runs per batch/stall, and a
    // handle bump skips the registry lookup entirely.
    let c_loop_iters = metrics.counter("rdma.loop_iters");
    let c_emits = metrics.counter("rdma.emits");
    let c_emit_records = metrics.counter("rdma.emit_records");
    let c_stalls = metrics.counter("rdma.stalls");
    let mut lost_tt: Option<usize> = None;
    loop {
        c_loop_iters.incr();
        if deaths_seen.get() > 0 || !poisoned.is_empty() {
            if let Some(tt) = lost_source(&state, &poisoned, &ep_dead) {
                lost_tt = Some(tt);
                break;
            }
        }
        let (spilled, refetch) = spill_readback(&mut merge);
        if spilled > 0 {
            if variant.local_spill {
                // Read the spilled packets back from local disk.
                if node.fs.exists(&spill_file) {
                    let mut r = node.fs.reader(&spill_file).expect("spill file");
                    let want = spilled.min(r.remaining().unwrap_or(0));
                    if want > 0 {
                        r.read_exact(want).await.expect("spill readback");
                    }
                }
            } else {
                // Refetch each dropped packet from its TaskTracker: the
                // DataEngine reads the map output from disk again and the
                // bytes cross the wire again. A packet whose working set
                // exceeds the merge memory returns multiple times before
                // it is fully consumed (evict → refetch thrash): the
                // amplification is the ratio of the resident set the
                // priority queue needs (one packet per live source) to
                // the memory that can hold it. (Map output files persist on
                // the simulated disk across a kill, so this stays a pure
                // timing charge even when the source node has since died.)
                let live = merge.source_count() as u64;
                let amp = ((live * est_packet_bytes.min(4 << 20)) / conf.shuffle_buffer.max(1))
                    .clamp(1, 5);
                for (tt_idx, map_idx, bytes) in refetch {
                    let bytes = bytes * amp;
                    let tt_node = &ctx.cluster.workers[tt_idx];
                    let file = format!("{}_map_{map_idx}.out", ctx.job);
                    if tt_node.fs.exists(&file) {
                        let mut r = tt_node.fs.reader(&file).expect("map output");
                        let want = bytes.min(r.remaining().unwrap_or(0));
                        if want > 0 {
                            r.read_exact(want).await.expect("refetch read");
                        }
                    }
                    ctx.cluster.net.transfer(tt_node.id, node.id, bytes).await;
                    metrics.add("rdma.refetch_bytes", bytes as f64);
                }
            }
        }
        // Refill ahead of need.
        for di in merge.sources_below(watermark) {
            send_request(order[di], packet_budget(), est_packet_bytes, false);
        }
        match merge.emit(MERGE_BATCH_RECORDS) {
            Emit::Data(seg) => {
                c_emits.incr();
                c_emit_records.add(seg.records as f64);
                obs.emit(|| Ev::MergeBatch {
                    node: my_idx,
                    job: ctx.job.0,
                    reduce: ctx.reduce_idx,
                    records: seg.records,
                    bytes: seg.bytes,
                });
                mem.release(seg.bytes);
                {
                    let mut st = state.borrow_mut();
                    st.resident_bytes = st.resident_bytes.saturating_sub(seg.bytes);
                }
                let k = (merge.source_count().max(2)) as f64;
                node.compute(seg.records as f64 * k.log2() * conf.costs.sort_per_record_level)
                    .await;
                out_tx.send(seg).await.expect("reduce consumer died");
            }
            Emit::Stalled(dry) => {
                c_stalls.incr();
                // Arm the waiter BEFORE re-checking: packets can land during
                // the awaits above (spill readback, CPU charges), and an
                // edge-triggered notification created after the arrival
                // would never fire (lost wakeup ⇒ deadlock).
                let waiter = arrived.notified();
                // Same ordering for deaths: the fatal sweep must run after
                // arming so a death signalled during the awaits above either
                // shows up here or wakes the waiter.
                if deaths_seen.get() > 0 || !poisoned.is_empty() {
                    if let Some(tt) = lost_source(&state, &poisoned, &ep_dead) {
                        lost_tt = Some(tt);
                        break;
                    }
                }
                let has_undrained = !state.borrow().pending.is_empty();
                if has_undrained {
                    continue; // drain them and retry
                }
                if std::env::var("RMR_RDMA_DEBUG").is_ok() {
                    let st = state.borrow();
                    eprintln!(
                        "[{:.1}s] r{} STALL dry={:?} deaths={}",
                        sim.now().as_secs_f64(),
                        ctx.reduce_idx,
                        dry.iter().map(|d| order[*d]).collect::<Vec<_>>(),
                        deaths_seen.get(),
                    );
                    for (m, s) in st.sources.iter().filter(|(_, s)| !s.fully_delivered) {
                        eprintln!(
                            "  map{} tt{} {}/{:?}B inflight={} resv={} ep={} dead={} \
                             alive={} epoch {:?}/{}",
                            m,
                            s.tt_idx,
                            s.delivered_bytes,
                            s.total_bytes,
                            s.inflight,
                            s.reserved,
                            eps.borrow().contains_key(&s.tt_idx),
                            ep_dead(s.tt_idx),
                            ctx.liveness[s.tt_idx].alive(),
                            ep_epochs.borrow().get(&s.tt_idx),
                            ctx.liveness[s.tt_idx].epoch()
                        );
                    }
                }
                for di in dry {
                    // Forced: a stalled merge must not deadlock on buffer
                    // space held by other sources.
                    send_request(order[di], packet_budget(), est_packet_bytes, true);
                }
                waiter.await;
            }
            Emit::Done => break,
        }
    }
    drop(out_tx);
    let merge_end_s = sim.now().as_secs_f64();
    // Always join the consumer so the sink closes cleanly; on failure its
    // partial part-file is deleted by the next attempt's ReduceSink::open.
    let (in_records, _in_bytes, out_bytes) = consumer.await;
    stop_copiers();
    if let Some(tt_idx) = lost_tt {
        return Err(ReduceError::SourceLost { tt_idx });
    }

    let st = state.borrow();
    Ok(ReduceStats {
        shuffle_end_s: st.last_arrival_s,
        merge_end_s,
        reduce_end_s: sim.now().as_secs_f64(),
        shuffled_bytes: st.shuffled_bytes,
        reduced_records: in_records,
        output_bytes: out_bytes,
    })
}
