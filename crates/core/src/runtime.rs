//! The persistent cluster runtime: a long-lived JobTracker-side control
//! plane that schedules task attempts from *multiple concurrent jobs* onto
//! shared per-node task slots.
//!
//! [`Runtime::start`] brings the cluster services up once — a TaskTracker
//! and its shuffle server on every worker, a heartbeat daemon per
//! TaskTracker — and they then serve every job submitted over the runtime's
//! lifetime. [`Runtime::submit`] enqueues a job (splits computed, a
//! per-job `JobTracker` created); each heartbeat walks the active-job queue
//! in [`SchedulePolicy`] order, handing the node's free slots to jobs until
//! slots or work run out. [`crate::job::run_job`] survives as a thin
//! single-job wrapper over this module.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::future::Future;
use std::rc::Rc;
use std::task::Poll;

use rmr_des::prelude::*;
use rmr_net::NodeId;
use rmr_obs::{
    AttemptOutcome, Ev, JobSnapshot, JobState, NodeSnapshot, Recorder, RuntimeSnapshot, TaskFlavor,
};

use crate::cluster::Cluster;
use crate::config::{JobConf, ShuffleKind};
use crate::engine::{ShuffleEngine, StageCtx, Staged};
use crate::faults::{FaultEvent, FaultPlan, NodeLiveness};
use crate::jobtracker::{JobTracker, MapTaskDesc};
use crate::mapoutput::MapOutputStore;
use crate::maptask::run_map;
use crate::reduce::common::{ReduceCtx, ReduceError, ReduceStats};
use crate::spec::JobSpec;
use crate::tasktracker::{TaskTracker, TtServerHandle};
use crate::timeline::{Outcome, TaskEvent, TaskKind, Timeline};

/// Heartbeat RPC payload size on the wire.
const HEARTBEAT_BYTES: u64 = 1024;

/// Identifier of one submitted job, unique within a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// Snapshot of the runtime's job-keyed state sizes (see
/// [`Runtime::state_footprint`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StateFootprint {
    /// Jobs still running (in the `jobs` map).
    pub in_flight_jobs: usize,
    /// Finished jobs whose results nobody has joined yet.
    pub unjoined_finished: usize,
    /// Map outputs retained across all TaskTracker stores.
    pub tt_outputs: usize,
    /// Jobs the PrefetchCaches still track admission stats for.
    pub tt_cache_jobs: usize,
    /// Open shuffle-serving segment cursors across TaskTrackers.
    pub tt_serve_cursors: usize,
    /// Open shuffle-serving disk readers across TaskTrackers.
    pub tt_serve_readers: usize,
    /// TaskTrackers currently killed (blacklisted until restart).
    pub down_nodes: usize,
}

impl StateFootprint {
    /// Total job-keyed entries held anywhere (plus down nodes: a drained
    /// cluster has everything back up).
    pub fn total(&self) -> usize {
        self.in_flight_jobs
            + self.unjoined_finished
            + self.tt_outputs
            + self.tt_cache_jobs
            + self.tt_serve_cursors
            + self.tt_serve_readers
            + self.down_nodes
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// How heartbeats divide a node's free slots among concurrent jobs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Oldest job first: a job ahead in the queue takes every slot it can
    /// use before the next job sees any (Hadoop's default JobQueue).
    #[default]
    Fifo,
    /// Round-robin over active jobs: each heartbeat starts the walk one
    /// job later, so slots spread across jobs over time.
    Fair,
    /// Hadoop capacity scheduler: jobs are submitted to queues
    /// ([`JobConf::queue`]), each with a guaranteed share of the cluster's
    /// slot pools; slots a queue is not using spill over to queues with
    /// demand (work conservation), and speculative attempts can be
    /// preempted when a starved queue has unmet guaranteed demand.
    Capacity(CapacityPlan),
}

/// One queue's guaranteed share of the cluster slot pools, in per-mille
/// (integer math keeps scheduling decisions exactly reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueShare {
    /// Queue (tenant) id, matched against [`JobConf::queue`].
    pub queue: u32,
    /// Guaranteed fraction of each slot pool, per-mille (300 = 30%).
    pub share_mille: u32,
}

/// Capacity-scheduler configuration: per-queue guarantees plus knobs.
/// Queues absent from `shares` have no guarantee — their jobs run purely on
/// spillover slots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CapacityPlan {
    /// Guaranteed shares, one entry per queue.
    pub shares: Vec<QueueShare>,
    /// Preempt redundant speculative attempts when a queue with unmet
    /// guaranteed demand finds every slot taken.
    pub preempt_speculative: bool,
}

impl CapacityPlan {
    /// A plan from `(queue, share_mille)` pairs, preemption off.
    pub fn new(shares: &[(u32, u32)]) -> Self {
        CapacityPlan {
            shares: shares
                .iter()
                .map(|&(queue, share_mille)| QueueShare { queue, share_mille })
                .collect(),
            preempt_speculative: false,
        }
    }

    /// Enables speculative-attempt preemption.
    pub fn with_preemption(mut self) -> Self {
        self.preempt_speculative = true;
        self
    }

    /// `queue`'s guaranteed slot count out of a pool of `pool` slots.
    pub fn guaranteed(&self, queue: u32, pool: usize) -> usize {
        self.shares
            .iter()
            .find(|s| s.queue == queue)
            .map(|s| pool * s.share_mille as usize / 1000)
            .unwrap_or(0)
    }
}

/// Results of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// The engine that ran it.
    pub shuffle: ShuffleKind,
    /// Job execution time, seconds (submission to last reduce commit).
    pub duration_s: f64,
    /// Virtual time the job was submitted.
    pub start_s: f64,
    /// Virtual time the last map finished.
    pub map_phase_end_s: f64,
    /// Virtual time the job finished.
    pub end_s: f64,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
    /// Input bytes read from HDFS.
    pub input_bytes: u64,
    /// Intermediate bytes shuffled.
    pub shuffled_bytes: u64,
    /// Output bytes written to HDFS.
    pub output_bytes: u64,
    /// PrefetchCache hits this job saw across TaskTrackers (OSU-IB).
    pub cache_hits: u64,
    /// PrefetchCache misses.
    pub cache_misses: u64,
    /// Map attempts that failed (fault injection) and were re-executed.
    pub failed_map_attempts: usize,
    /// Reduce attempts that failed and were re-executed.
    pub failed_reduce_attempts: usize,
    /// Seconds between submission and the first task attempt launching
    /// (time spent queued behind other jobs).
    pub queue_wait_s: f64,
    /// Fraction of the cluster's slot-seconds this job's attempts occupied
    /// while it was in the system (slot-seconds used / (duration × workers ×
    /// slots per worker)).
    pub slot_occupancy: f64,
    /// Raw slot-seconds all attempts consumed (fairness accounting input).
    pub slot_secs: f64,
    /// The capacity queue (tenant) the job was submitted to.
    pub queue: u32,
    /// Per-reducer phase stats.
    pub reduce_stats: Vec<ReduceStats>,
    /// Every task attempt's lifetime (swimlane data).
    pub timeline: Vec<TaskEvent>,
}

/// One job in the system: its scheduler, progress counters, and result slot.
struct ActiveJob {
    id: JobId,
    conf: Rc<JobConf>,
    spec: JobSpec,
    jt: Rc<RefCell<JobTracker>>,
    timeline: Timeline,
    total_maps: usize,
    input_bytes: u64,
    submit_s: f64,
    first_launch_s: Cell<Option<f64>>,
    map_phase_end_s: Cell<f64>,
    /// Slot-seconds consumed by every attempt (including failed and
    /// speculative ones).
    slot_secs: Cell<f64>,
    reduce_stats: RefCell<Vec<Option<ReduceStats>>>,
    /// Failed-attempt count per reduce index (drives retry backoff).
    reduce_retries: RefCell<BTreeMap<usize, u32>>,
    /// Launch count per reduce index — unlike `reduce_retries` it also
    /// counts relaunches after node death, so it is the attempt number the
    /// shuffle servers key their serve cursors by.
    reduce_launches: RefCell<BTreeMap<usize, u32>>,
    done: Notify,
    result: RefCell<Option<JobResult>>,
}

struct RtInner {
    sim: Sim,
    cluster: Cluster,
    /// Cluster-wide configuration (`tasktracker.*` keys: slots, server
    /// pools, cache sizing, heartbeat cadence).
    conf: Rc<JobConf>,
    engine: Rc<dyn ShuffleEngine>,
    policy: SchedulePolicy,
    tts: Vec<Rc<TaskTracker>>,
    /// Per-TaskTracker shuffle-server handles. `RefCell`: a node restart
    /// installs a fresh server in the dead one's slot.
    servers: Rc<RefCell<Vec<TtServerHandle>>>,
    /// Per-TaskTracker liveness signals, shared with every ReduceCtx.
    liveness: Rc<Vec<Rc<NodeLiveness>>>,
    outputs: MapOutputStore,
    /// Jobs still in the system. A finished job's scheduling state is
    /// dropped at completion: the entry moves to [`RtInner::finished`] as a
    /// bare result, so map sizes stay bounded across long job sequences.
    jobs: RefCell<BTreeMap<u32, Rc<ActiveJob>>>,
    /// Results of finished jobs, awaiting pickup. [`Runtime::join`]
    /// *consumes* the entry; [`Runtime::poll`] peeks.
    finished: RefCell<BTreeMap<u32, JobResult>>,
    /// Submission-ordered queue of unfinished jobs.
    active: RefCell<VecDeque<u32>>,
    next_id: Cell<u32>,
    /// Injected task failures from a [`FaultPlan`] whose job ordinal has not
    /// been submitted yet; consumed by [`Runtime::submit`].
    injected: RefCell<BTreeMap<u32, Vec<FaultEvent>>>,
    /// Fair policy's rotating walk offset.
    rr: Cell<usize>,
    /// Running attempts per queue as `(maps, reduces)`, maintained by
    /// [`QueueSlotGuard`]s so aborted attempt futures (node kills,
    /// preemption) release their count on drop. Entries are removed at
    /// zero, so a drained cluster holds no ledger state.
    queue_used: Rc<RefCell<BTreeMap<u32, (usize, usize)>>>,
    /// Preemptible speculative map attempts in flight:
    /// `(tt_idx, job, map_idx)` → the signal that tells the attempt to
    /// stand down. Only populated under `Capacity` with preemption on.
    spec_running: RefCell<BTreeMap<(usize, u32, usize), Notify>>,
    /// Wakes parked heartbeat daemons when work arrives.
    work: Notify,
    /// Observability bus (off unless built via [`Runtime::with_obs`]).
    obs: Recorder,
}

/// Drop-guard for one running attempt's entry in the per-queue slot ledger:
/// created when the attempt spawns, releases its count however the attempt
/// ends — completion, failure, preemption, or a node kill aborting the
/// future mid-await.
struct QueueSlotGuard {
    used: Rc<RefCell<BTreeMap<u32, (usize, usize)>>>,
    queue: u32,
    map: bool,
}

impl QueueSlotGuard {
    fn acquire(used: &Rc<RefCell<BTreeMap<u32, (usize, usize)>>>, queue: u32, map: bool) -> Self {
        {
            let mut u = used.borrow_mut();
            let e = u.entry(queue).or_insert((0, 0));
            if map {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        QueueSlotGuard {
            used: Rc::clone(used),
            queue,
            map,
        }
    }
}

impl Drop for QueueSlotGuard {
    fn drop(&mut self) {
        let mut u = self.used.borrow_mut();
        if let Some(e) = u.get_mut(&self.queue) {
            if self.map {
                e.0 -= 1;
            } else {
                e.1 -= 1;
            }
            if *e == (0, 0) {
                u.remove(&self.queue);
            }
        }
    }
}

/// The persistent cluster runtime. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Runtime {
    inner: Rc<RtInner>,
}

impl Runtime {
    /// Starts cluster services (TaskTrackers, shuffle servers, heartbeat
    /// daemons) under `conf`'s cluster-wide keys, scheduling FIFO. The
    /// engine is `conf.shuffle`'s.
    pub fn start(cluster: &Cluster, conf: JobConf) -> Runtime {
        Runtime::with_policy(cluster, conf, SchedulePolicy::Fifo)
    }

    /// [`Runtime::start`] with an explicit scheduling policy.
    pub fn with_policy(cluster: &Cluster, conf: JobConf, policy: SchedulePolicy) -> Runtime {
        Runtime::with_obs(cluster, conf, policy, Recorder::off())
    }

    /// [`Runtime::with_policy`] with an observability recorder attached.
    /// Every layer (runtime scheduling, TaskTracker serving, prefetch cache,
    /// reduce engines) emits to `obs`; pass [`Recorder::off`] for the
    /// zero-overhead default.
    pub fn with_obs(
        cluster: &Cluster,
        conf: JobConf,
        policy: SchedulePolicy,
        obs: Recorder,
    ) -> Runtime {
        let sim = cluster.sim.clone();
        let conf = Rc::new(conf);
        let engine = conf.shuffle.engine();
        let outputs = MapOutputStore::new();
        let cache_on = engine.server_cache() && conf.caching_enabled;
        let mut tts = Vec::new();
        let mut servers = Vec::new();
        for (i, w) in cluster.workers.iter().enumerate() {
            let tt = TaskTracker::new(
                &sim,
                i,
                w.clone(),
                Rc::clone(&conf),
                outputs.clone(),
                cache_on,
                obs.clone(),
            );
            servers.push(engine.start_server(&tt, &cluster.net));
            tts.push(tt);
        }
        let liveness: Rc<Vec<Rc<NodeLiveness>>> =
            Rc::new(tts.iter().map(|tt| Rc::clone(&tt.liveness)).collect());
        let inner = Rc::new(RtInner {
            sim: sim.clone(),
            cluster: cluster.clone(),
            conf,
            engine,
            policy,
            tts,
            servers: Rc::new(RefCell::new(servers)),
            liveness,
            outputs,
            jobs: RefCell::new(BTreeMap::new()),
            finished: RefCell::new(BTreeMap::new()),
            active: RefCell::new(VecDeque::new()),
            next_id: Cell::new(0),
            injected: RefCell::new(BTreeMap::new()),
            rr: Cell::new(0),
            queue_used: Rc::new(RefCell::new(BTreeMap::new())),
            spec_running: RefCell::new(BTreeMap::new()),
            work: Notify::new(),
            obs,
        });
        for tt in &inner.tts {
            spawn_heartbeat(&inner, tt);
        }
        Runtime { inner }
    }

    /// Submits a job: computes its input splits, creates its JobTracker,
    /// and queues it for scheduling at the next heartbeats. Returns
    /// immediately with the job's id.
    pub fn submit(&self, conf: JobConf, spec: JobSpec) -> JobId {
        let inner = &self.inner;
        assert_eq!(
            conf.shuffle,
            inner.engine.kind(),
            "job's shuffle engine must match the runtime's"
        );
        let id = JobId(inner.next_id.get());
        inner.next_id.set(id.0 + 1);
        let conf = Rc::new(conf);

        // Input splits with locality info. The input names either a single
        // file or a directory prefix whose files are all scanned (TeraGen
        // and RandomWriter write one part file per worker).
        let input_files: Vec<String> = if inner.cluster.hdfs.exists(&spec.input) {
            vec![spec.input.clone()]
        } else {
            let prefix = format!("{}/", spec.input.trim_end_matches('/'));
            let files: Vec<String> = inner
                .cluster
                .hdfs
                .list()
                .into_iter()
                .filter(|p| p.starts_with(&prefix))
                .collect();
            assert!(!files.is_empty(), "job input missing: {}", spec.input);
            files
        };
        let mut splits = Vec::new();
        for f in &input_files {
            splits.extend(
                inner
                    .cluster
                    .hdfs
                    .split_locations(f)
                    .expect("job input missing"),
            );
        }
        let input_bytes: u64 = splits.iter().map(|(b, _)| b.size).sum();
        let descs: Vec<MapTaskDesc> = splits
            .into_iter()
            .enumerate()
            .map(|(idx, (block, locations))| MapTaskDesc {
                idx,
                block,
                locations,
            })
            .collect();
        let total_maps = descs.len();

        let jt = Rc::new(RefCell::new(JobTracker::new(
            descs,
            conf.num_reduces,
            conf.reduce_slowstart,
        )));
        jt.borrow_mut().set_speculative(conf.speculative_maps);
        jt.borrow_mut().set_locality_delay(conf.locality_delay);
        // Task failures a FaultPlan queued for this submission ordinal.
        if let Some(evs) = inner.injected.borrow_mut().remove(&id.0) {
            let mut jtb = jt.borrow_mut();
            for ev in evs {
                match ev {
                    FaultEvent::FailMapOnce { map_idx, .. } => jtb.inject_map_failure(map_idx),
                    FaultEvent::FailReduceOnce { reduce_idx, .. } => {
                        jtb.inject_reduce_failure(reduce_idx)
                    }
                    _ => unreachable!("only task-failure events are queued"),
                }
            }
        }

        let job = Rc::new(ActiveJob {
            id,
            conf: Rc::clone(&conf),
            spec,
            jt,
            timeline: Timeline::new(),
            total_maps,
            input_bytes,
            submit_s: inner.sim.now().as_secs_f64(),
            first_launch_s: Cell::new(None),
            map_phase_end_s: Cell::new(0.0),
            slot_secs: Cell::new(0.0),
            reduce_stats: RefCell::new(vec![None; conf.num_reduces]),
            reduce_retries: RefCell::new(BTreeMap::new()),
            reduce_launches: RefCell::new(BTreeMap::new()),
            done: Notify::new(),
            result: RefCell::new(None),
        });
        inner.jobs.borrow_mut().insert(id.0, Rc::clone(&job));
        inner.active.borrow_mut().push_back(id.0);
        inner.obs.emit(|| Ev::JobQueued {
            job: id.0,
            queue: job.conf.queue,
        });
        inner.obs.emit(|| Ev::JobState {
            job: id.0,
            state: JobState::Submitted,
        });
        if job.jt.borrow().job_done() {
            // Degenerate empty job (no maps, no reduces): no heartbeat will
            // ever touch it, so commit it here.
            inner.finalize(&job);
        }
        inner.work.notify_all();
        id
    }

    /// Returns `id`'s result if the job has finished (non-consuming peek).
    pub fn poll(&self, id: JobId) -> Option<JobResult> {
        if let Some(job) = self.inner.jobs.borrow().get(&id.0) {
            return job.result.borrow().clone();
        }
        Some(
            self.inner
                .finished
                .borrow()
                .get(&id.0)
                .expect("unknown or already-joined job id")
                .clone(),
        )
    }

    /// Waits until `id` finishes and returns its result, *consuming* the
    /// runtime's stored copy — each job is joined once, and the runtime
    /// holds no per-job state afterwards.
    pub async fn join(&self, id: JobId) -> JobResult {
        let job = {
            if let Some(res) = self.inner.finished.borrow_mut().remove(&id.0) {
                return res;
            }
            let jobs = self.inner.jobs.borrow();
            Rc::clone(jobs.get(&id.0).expect("unknown or already-joined job id"))
        };
        loop {
            // Arm before checking: `Notify` is edge-triggered.
            let waiter = job.done.notified();
            if job.result.borrow().is_some() {
                break;
            }
            waiter.await;
        }
        // A concurrent joiner may have consumed the stored copy already;
        // the `ActiveJob` we hold keeps a fallback.
        self.inner
            .finished
            .borrow_mut()
            .remove(&id.0)
            .unwrap_or_else(|| job.result.borrow().clone().expect("done without result"))
    }

    /// Jobs submitted but not yet finished.
    pub fn active_jobs(&self) -> usize {
        self.inner.active.borrow().len()
    }

    /// Kills TaskTracker `tt_idx`: every task on the node (heartbeat daemon,
    /// shuffle servers, prefetcher, running attempts) is aborted, its served
    /// state and map outputs are dropped, and every active job re-queues the
    /// work that died with it. Idempotent. The node stays blacklisted — its
    /// heartbeat daemon is dead, so no attempt lands on it — until
    /// [`Runtime::restart_node`].
    pub fn kill_node(&self, tt_idx: usize) {
        let inner = &self.inner;
        let tt = &inner.tts[tt_idx];
        if !tt.liveness.kill() {
            return; // already down
        }
        // Abort everything running on the node. Slot permits held by the
        // aborted attempts are dropped with their futures, so the slots
        // read free again after the restart.
        tt.group.abort();
        // The node's disk state is unreachable: serving cursors, cache
        // contents, and committed map outputs are gone.
        tt.clear_serve_state();
        inner.outputs.remove_node(tt_idx);
        // Staged-but-unregistered outputs buffered by an aggregating engine
        // die with the node; their maps re-queue below via `node_lost`.
        inner.engine.node_lost(tt_idx);
        // Aborted speculative attempts can no longer be preempted; their
        // slot-ledger entries are released by the dropped futures' guards.
        inner
            .spec_running
            .borrow_mut()
            .retain(|(t, _, _), _| *t != tt_idx);
        inner.obs.emit(|| Ev::NodeDown { node: tt_idx });
        // Every active job loses this node's attempts and completed maps.
        let jobs: Vec<Rc<ActiveJob>> = inner.jobs.borrow().values().cloned().collect();
        for job in jobs {
            let report = job.jt.borrow_mut().node_lost(tt_idx);
            for &idx in &report.lost_running_maps {
                inner.obs.emit(|| Ev::AttemptLost {
                    node: tt_idx,
                    job: job.id.0,
                    kind: TaskFlavor::Map,
                    idx,
                });
            }
            for &idx in &report.lost_reduces {
                inner.obs.emit(|| Ev::AttemptLost {
                    node: tt_idx,
                    job: job.id.0,
                    kind: TaskFlavor::Reduce,
                    idx,
                });
            }
            for &idx in &report.lost_completed_maps {
                inner.obs.emit(|| Ev::MapReExecute {
                    node: tt_idx,
                    job: job.id.0,
                    idx,
                });
            }
        }
        // Surviving nodes' heartbeats pick up the re-queued work.
        inner.work.notify_all();
    }

    /// Restarts a killed TaskTracker under a new liveness epoch: fresh
    /// shuffle server (installed in the old one's slot), fresh prefetcher,
    /// fresh heartbeat daemon. The node rejoins scheduling at its next
    /// heartbeat with a cold cache and an empty map-output store.
    pub fn restart_node(&self, tt_idx: usize) {
        let inner = &self.inner;
        let tt = &inner.tts[tt_idx];
        if tt.liveness.alive() {
            return; // never killed, or already back
        }
        let epoch = tt.liveness.restart();
        let server = inner.engine.start_server(tt, &inner.cluster.net);
        inner.servers.borrow_mut()[tt_idx] = server;
        tt.respawn_prefetcher();
        spawn_heartbeat(inner, tt);
        inner.obs.emit(|| Ev::NodeUp {
            node: tt_idx,
            epoch,
        });
        inner.work.notify_all();
    }

    /// Arms a [`FaultPlan`]: network windows are installed immediately,
    /// crashes get a chaos timer task each, and task-failure injections
    /// apply to their job ordinal at submission. An empty plan performs no
    /// simulation operations at all (the determinism contract: fault-free
    /// runs stay bit-identical).
    pub fn apply_fault_plan(&self, plan: &FaultPlan) {
        for ev in &plan.events {
            match ev.clone() {
                FaultEvent::Crash {
                    tt_idx,
                    at,
                    restart_after,
                } => {
                    let rt = self.clone();
                    let sim = self.inner.sim.clone();
                    self.inner
                        .sim
                        .clone()
                        .spawn_named(format!("chaos-crash-tt{tt_idx}"), async move {
                            sim.sleep(at.saturating_since(sim.now())).await;
                            rt.kill_node(tt_idx);
                            if let Some(after) = restart_after {
                                sim.sleep(after).await;
                                rt.restart_node(tt_idx);
                            }
                        })
                        .detach();
                }
                FaultEvent::Degrade {
                    tt_idx,
                    start,
                    end,
                    factor,
                } => {
                    let node = self.inner.tts[tt_idx].node.id;
                    self.inner
                        .cluster
                        .net
                        .inject_degradation(node, start, end, factor);
                }
                FaultEvent::Partition { tt_idx, start, end } => {
                    let node = self.inner.tts[tt_idx].node.id;
                    self.inner.cluster.net.inject_partition(node, start, end);
                }
                FaultEvent::FailMapOnce { job_ord, map_idx } => {
                    if let Some(job) = self.inner.jobs.borrow().get(&job_ord) {
                        job.jt.borrow_mut().inject_map_failure(map_idx);
                    } else {
                        self.inner
                            .injected
                            .borrow_mut()
                            .entry(job_ord)
                            .or_default()
                            .push(ev.clone());
                    }
                }
                FaultEvent::FailReduceOnce {
                    job_ord,
                    reduce_idx,
                } => {
                    if let Some(job) = self.inner.jobs.borrow().get(&job_ord) {
                        job.jt.borrow_mut().inject_reduce_failure(reduce_idx);
                    } else {
                        self.inner
                            .injected
                            .borrow_mut()
                            .entry(job_ord)
                            .or_default()
                            .push(ev.clone());
                    }
                }
            }
        }
    }

    /// Sizes of the runtime's job-keyed state — a leak canary for long job
    /// sequences. Every field must return to zero once all jobs are joined;
    /// a long-lived runtime whose footprint grows with jobs-ever-run cannot
    /// survive a 1k-node sweep.
    pub fn state_footprint(&self) -> StateFootprint {
        let inner = &self.inner;
        let mut fp = StateFootprint {
            in_flight_jobs: inner.jobs.borrow().len(),
            unjoined_finished: inner.finished.borrow().len(),
            ..StateFootprint::default()
        };
        for tt in &inner.tts {
            fp.tt_outputs += tt.outputs.len();
            fp.tt_cache_jobs += tt.cache.tracked_jobs();
            let (cursors, readers) = tt.serve_state_counts();
            fp.tt_serve_cursors += cursors;
            fp.tt_serve_readers += readers;
            if !tt.liveness.alive() {
                fp.down_nodes += 1;
            }
        }
        fp
    }

    /// The observability bus this runtime emits to ([`Recorder::off`] unless
    /// built via [`Runtime::with_obs`]).
    pub fn obs(&self) -> &Recorder {
        &self.inner.obs
    }

    /// Captures a debugging snapshot of the whole runtime: every job's
    /// scheduling state and every TaskTracker's slot, cache, and
    /// serving-cursor state. Works with the recorder on or off.
    pub fn dump(&self) -> RuntimeSnapshot {
        let inner = &self.inner;
        let jobs = inner
            .jobs
            .borrow()
            .values()
            .map(|job| {
                let jtb = job.jt.borrow();
                let state = if job.result.borrow().is_some() {
                    JobState::Finished
                } else if jtb.maps_done() {
                    JobState::MapsDone
                } else if job.first_launch_s.get().is_some() {
                    JobState::FirstLaunch
                } else {
                    JobState::Submitted
                };
                JobSnapshot {
                    id: job.id.0,
                    name: job.spec.name.clone(),
                    state: state.as_str().to_string(),
                    total_maps: jtb.total_maps(),
                    maps_completed: jtb.maps_completed(),
                    pending_maps: jtb.pending_maps(),
                    running_maps: jtb.running_maps(),
                    total_reduces: jtb.total_reduces(),
                    reduces_completed: jtb.reduces_completed(),
                    pending_reduces: jtb.pending_reduces(),
                    submit_s: job.submit_s,
                    first_launch_s: job.first_launch_s.get(),
                }
            })
            .collect();
        let nodes = inner
            .tts
            .iter()
            .map(|tt| {
                let (cursors, readers) = tt.serve_state_counts();
                let (hits, misses) = tt.cache.stats();
                NodeSnapshot {
                    node: tt.idx,
                    free_map_slots: tt.map_slots.available(),
                    total_map_slots: inner.conf.map_slots as u64,
                    free_reduce_slots: tt.reduce_slots.available(),
                    total_reduce_slots: inner.conf.reduce_slots as u64,
                    cache_used: tt.cache.used(),
                    cache_capacity: tt.cache.capacity(),
                    cache_hits: hits,
                    cache_misses: misses,
                    serve_cursors: cursors,
                    serve_readers: readers,
                    alive: tt.liveness.alive(),
                    epoch: tt.liveness.epoch(),
                }
            })
            .collect();
        RuntimeSnapshot {
            t_s: inner.sim.now().as_secs_f64(),
            jobs,
            nodes,
        }
    }
}

/// One job's share of a heartbeat's assignments: the maps (with the index
/// where speculative duplicates begin) and reduces to launch.
struct Assignment {
    job: Rc<ActiveJob>,
    maps: Vec<MapTaskDesc>,
    /// Index into `maps` where speculative duplicates begin.
    spec_from: usize,
    reduces: Vec<usize>,
}

impl RtInner {
    /// One heartbeat's slot assignment: walks the active-job queue in
    /// policy order, offering each job the node's still-free slots.
    fn schedule(
        &self,
        node: NodeId,
        tt_idx: usize,
        free_m: &mut usize,
        free_r: &mut usize,
    ) -> Vec<Assignment> {
        if let SchedulePolicy::Capacity(plan) = &self.policy {
            return self.schedule_capacity(plan, node, tt_idx, free_m, free_r);
        }
        let order: Vec<u32> = {
            let active = self.active.borrow();
            match self.policy {
                SchedulePolicy::Fifo => active.iter().copied().collect(),
                SchedulePolicy::Fair => {
                    if active.is_empty() {
                        Vec::new()
                    } else {
                        let n = active.len();
                        let start = self.rr.get() % n;
                        self.rr.set(self.rr.get().wrapping_add(1));
                        (0..n).map(|i| active[(start + i) % n]).collect()
                    }
                }
                SchedulePolicy::Capacity(_) => unreachable!("handled above"),
            }
        };
        let mut out = Vec::new();
        for id in order {
            if *free_m == 0 && *free_r == 0 {
                break;
            }
            let job = {
                let jobs = self.jobs.borrow();
                match jobs.get(&id) {
                    Some(j) => Rc::clone(j),
                    None => continue,
                }
            };
            // O(1) skip for jobs with nothing assignable (all maps running,
            // reducers gated or launched): a full heartbeat would mutate
            // nothing and return empty, so eliding it is behavior-identical
            // and keeps the walk O(jobs-with-work) instead of O(jobs).
            if !job.jt.borrow().has_assignable_work() {
                continue;
            }
            let (maps, spec_from, reduces) = job
                .jt
                .borrow_mut()
                .heartbeat(node, tt_idx, *free_m, *free_r);
            *free_m = free_m.saturating_sub(maps.len());
            *free_r = free_r.saturating_sub(reduces.len());
            if !maps.is_empty() || !reduces.is_empty() {
                out.push(Assignment {
                    job,
                    maps,
                    spec_from,
                    reduces,
                });
            }
        }
        out
    }

    /// Capacity-scheduler heartbeat walk, two phases over the queues:
    ///
    /// 1. **Guaranteed**: queues are visited most-starved first (running
    ///    slots over guarantee, integer cross-multiplied compare — no float
    ///    ordering), each offered at most its unmet guarantee.
    /// 2. **Spillover**: remaining free slots go to any queue with demand,
    ///    same order — capacity is work-conserving, a guarantee is a floor,
    ///    not a cage.
    ///
    /// Within a queue, jobs run FIFO in submission order. The walk tracks
    /// slots it just assigned (`local_m`/`local_r`) on top of the shared
    /// ledger so one heartbeat's two phases agree on usage.
    fn schedule_capacity(
        &self,
        plan: &CapacityPlan,
        node: NodeId,
        tt_idx: usize,
        free_m: &mut usize,
        free_r: &mut usize,
    ) -> Vec<Assignment> {
        // Queue id → that queue's active jobs, submission-ordered.
        let mut queues: BTreeMap<u32, Vec<Rc<ActiveJob>>> = BTreeMap::new();
        {
            let active = self.active.borrow();
            let jobs = self.jobs.borrow();
            for id in active.iter() {
                if let Some(j) = jobs.get(id) {
                    if j.jt.borrow().has_assignable_work() {
                        queues.entry(j.conf.queue).or_default().push(Rc::clone(j));
                    }
                }
            }
        }
        if queues.is_empty() {
            return Vec::new();
        }
        let workers = self.cluster.workers.len();
        let pool_m = workers * self.conf.map_slots;
        let pool_r = workers * self.conf.reduce_slots;
        let used = self.queue_used.borrow().clone();
        let mut qorder: Vec<u32> = queues.keys().copied().collect();
        qorder.sort_by(|a, b| {
            let ua = used.get(a).map(|u| u.0).unwrap_or(0);
            let ub = used.get(b).map(|u| u.0).unwrap_or(0);
            let ga = plan.guaranteed(*a, pool_m).max(1);
            let gb = plan.guaranteed(*b, pool_m).max(1);
            (ua * gb).cmp(&(ub * ga)).then(a.cmp(b))
        });
        let mut local_m: BTreeMap<u32, usize> = BTreeMap::new();
        let mut local_r: BTreeMap<u32, usize> = BTreeMap::new();
        let mut out = Vec::new();
        'phases: for phase in 0..2 {
            for &q in &qorder {
                if *free_m == 0 && *free_r == 0 {
                    break 'phases;
                }
                let (cap_m, cap_r) = if phase == 0 {
                    let um = used.get(&q).map(|u| u.0).unwrap_or(0)
                        + local_m.get(&q).copied().unwrap_or(0);
                    let ur = used.get(&q).map(|u| u.1).unwrap_or(0)
                        + local_r.get(&q).copied().unwrap_or(0);
                    (
                        plan.guaranteed(q, pool_m).saturating_sub(um),
                        plan.guaranteed(q, pool_r).saturating_sub(ur),
                    )
                } else {
                    (usize::MAX, usize::MAX)
                };
                let mut cap_m = cap_m;
                let mut cap_r = cap_r;
                for job in &queues[&q] {
                    let offer_m = (*free_m).min(cap_m);
                    let offer_r = (*free_r).min(cap_r);
                    if offer_m == 0 && offer_r == 0 {
                        break;
                    }
                    // Re-check: phase 0 may have drained this job already.
                    if !job.jt.borrow().has_assignable_work() {
                        continue;
                    }
                    let (maps, spec_from, reduces) = job
                        .jt
                        .borrow_mut()
                        .heartbeat(node, tt_idx, offer_m, offer_r);
                    *free_m = free_m.saturating_sub(maps.len());
                    *free_r = free_r.saturating_sub(reduces.len());
                    cap_m = cap_m.saturating_sub(maps.len());
                    cap_r = cap_r.saturating_sub(reduces.len());
                    *local_m.entry(q).or_default() += maps.len();
                    *local_r.entry(q).or_default() += reduces.len();
                    if !maps.is_empty() || !reduces.is_empty() {
                        out.push(Assignment {
                            job: Rc::clone(job),
                            maps,
                            spec_from,
                            reduces,
                        });
                    }
                }
            }
        }
        out
    }

    /// A heartbeat found the node saturated under the capacity policy:
    /// if any queue has unmet *guaranteed* map demand, shed redundant
    /// speculative attempts on this node (from queues that are not
    /// themselves starved) to free slots for the next heartbeat. Victims
    /// are chosen in deterministic `(job, map)` order; the JobTracker
    /// refuses any preemption that would strand a task, so committed work
    /// is never lost.
    fn preempt_for_pressure(&self, tt_idx: usize, plan: &CapacityPlan) {
        if !plan.preempt_speculative {
            return;
        }
        let pool_m = self.cluster.workers.len() * self.conf.map_slots;
        let used = self.queue_used.borrow().clone();
        let mut starved: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut demand = 0usize;
        {
            let jobs = self.jobs.borrow();
            let active = self.active.borrow();
            let mut pending_by_q: BTreeMap<u32, usize> = BTreeMap::new();
            for id in active.iter() {
                if let Some(j) = jobs.get(id) {
                    *pending_by_q.entry(j.conf.queue).or_default() += j.jt.borrow().pending_maps();
                }
            }
            for (q, pend) in pending_by_q {
                let g = plan.guaranteed(q, pool_m);
                let um = used.get(&q).map(|u| u.0).unwrap_or(0);
                if pend > 0 && um < g {
                    starved.insert(q);
                    demand += pend.min(g - um);
                }
            }
        }
        if demand == 0 {
            return;
        }
        let keys: Vec<(usize, u32, usize)> = self
            .spec_running
            .borrow()
            .keys()
            .filter(|(t, _, _)| *t == tt_idx)
            .copied()
            .collect();
        let mut preempted = 0usize;
        for key in keys {
            if preempted >= demand {
                break;
            }
            let (_, job_id, map_idx) = key;
            let job = match self.jobs.borrow().get(&job_id) {
                Some(j) => Rc::clone(j),
                None => {
                    self.spec_running.borrow_mut().remove(&key);
                    continue;
                }
            };
            if starved.contains(&job.conf.queue) {
                continue; // shedding a starved queue's own work helps nobody
            }
            if job.jt.borrow_mut().preempt_speculative(map_idx, tt_idx) {
                if let Some(signal) = self.spec_running.borrow_mut().remove(&key) {
                    signal.notify_all();
                }
                preempted += 1;
            }
        }
        if preempted > 0 {
            // Freed slots become visible at the next heartbeats.
            self.work.notify_all();
        }
    }

    /// Commits a finished job: per-job cache stats, cluster-wide cleanup of
    /// its serving state, result assembly, and waking joiners.
    fn finalize(self: &Rc<Self>, job: &Rc<ActiveJob>) {
        let end = self.sim.now().as_secs_f64();
        let (mut hits, mut misses) = (0u64, 0u64);
        for tt in &self.tts {
            let (h, m) = tt.cache.job_stats(job.id);
            hits += h;
            misses += m;
            tt.cleanup_job(job.id);
            tt.cache.forget_job_stats(job.id);
        }
        self.outputs.remove_job(job.id);
        self.engine.job_finalized(job.id);
        self.active.borrow_mut().retain(|&j| j != job.id.0);

        let (failed_map_attempts, failed_reduce_attempts) = {
            let jtb = job.jt.borrow();
            (jtb.map_failures_seen(), jtb.reduce_failures_seen())
        };
        let reduce_stats: Vec<ReduceStats> = job
            .reduce_stats
            .borrow()
            .iter()
            .map(|s| s.clone().expect("reducer finished without stats"))
            .collect();
        let shuffled_bytes = reduce_stats.iter().map(|s| s.shuffled_bytes).sum();
        let output_bytes = reduce_stats.iter().map(|s| s.output_bytes).sum();
        let duration_s = end - job.submit_s;
        let queue_wait_s = job
            .first_launch_s
            .get()
            .map(|t| t - job.submit_s)
            .unwrap_or(0.0);
        let slot_pool = self.cluster.workers.len() as f64
            * (self.conf.map_slots + self.conf.reduce_slots) as f64;
        let slot_occupancy = if duration_s > 0.0 && slot_pool > 0.0 {
            job.slot_secs.get() / (duration_s * slot_pool)
        } else {
            0.0
        };
        let result = JobResult {
            name: job.spec.name.clone(),
            shuffle: job.conf.shuffle,
            duration_s,
            start_s: job.submit_s,
            map_phase_end_s: job.map_phase_end_s.get(),
            end_s: end,
            maps: job.total_maps,
            reduces: job.conf.num_reduces,
            input_bytes: job.input_bytes,
            shuffled_bytes,
            output_bytes,
            cache_hits: hits,
            cache_misses: misses,
            failed_map_attempts,
            failed_reduce_attempts,
            queue_wait_s,
            slot_occupancy,
            slot_secs: job.slot_secs.get(),
            queue: job.conf.queue,
            reduce_stats,
            timeline: job.timeline.events(),
        };
        // In-flight speculative losers of a finished job keep running to
        // completion but drop off the preemption radar with the job.
        self.spec_running
            .borrow_mut()
            .retain(|(_, j, _), _| *j != job.id.0);
        *job.result.borrow_mut() = Some(result.clone());
        // Drop the job's scheduling state (its `ActiveJob` — JobTracker
        // event log, locality index, timeline) from the runtime; the bare
        // result parks in `finished` until joined. In-flight speculative
        // losers still hold their own `Rc<ActiveJob>` and report in safely.
        self.finished.borrow_mut().insert(job.id.0, result);
        self.jobs.borrow_mut().remove(&job.id.0);
        self.obs.emit(|| Ev::JobState {
            job: job.id.0,
            state: JobState::Finished,
        });
        job.done.notify_all();
    }
}

/// The per-TaskTracker heartbeat daemon: parks while the cluster is idle,
/// otherwise heartbeats the JobTracker every `tasktracker.heartbeat`
/// interval, launching whatever attempts the schedule hands this node.
/// Spawned into the TaskTracker's task group: a node kill aborts the daemon
/// (the node stops heartbeating = blacklisted), and a restart spawns a
/// fresh one.
fn spawn_heartbeat(inner: &Rc<RtInner>, tt: &Rc<TaskTracker>) {
    let inner = Rc::clone(inner);
    let tt = Rc::clone(tt);
    let sim = inner.sim.clone();
    tt.group
        .clone()
        .spawn_daemon(format!("tt{}-heartbeat", tt.idx), async move {
            loop {
                // Park until a job is in the system. Arm the waiter before
                // re-checking (edge-triggered Notify; single-threaded, so
                // check-then-await without an intervening await is safe).
                let waiter = inner.work.notified();
                if inner.active.borrow().is_empty() {
                    waiter.await;
                    continue;
                }
                drop(waiter);

                // Heartbeat RPC to the JobTracker.
                inner
                    .cluster
                    .net
                    .transfer(tt.node.id, inner.cluster.master, HEARTBEAT_BYTES)
                    .await;
                let mut free_m = tt.map_slots.available() as usize;
                let mut free_r = tt.reduce_slots.available() as usize;
                let assignments = inner.schedule(tt.node.id, tt.idx, &mut free_m, &mut free_r);
                inner
                    .cluster
                    .net
                    .transfer(inner.cluster.master, tt.node.id, HEARTBEAT_BYTES)
                    .await;

                for a in assignments {
                    for (i, desc) in a.maps.into_iter().enumerate() {
                        let permit = tt
                            .map_slots
                            .try_acquire(1)
                            .expect("slot advertised but unavailable");
                        spawn_map_attempt(&inner, &a.job, &tt, desc, permit, i >= a.spec_from);
                    }
                    for reduce_idx in a.reduces {
                        let permit = tt
                            .reduce_slots
                            .try_acquire(1)
                            .expect("slot advertised but unavailable");
                        spawn_reduce_attempt(&inner, &a.job, &tt, reduce_idx, permit);
                    }
                }
                // Saturated node + starved guaranteed queue → shed
                // redundant speculative work (capacity policy only).
                if let SchedulePolicy::Capacity(plan) = &inner.policy {
                    if tt.map_slots.available() == 0 {
                        inner.preempt_for_pressure(tt.idx, plan);
                    }
                }
                // Observe the post-assignment picture: remaining free slots
                // and queue depth summed over every active job.
                inner.obs.emit(|| {
                    let jobs = inner.jobs.borrow();
                    let (mut pm, mut pr) = (0u64, 0u64);
                    let active = inner.active.borrow();
                    for id in active.iter() {
                        if let Some(job) = jobs.get(id) {
                            let jtb = job.jt.borrow();
                            pm += jtb.pending_maps() as u64;
                            pr += jtb.pending_reduces() as u64;
                        }
                    }
                    Ev::Heartbeat {
                        node: tt.idx,
                        active_jobs: active.len(),
                        pending_maps: pm,
                        pending_reduces: pr,
                        free_map_slots: tt.map_slots.available(),
                        free_reduce_slots: tt.reduce_slots.available(),
                    }
                });
                sim.sleep(inner.conf.heartbeat).await;
            }
        })
        .detach();
}

fn note_launch(inner: &RtInner, job: &ActiveJob, now_s: f64) {
    if job.first_launch_s.get().is_none() {
        job.first_launch_s.set(Some(now_s));
        inner.obs.emit(|| Ev::JobState {
            job: job.id.0,
            state: JobState::FirstLaunch,
        });
    }
}

fn spawn_map_attempt(
    inner: &Rc<RtInner>,
    job: &Rc<ActiveJob>,
    tt: &Rc<TaskTracker>,
    desc: MapTaskDesc,
    permit: Permit,
    speculative: bool,
) {
    let inner = Rc::clone(inner);
    let job = Rc::clone(job);
    let tt = Rc::clone(tt);
    let sim = inner.sim.clone();
    note_launch(&inner, &job, sim.now().as_secs_f64());
    inner.obs.emit(|| Ev::SlotAcquire {
        node: tt.idx,
        job: job.id.0,
        kind: TaskFlavor::Map,
        idx: desc.idx,
    });
    let qguard = QueueSlotGuard::acquire(&inner.queue_used, job.conf.queue, true);
    // A speculative attempt under the capacity policy (with preemption on)
    // registers a stand-down signal the scheduler can fire under queue
    // pressure. The `Notified` is armed *here*, before the task first
    // polls, so a preemption decided in the very heartbeat that spawned it
    // cannot slip through the edge-triggered window.
    let spec_key = (tt.idx, job.id.0, desc.idx);
    let stop = match &inner.policy {
        SchedulePolicy::Capacity(plan) if speculative && plan.preempt_speculative => {
            let signal = Notify::new_named("preempt");
            let stop = signal.notified();
            inner.spec_running.borrow_mut().insert(spec_key, signal);
            Some(stop)
        }
        _ => None,
    };
    // The attempt runs in the TaskTracker's task group: a node kill aborts
    // it mid-flight (the JobTracker re-queues the task via `node_lost`).
    tt.group
        .clone()
        .spawn_named(format!("{}-map-{}", job.id, desc.idx), async move {
            let attempt_start = sim.now().as_secs_f64();
            inner.obs.emit(|| Ev::AttemptStart {
                node: tt.idx,
                job: job.id.0,
                kind: TaskFlavor::Map,
                idx: desc.idx,
            });
            let work = async {
                // JVM spawn + task localisation.
                sim.sleep(job.conf.task_launch_overhead).await;
                let fail = job.jt.borrow_mut().should_fail(desc.idx);
                let abort = fail.then_some(0.5);
                let out = run_map(
                    &inner.cluster,
                    &job.conf,
                    &job.spec,
                    &tt,
                    job.id,
                    &desc,
                    abort,
                )
                .await;
                // Status notification to the JobTracker.
                inner
                    .cluster
                    .net
                    .transfer(tt.node.id, inner.cluster.master, 256)
                    .await;
                out
            };
            // `None` = preempted mid-flight: the work future is dropped
            // (cancelling its in-flight transfers exactly like a node-kill
            // abort would) and the JobTracker books were already fixed by
            // the preempting scheduler.
            let outcome = match stop {
                None => Some(work.await),
                Some(stop) => {
                    let mut work = std::pin::pin!(work);
                    let mut stop = std::pin::pin!(stop);
                    std::future::poll_fn(|cx| {
                        // Fixed poll order (work, then stop): deterministic.
                        if let Poll::Ready(v) = work.as_mut().poll(cx) {
                            return Poll::Ready(Some(v));
                        }
                        if stop.as_mut().poll(cx).is_ready() {
                            return Poll::Ready(None);
                        }
                        Poll::Pending
                    })
                    .await
                }
            };
            if speculative {
                // Off the preemption radar (no-op if the scheduler or a
                // job finalize already dropped the entry).
                inner.spec_running.borrow_mut().remove(&spec_key);
            }
            let idx = desc.idx;
            let end_s = sim.now().as_secs_f64();
            job.slot_secs
                .set(job.slot_secs.get() + (end_s - attempt_start));
            match outcome {
                None => {
                    job.timeline.record(TaskEvent {
                        kind: TaskKind::Map,
                        idx,
                        tt: tt.idx,
                        start_s: attempt_start,
                        end_s,
                        outcome: Outcome::Preempted,
                    });
                    inner.obs.emit(|| Ev::AttemptFinish {
                        node: tt.idx,
                        job: job.id.0,
                        kind: TaskFlavor::Map,
                        idx,
                        outcome: AttemptOutcome::Preempted,
                    });
                }
                Some(Some(info)) => {
                    let map_idx = info.map_idx;
                    // The engine may register the output immediately (the
                    // default) or stage it for aggregation and release
                    // folded outputs — possibly several, possibly none —
                    // once a wave is full.
                    let staged = inner
                        .engine
                        .stage_map_output(
                            StageCtx {
                                cluster: inner.cluster.clone(),
                                conf: Rc::clone(&job.conf),
                                spec: job.spec.clone(),
                                job: job.id,
                                total_maps: job.total_maps,
                                tt_idx: tt.idx,
                                obs: inner.obs.clone(),
                            },
                            info,
                        )
                        .await;
                    let (committed, ready) = match staged {
                        Staged::Direct(info) => {
                            let first = job.jt.borrow_mut().map_completed(map_idx, tt.idx);
                            if first {
                                // Only the winning attempt's output is
                                // committed; speculative losers are
                                // discarded (their file stays on disk until
                                // job cleanup, as in Hadoop).
                                inner.outputs.insert(info);
                                tt.on_map_output(job.id, map_idx);
                            }
                            (first, Vec::new())
                        }
                        Staged::Deferred { accepted, ready } => (accepted, ready),
                    };
                    job.timeline.record(TaskEvent {
                        kind: TaskKind::Map,
                        idx,
                        tt: tt.idx,
                        start_s: attempt_start,
                        end_s,
                        outcome: if committed {
                            Outcome::Completed
                        } else {
                            Outcome::Discarded
                        },
                    });
                    inner.obs.emit(|| Ev::AttemptFinish {
                        node: tt.idx,
                        job: job.id.0,
                        kind: TaskFlavor::Map,
                        idx,
                        outcome: if committed {
                            AttemptOutcome::Completed
                        } else {
                            AttemptOutcome::Discarded
                        },
                    });
                    // Flushed staged outputs register now, on behalf of the
                    // nodes that buffered them.
                    for out in ready {
                        let out_map = out.map_idx;
                        let out_tt = out.tt_idx;
                        if job.jt.borrow_mut().map_completed(out_map, out_tt) {
                            inner.outputs.insert(out);
                            inner.tts[out_tt].on_map_output(job.id, out_map);
                        }
                    }
                    if committed {
                        let (maps_done, job_done) = {
                            let jtb = job.jt.borrow();
                            (jtb.maps_done(), jtb.job_done())
                        };
                        if maps_done {
                            job.map_phase_end_s.set(sim.now().as_secs_f64());
                            inner.obs.emit(|| Ev::JobState {
                                job: job.id.0,
                                state: JobState::MapsDone,
                            });
                        }
                        if job_done {
                            // A node death re-queued a completed map whose
                            // output every reducer had already fetched; this
                            // re-execution was the job's last outstanding
                            // work, so the map path must commit the job —
                            // no further reduce completion will.
                            inner.finalize(&job);
                        }
                    }
                }
                Some(None) => {
                    job.timeline.record(TaskEvent {
                        kind: TaskKind::Map,
                        idx,
                        tt: tt.idx,
                        start_s: attempt_start,
                        end_s,
                        outcome: Outcome::Failed,
                    });
                    inner.obs.emit(|| Ev::AttemptFinish {
                        node: tt.idx,
                        job: job.id.0,
                        kind: TaskFlavor::Map,
                        idx,
                        outcome: AttemptOutcome::Failed,
                    });
                    job.jt.borrow_mut().map_failed(desc, tt.idx);
                }
            }
            inner.obs.emit(|| Ev::SlotRelease {
                node: tt.idx,
                job: job.id.0,
                kind: TaskFlavor::Map,
                idx,
            });
            drop(permit);
            drop(qguard);
        })
        .detach();
}

fn spawn_reduce_attempt(
    inner: &Rc<RtInner>,
    job: &Rc<ActiveJob>,
    tt: &Rc<TaskTracker>,
    reduce_idx: usize,
    permit: Permit,
) {
    let inner = Rc::clone(inner);
    let job = Rc::clone(job);
    let sim = inner.sim.clone();
    note_launch(&inner, &job, sim.now().as_secs_f64());
    inner.obs.emit(|| Ev::SlotAcquire {
        node: tt.idx,
        job: job.id.0,
        kind: TaskFlavor::Reduce,
        idx: reduce_idx,
    });
    let qguard = QueueSlotGuard::acquire(&inner.queue_used, job.conf.queue, false);
    let attempt = {
        let mut launches = job.reduce_launches.borrow_mut();
        let n = launches.entry(reduce_idx).or_insert(0);
        *n += 1;
        *n
    };
    let ctx = ReduceCtx {
        cluster: inner.cluster.clone(),
        conf: Rc::clone(&job.conf),
        spec: job.spec.clone(),
        jt: Rc::clone(&job.jt),
        servers: Rc::clone(&inner.servers),
        liveness: Rc::clone(&inner.liveness),
        tt: Rc::clone(tt),
        job: job.id,
        reduce_idx,
        attempt,
        total_maps: job.total_maps,
    };
    let tt_idx = tt.idx;
    // Like maps, the attempt dies with its node (TaskTracker group).
    tt.group
        .clone()
        .spawn_named(format!("{}-reduce-{reduce_idx}", job.id), async move {
            let attempt_start = sim.now().as_secs_f64();
            inner.obs.emit(|| Ev::AttemptStart {
                node: tt_idx,
                job: job.id.0,
                kind: TaskFlavor::Reduce,
                idx: reduce_idx,
            });
            sim.sleep(job.conf.task_launch_overhead).await;
            // Fault injection: this attempt dies before shuffling and the
            // task goes back to the queue (detected at the next status
            // interval).
            if job.jt.borrow_mut().should_fail_reduce(reduce_idx) {
                sim.sleep(SimDuration::from_secs(10)).await;
                inner
                    .cluster
                    .net
                    .transfer(ctx.tt.node.id, inner.cluster.master, 256)
                    .await;
                let end_s = sim.now().as_secs_f64();
                job.slot_secs
                    .set(job.slot_secs.get() + (end_s - attempt_start));
                job.timeline.record(TaskEvent {
                    kind: TaskKind::Reduce,
                    idx: reduce_idx,
                    tt: tt_idx,
                    start_s: attempt_start,
                    end_s,
                    outcome: Outcome::Failed,
                });
                inner.obs.emit(|| Ev::AttemptFinish {
                    node: tt_idx,
                    job: job.id.0,
                    kind: TaskFlavor::Reduce,
                    idx: reduce_idx,
                    outcome: AttemptOutcome::Failed,
                });
                job.jt.borrow_mut().reduce_failed(reduce_idx);
                inner.obs.emit(|| Ev::SlotRelease {
                    node: tt_idx,
                    job: job.id.0,
                    kind: TaskFlavor::Reduce,
                    idx: reduce_idx,
                });
                drop(permit);
                drop(qguard);
                return;
            }
            let outcome = inner.engine.run_reduce(ctx).await;
            // Commit / status notification.
            inner
                .cluster
                .net
                .transfer(inner.cluster.workers[0].id, inner.cluster.master, 256)
                .await;
            let end_s = sim.now().as_secs_f64();
            job.slot_secs
                .set(job.slot_secs.get() + (end_s - attempt_start));
            match outcome {
                Ok(stats) => {
                    job.timeline.record(TaskEvent {
                        kind: TaskKind::Reduce,
                        idx: reduce_idx,
                        tt: tt_idx,
                        start_s: attempt_start,
                        end_s,
                        outcome: Outcome::Completed,
                    });
                    inner.obs.emit(|| Ev::AttemptFinish {
                        node: tt_idx,
                        job: job.id.0,
                        kind: TaskFlavor::Reduce,
                        idx: reduce_idx,
                        outcome: AttemptOutcome::Completed,
                    });
                    job.reduce_stats.borrow_mut()[reduce_idx] = Some(stats);
                    let finished = {
                        let mut jtb = job.jt.borrow_mut();
                        jtb.reduce_completed(reduce_idx);
                        jtb.job_done()
                    };
                    if finished {
                        inner.finalize(&job);
                    }
                    inner.obs.emit(|| Ev::SlotRelease {
                        node: tt_idx,
                        job: job.id.0,
                        kind: TaskFlavor::Reduce,
                        idx: reduce_idx,
                    });
                    drop(permit);
                    drop(qguard);
                }
                Err(ReduceError::SourceLost { .. }) => {
                    // A shuffle source died under the attempt. Release the
                    // slot, back off exponentially on the retry count, then
                    // re-queue the whole task (partial shuffles are not
                    // checkpointed — Hadoop restarts the reducer).
                    let retries = {
                        let mut r = job.reduce_retries.borrow_mut();
                        let n = r.entry(reduce_idx).or_insert(0);
                        *n += 1;
                        *n
                    };
                    job.timeline.record(TaskEvent {
                        kind: TaskKind::Reduce,
                        idx: reduce_idx,
                        tt: tt_idx,
                        start_s: attempt_start,
                        end_s,
                        outcome: Outcome::Failed,
                    });
                    inner.obs.emit(|| Ev::AttemptFinish {
                        node: tt_idx,
                        job: job.id.0,
                        kind: TaskFlavor::Reduce,
                        idx: reduce_idx,
                        outcome: AttemptOutcome::Failed,
                    });
                    inner.obs.emit(|| Ev::SlotRelease {
                        node: tt_idx,
                        job: job.id.0,
                        kind: TaskFlavor::Reduce,
                        idx: reduce_idx,
                    });
                    drop(permit);
                    drop(qguard);
                    // Fetch-failure backoff before the re-queued task is
                    // offered to heartbeats again: capped exponential in the
                    // event-poll interval.
                    let exp = (retries - 1).min(5);
                    sim.sleep(job.conf.event_poll * (1u64 << exp)).await;
                    job.jt.borrow_mut().reduce_attempt_lost(reduce_idx);
                    inner.work.notify_all();
                }
            }
        })
        .detach();
}
