//! The shuffle wire protocol shared by all three engines.
//!
//! Requests and responses carry the identification and control parameters
//! the paper lists (§III-B-1): map id, reduce id, packet sizing, and
//! kv-pair counts. Vanilla Hadoop moves these messages over socket
//! connections (HTTP request/response framing folded into the fixed header
//! size); the RDMA engines move them over UCR endpoints.

use crate::record::Segment;
use crate::runtime::JobId;
use rmr_net::Wire;

/// Fixed per-message framing/header bytes (HTTP headers or the RDMA
/// request/response control block).
pub const MSG_HEADER_BYTES: u64 = 64;

/// How much data a shuffle request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBudget {
    /// Up to this many bytes of kv-pairs (OSU-IB's size-aware packets).
    Bytes(u64),
    /// Exactly this many kv-pairs regardless of size (Hadoop-A).
    Records(u64),
    /// The whole remaining partition (vanilla HTTP fetch).
    Full,
}

/// A shuffle message.
#[derive(Debug, Clone)]
pub enum ShufMsg {
    /// Reducer → TaskTracker: send me data of map `map_idx` for partition
    /// `reduce`.
    Request {
        /// Which job the map output belongs to (the server is shared by
        /// every job on the cluster runtime).
        job: JobId,
        /// Which map output.
        map_idx: usize,
        /// Which reduce partition.
        reduce: usize,
        /// The reducer's attempt number (monotone per partition). A retried
        /// reducer re-fetches every segment from the head, so the server
        /// rewinds its serve cursor when it sees a newer attempt; requests
        /// from an older (dead) attempt are answered empty.
        attempt: u32,
        /// How much.
        budget: PacketBudget,
    },
    /// TaskTracker → reducer: one packet of the requested segment.
    Response {
        /// Which map output.
        map_idx: usize,
        /// Which reduce partition.
        reduce: usize,
        /// The kv-pairs (real or synthetic).
        packet: Segment,
        /// Records still unsent after this packet (0 ⇒ segment complete).
        remaining_records: u64,
        /// Total records of this (map, reduce) segment.
        total_records: u64,
        /// Total bytes of this (map, reduce) segment.
        total_bytes: u64,
        /// True if the packet was served from the PrefetchCache.
        from_cache: bool,
    },
}

impl Wire for ShufMsg {
    fn wire_size(&self) -> u64 {
        match self {
            ShufMsg::Request { .. } => MSG_HEADER_BYTES,
            ShufMsg::Response { packet, .. } => MSG_HEADER_BYTES + packet.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let req = ShufMsg::Request {
            job: JobId(0),
            map_idx: 0,
            reduce: 0,
            attempt: 0,
            budget: PacketBudget::Full,
        };
        assert_eq!(req.wire_size(), MSG_HEADER_BYTES);
        let resp = ShufMsg::Response {
            map_idx: 0,
            reduce: 0,
            packet: Segment::synthetic(10, 1_000),
            remaining_records: 0,
            total_records: 10,
            total_bytes: 1_000,
            from_cache: false,
        };
        assert_eq!(resp.wire_size(), MSG_HEADER_BYTES + 1_000);
    }
}
