//! Property-based tests on the JobTracker scheduler: locality preference,
//! slowstart gating, and no-double-completion must hold under arbitrary
//! interleavings of heartbeats, completions, and failures — the interleaving
//! a multi-job runtime produces when several jobs share the same trackers.

use std::collections::BTreeSet;

use proptest::prelude::*;

use rmr_core::jobtracker::{JobTracker, MapTaskDesc};
use rmr_hdfs::{BlockId, BlockMeta};
use rmr_net::NodeId;

fn desc(idx: usize, loc: u32) -> MapTaskDesc {
    MapTaskDesc {
        idx,
        block: BlockMeta {
            id: BlockId(idx as u64),
            size: 4 << 20,
            replicas: vec![0],
        },
        locations: vec![NodeId(loc)],
    }
}

/// One step of the random schedule: a heartbeat from some node with some
/// free slots, or completing / failing one of the currently running
/// attempts (picked by the `u8` selector modulo the running count).
fn arb_step() -> impl Strategy<Value = (u32, usize, usize, u8, u8)> {
    (0u32..4, 0usize..4, 0usize..3, any::<u8>(), any::<u8>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Without speculation every launched attempt is unique, locality is
    /// honoured within each heartbeat batch, unfilled slots imply an empty
    /// pending queue, and the slowstart threshold gates every reduce launch.
    #[test]
    fn scheduler_invariants_under_random_interleavings(
        total_maps in 1usize..12,
        total_reduces in 0usize..5,
        slowstart_pct in 0u32..101,
        steps in proptest::collection::vec(arb_step(), 1..100),
    ) {
        let slowstart = slowstart_pct as f64 / 100.0;
        let descs: Vec<MapTaskDesc> =
            (0..total_maps).map(|i| desc(i, (i % 4) as u32)).collect();
        let mut jt = JobTracker::new(descs, total_reduces, slowstart);

        // Shadow model of the scheduler's visible state. Each running
        // attempt remembers the tracker it launched on — failure reporting
        // is per-tracker now.
        let mut pending: BTreeSet<usize> = (0..total_maps).collect();
        let mut running: Vec<(MapTaskDesc, usize)> = Vec::new();
        let mut completed: BTreeSet<usize> = BTreeSet::new();
        let mut reduces_launched: BTreeSet<usize> = BTreeSet::new();

        for (node, mslots, rslots, action, pick) in steps {
            match action % 3 {
                0 => {
                    let gate_open = jt.maps_completed() as f64
                        >= slowstart * total_maps as f64;
                    let (maps, reduces) =
                        jt.heartbeat(NodeId(node), node as usize, mslots, rslots);
                    prop_assert!(maps.len() <= mslots, "over-assignment");
                    prop_assert!(reduces.len() <= rslots, "over-assignment");
                    // Pass 1 drains data-local maps before pass 2 touches the
                    // rest, so locals must precede non-locals in the batch.
                    let mut seen_nonlocal = false;
                    for m in &maps {
                        if m.locations.contains(&NodeId(node)) {
                            prop_assert!(
                                !seen_nonlocal,
                                "data-local map scheduled after a remote one"
                            );
                        } else {
                            seen_nonlocal = true;
                        }
                    }
                    for m in &maps {
                        prop_assert!(
                            pending.remove(&m.idx),
                            "map {} launched while not pending", m.idx
                        );
                        running.push((m.clone(), node as usize));
                    }
                    if maps.len() < mslots {
                        prop_assert!(
                            pending.is_empty(),
                            "slots left idle while maps were pending"
                        );
                    }
                    if !reduces.is_empty() {
                        prop_assert!(
                            gate_open,
                            "reduce launched below the slowstart threshold \
                             ({} of {} maps done, slowstart {slowstart})",
                            jt.maps_completed(), total_maps
                        );
                    }
                    for r in reduces {
                        prop_assert!(r < total_reduces);
                        prop_assert!(
                            reduces_launched.insert(r),
                            "reduce {r} launched twice without failing"
                        );
                    }
                }
                1 => {
                    if running.is_empty() {
                        continue;
                    }
                    let (d, tt) = running.remove(pick as usize % running.len());
                    let before = jt.maps_completed();
                    prop_assert!(
                        jt.map_completed(d.idx, tt),
                        "without speculation every completion is the first"
                    );
                    prop_assert!(completed.insert(d.idx), "double completion");
                    prop_assert_eq!(jt.maps_completed(), before + 1);
                }
                _ => {
                    if running.is_empty() {
                        continue;
                    }
                    let (d, tt) = running.remove(pick as usize % running.len());
                    pending.insert(d.idx);
                    jt.map_failed(d, tt);
                }
            }
            prop_assert!(jt.maps_completed() <= total_maps);
            prop_assert_eq!(jt.maps_completed(), completed.len());
        }
    }

    /// With speculation on, duplicate attempts exist but `map_completed`
    /// returns `true` exactly once per task, and the completed count stays
    /// monotonic and bounded by the task count.
    #[test]
    fn speculative_completions_count_once(
        total_maps in 1usize..10,
        steps in proptest::collection::vec(arb_step(), 1..100),
    ) {
        let descs: Vec<MapTaskDesc> =
            (0..total_maps).map(|i| desc(i, (i % 4) as u32)).collect();
        let mut jt = JobTracker::new(descs, 0, 0.05);
        jt.set_speculative(true);

        let mut attempts: Vec<(usize, usize)> = Vec::new();
        let mut completed: BTreeSet<usize> = BTreeSet::new();

        for (node, mslots, _, action, pick) in steps {
            if action % 2 == 0 {
                let (maps, _) = jt.heartbeat(NodeId(node), node as usize, mslots, 0);
                prop_assert!(maps.len() <= mslots);
                for m in maps {
                    prop_assert!(
                        !completed.contains(&m.idx),
                        "completed map {} speculated again", m.idx
                    );
                    attempts.push((m.idx, node as usize));
                }
            } else {
                if attempts.is_empty() {
                    continue;
                }
                let (idx, tt) = attempts.remove(pick as usize % attempts.len());
                let before = jt.maps_completed();
                let first = jt.map_completed(idx, tt);
                prop_assert_eq!(
                    first,
                    completed.insert(idx),
                    "map_completed must return true exactly once per task"
                );
                prop_assert_eq!(
                    jt.maps_completed(),
                    before + usize::from(first),
                    "only first completions advance the counter"
                );
            }
            prop_assert!(jt.maps_completed() <= total_maps);
            prop_assert_eq!(jt.maps_completed(), completed.len());
        }

        // Drain: finish every remaining attempt; the tracker must converge
        // to exactly one counted completion per task regardless of losers.
        while let Some((idx, tt)) = attempts.pop() {
            let first = jt.map_completed(idx, tt);
            prop_assert_eq!(first, completed.insert(idx));
        }
        prop_assert_eq!(jt.maps_completed(), completed.len());
    }
}
