//! Property-based tests on the JobTracker scheduler: locality preference,
//! slowstart gating, and no-double-completion must hold under arbitrary
//! interleavings of heartbeats, completions, and failures — the interleaving
//! a multi-job runtime produces when several jobs share the same trackers.
//!
//! The capacity-queue invariants ride the same harness: delay scheduling
//! may defer a job by at most its skip budget, speculative preemption may
//! never strand a task or lose a committed completion, and a queue with a
//! slot guarantee must overtake a FIFO backlog whenever it has demand.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use proptest::prelude::*;

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::jobtracker::{JobTracker, MapTaskDesc};
use rmr_core::{CapacityPlan, JobConf, JobResult, JobSpec, Runtime, SchedulePolicy, ShuffleKind};
use rmr_des::{Sim, SimDuration};
use rmr_hdfs::{Blob, BlockId, BlockMeta, HdfsConfig};
use rmr_net::{FabricParams, NodeId};

fn desc(idx: usize, loc: u32) -> MapTaskDesc {
    MapTaskDesc {
        idx,
        block: BlockMeta {
            id: BlockId(idx as u64),
            size: 4 << 20,
            replicas: vec![0],
        },
        locations: vec![NodeId(loc)],
    }
}

/// One step of the random schedule: a heartbeat from some node with some
/// free slots, or completing / failing one of the currently running
/// attempts (picked by the `u8` selector modulo the running count).
fn arb_step() -> impl Strategy<Value = (u32, usize, usize, u8, u8)> {
    (0u32..4, 0usize..4, 0usize..3, any::<u8>(), any::<u8>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Without speculation every launched attempt is unique, locality is
    /// honoured within each heartbeat batch, unfilled slots imply an empty
    /// pending queue, and the slowstart threshold gates every reduce launch.
    #[test]
    fn scheduler_invariants_under_random_interleavings(
        total_maps in 1usize..12,
        total_reduces in 0usize..5,
        slowstart_pct in 0u32..101,
        steps in proptest::collection::vec(arb_step(), 1..100),
    ) {
        let slowstart = slowstart_pct as f64 / 100.0;
        let descs: Vec<MapTaskDesc> =
            (0..total_maps).map(|i| desc(i, (i % 4) as u32)).collect();
        let mut jt = JobTracker::new(descs, total_reduces, slowstart);

        // Shadow model of the scheduler's visible state. Each running
        // attempt remembers the tracker it launched on — failure reporting
        // is per-tracker now.
        let mut pending: BTreeSet<usize> = (0..total_maps).collect();
        let mut running: Vec<(MapTaskDesc, usize)> = Vec::new();
        let mut completed: BTreeSet<usize> = BTreeSet::new();
        let mut reduces_launched: BTreeSet<usize> = BTreeSet::new();

        for (node, mslots, rslots, action, pick) in steps {
            match action % 3 {
                0 => {
                    let gate_open = jt.maps_completed() as f64
                        >= slowstart * total_maps as f64;
                    let (maps, _, reduces) =
                        jt.heartbeat(NodeId(node), node as usize, mslots, rslots);
                    prop_assert!(maps.len() <= mslots, "over-assignment");
                    prop_assert!(reduces.len() <= rslots, "over-assignment");
                    // Pass 1 drains data-local maps before pass 2 touches the
                    // rest, so locals must precede non-locals in the batch.
                    let mut seen_nonlocal = false;
                    for m in &maps {
                        if m.locations.contains(&NodeId(node)) {
                            prop_assert!(
                                !seen_nonlocal,
                                "data-local map scheduled after a remote one"
                            );
                        } else {
                            seen_nonlocal = true;
                        }
                    }
                    for m in &maps {
                        prop_assert!(
                            pending.remove(&m.idx),
                            "map {} launched while not pending", m.idx
                        );
                        running.push((m.clone(), node as usize));
                    }
                    if maps.len() < mslots {
                        prop_assert!(
                            pending.is_empty(),
                            "slots left idle while maps were pending"
                        );
                    }
                    if !reduces.is_empty() {
                        prop_assert!(
                            gate_open,
                            "reduce launched below the slowstart threshold \
                             ({} of {} maps done, slowstart {slowstart})",
                            jt.maps_completed(), total_maps
                        );
                    }
                    for r in reduces {
                        prop_assert!(r < total_reduces);
                        prop_assert!(
                            reduces_launched.insert(r),
                            "reduce {r} launched twice without failing"
                        );
                    }
                }
                1 => {
                    if running.is_empty() {
                        continue;
                    }
                    let (d, tt) = running.remove(pick as usize % running.len());
                    let before = jt.maps_completed();
                    prop_assert!(
                        jt.map_completed(d.idx, tt),
                        "without speculation every completion is the first"
                    );
                    prop_assert!(completed.insert(d.idx), "double completion");
                    prop_assert_eq!(jt.maps_completed(), before + 1);
                }
                _ => {
                    if running.is_empty() {
                        continue;
                    }
                    let (d, tt) = running.remove(pick as usize % running.len());
                    pending.insert(d.idx);
                    jt.map_failed(d, tt);
                }
            }
            prop_assert!(jt.maps_completed() <= total_maps);
            prop_assert_eq!(jt.maps_completed(), completed.len());
        }
    }

    /// With speculation on, duplicate attempts exist but `map_completed`
    /// returns `true` exactly once per task, and the completed count stays
    /// monotonic and bounded by the task count.
    #[test]
    fn speculative_completions_count_once(
        total_maps in 1usize..10,
        steps in proptest::collection::vec(arb_step(), 1..100),
    ) {
        let descs: Vec<MapTaskDesc> =
            (0..total_maps).map(|i| desc(i, (i % 4) as u32)).collect();
        let mut jt = JobTracker::new(descs, 0, 0.05);
        jt.set_speculative(true);

        let mut attempts: Vec<(usize, usize)> = Vec::new();
        let mut completed: BTreeSet<usize> = BTreeSet::new();

        for (node, mslots, _, action, pick) in steps {
            if action % 2 == 0 {
                let (maps, _, _) = jt.heartbeat(NodeId(node), node as usize, mslots, 0);
                prop_assert!(maps.len() <= mslots);
                for m in maps {
                    prop_assert!(
                        !completed.contains(&m.idx),
                        "completed map {} speculated again", m.idx
                    );
                    attempts.push((m.idx, node as usize));
                }
            } else {
                if attempts.is_empty() {
                    continue;
                }
                let (idx, tt) = attempts.remove(pick as usize % attempts.len());
                let before = jt.maps_completed();
                let first = jt.map_completed(idx, tt);
                prop_assert_eq!(
                    first,
                    completed.insert(idx),
                    "map_completed must return true exactly once per task"
                );
                prop_assert_eq!(
                    jt.maps_completed(),
                    before + usize::from(first),
                    "only first completions advance the counter"
                );
            }
            prop_assert!(jt.maps_completed() <= total_maps);
            prop_assert_eq!(jt.maps_completed(), completed.len());
        }

        // Drain: finish every remaining attempt; the tracker must converge
        // to exactly one counted completion per task regardless of losers.
        while let Some((idx, tt)) = attempts.pop() {
            let first = jt.map_completed(idx, tt);
            prop_assert_eq!(first, completed.insert(idx));
        }
        prop_assert_eq!(jt.maps_completed(), completed.len());
    }

    /// Delay scheduling bounds the wait: a job may decline at most
    /// `locality_delay` consecutive non-local launch opportunities before it
    /// must accept one, and a granted non-local launch re-arms the budget.
    #[test]
    fn delay_scheduling_bounds_nonlocal_wait(
        total_maps in 2usize..12,
        delay in 0u32..6,
        steps in proptest::collection::vec((1u32..4, 1usize..3), 1..120),
    ) {
        // Every map is local to node 0; heartbeats only ever come from
        // nodes 1..4, so each offered slot is a non-local opportunity.
        let descs: Vec<MapTaskDesc> = (0..total_maps).map(|i| desc(i, 0)).collect();
        let mut jt = JobTracker::new(descs, 0, 0.05);
        jt.set_locality_delay(delay);

        let mut pending = total_maps;
        let mut declines = 0u32;
        for (node, mslots) in steps {
            if pending == 0 {
                break;
            }
            let (maps, _, _) = jt.heartbeat(NodeId(node), node as usize, mslots, 0);
            if maps.is_empty() {
                declines += 1;
                prop_assert!(
                    declines <= delay,
                    "declined {declines} consecutive non-local offers, budget {delay}"
                );
            } else {
                // The budget had to be exhausted before a non-local grant.
                prop_assert_eq!(
                    declines, delay,
                    "non-local launch granted before the skip budget ran out"
                );
                declines = 0;
                pending -= maps.len();
            }
        }
    }

    /// Preemption under queue pressure never loses committed work: a grant
    /// requires a second live attempt (or an orphaned loser), the last live
    /// attempt of an incomplete task is always refused, and the completed
    /// count is untouched by preemption.
    #[test]
    fn preemption_never_strands_or_uncompletes(
        total_maps in 1usize..8,
        steps in proptest::collection::vec(arb_step(), 1..120),
    ) {
        let descs: Vec<MapTaskDesc> =
            (0..total_maps).map(|i| desc(i, (i % 4) as u32)).collect();
        let mut jt = JobTracker::new(descs, 0, 0.05);
        jt.set_speculative(true);

        // Shadow multiset of in-flight attempts (winners removed on
        // completion; losers stay until finished or preempted).
        let mut attempts: Vec<(usize, usize)> = Vec::new();
        let mut completed: BTreeSet<usize> = BTreeSet::new();

        for (node, mslots, _, action, pick) in steps {
            match action % 3 {
                0 => {
                    let (maps, _, _) = jt.heartbeat(NodeId(node), node as usize, mslots, 0);
                    for m in maps {
                        attempts.push((m.idx, node as usize));
                    }
                }
                1 => {
                    if attempts.is_empty() {
                        continue;
                    }
                    let (idx, tt) = attempts.remove(pick as usize % attempts.len());
                    let first = jt.map_completed(idx, tt);
                    prop_assert_eq!(first, completed.insert(idx));
                }
                _ => {
                    if attempts.is_empty() {
                        continue;
                    }
                    let at = pick as usize % attempts.len();
                    let (idx, tt) = attempts[at];
                    let live = attempts.iter().filter(|(i, _)| *i == idx).count();
                    let before = jt.maps_completed();
                    let granted = jt.preempt_speculative(idx, tt);
                    prop_assert_eq!(jt.maps_completed(), before,
                        "preemption moved the completed count");
                    if completed.contains(&idx) {
                        // Orphaned loser: always redundant, always sheddable.
                        prop_assert!(granted, "orphan preemption refused");
                    } else {
                        prop_assert_eq!(granted, live >= 2,
                            "grant iff a second live attempt covers the task");
                    }
                    if granted {
                        attempts.remove(at);
                        if !completed.contains(&idx) {
                            prop_assert!(
                                attempts.iter().any(|(i, _)| *i == idx),
                                "preemption stranded incomplete map {idx}"
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(jt.maps_completed(), completed.len());
        }

        // Drain every surviving attempt: each task launched at least once
        // must still be completable — nothing was lost to preemption.
        let launched: BTreeSet<usize> =
            attempts.iter().map(|(i, _)| *i).chain(completed.iter().copied()).collect();
        while let Some((idx, tt)) = attempts.pop() {
            let first = jt.map_completed(idx, tt);
            prop_assert_eq!(first, completed.insert(idx));
        }
        prop_assert_eq!(completed, launched);
        prop_assert_eq!(jt.maps_completed(), jt.maps_completed().min(total_maps));
    }
}

/// One two-queue backlog run: `batch_jobs` six-block sort jobs flood queue 1
/// at t = 0, a one-block queue-0 job arrives at t = 1 s. Returns every
/// [`JobResult`] (queue field distinguishes tenants); asserts quiescence.
fn backlog_run(policy: SchedulePolicy, batch_jobs: usize, seed: u64) -> Vec<JobResult> {
    let sim = Sim::new(seed);
    let cluster = Cluster::build(
        &sim,
        FabricParams::ib_verbs_qdr(),
        &vec![NodeSpec::westmere_compute(); 2],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    );
    let mut conf = JobConf::for_kind(ShuffleKind::OsuIb);
    conf.num_reduces = 1;
    conf.map_slots = 2;
    conf.reduce_slots = 1;
    let results: Rc<RefCell<Vec<JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&results);
    let c2 = cluster.clone();
    let sim2 = sim.clone();
    sim.spawn_named("backlog-driver", async move {
        for (path, blocks) in [("/cap/big", 6u64), ("/cap/small", 1)] {
            for b in 0..blocks {
                let node = c2.workers[(b % 2) as usize].id;
                let mut w = c2
                    .hdfs
                    .create(&format!("{path}/part-{b}"), node)
                    .await
                    .expect("create backlog input");
                w.write(Blob::synthetic(4 << 20)).await.expect("write");
                w.close().await.expect("close");
            }
        }
        let rt = Runtime::with_policy(&c2, conf.clone(), policy);
        let mut ids = Vec::new();
        for i in 0..batch_jobs {
            let mut c = conf.clone();
            c.queue = 1;
            ids.push(rt.submit(c, JobSpec::sort("/cap/big", &format!("/cap/outb{i}"), 100)));
        }
        sim2.sleep(SimDuration::from_secs_f64(1.0)).await;
        let mut c = conf.clone();
        c.queue = 0;
        ids.push(rt.submit(c, JobSpec::sort("/cap/small", "/cap/outi", 100)));
        for id in ids {
            let res = rt.join(id).await;
            r2.borrow_mut().push(res);
        }
        assert_eq!(rt.state_footprint().total(), 0, "job-keyed state leaked");
    })
    .detach();
    sim.run();
    let out = results.borrow().clone();
    assert_eq!(out.len(), batch_jobs + 1, "backlog run hung");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Slot guarantees are honoured under demand: with a capacity share, the
    /// late-arriving queue-0 job must never wait longer than it does under
    /// FIFO, and with a real backlog it overtakes queue 1's tail entirely
    /// instead of draining behind it.
    #[test]
    fn capacity_guarantee_overtakes_fifo_backlog(
        batch_jobs in 2usize..5,
        share0 in 300u32..701,
        preempt in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let plan = CapacityPlan::new(&[(0, share0), (1, 1000 - share0)]);
        let plan = if preempt { plan.with_preemption() } else { plan };
        let cap = backlog_run(SchedulePolicy::Capacity(plan), batch_jobs, seed);
        let fifo = backlog_run(SchedulePolicy::Fifo, batch_jobs, seed);

        let q0 = |rs: &[JobResult]| {
            rs.iter().find(|r| r.queue == 0).expect("queue-0 job").clone()
        };
        let (cap0, fifo0) = (q0(&cap), q0(&fifo));
        prop_assert!(
            cap0.queue_wait_s <= fifo0.queue_wait_s,
            "guaranteed queue waited {:.2}s under capacity vs {:.2}s under FIFO",
            cap0.queue_wait_s, fifo0.queue_wait_s
        );
        // FIFO drains the backlog first, so queue 0 finishes last; with a
        // guarantee it must jump the queue and finish inside the backlog.
        let cap_tail = cap
            .iter()
            .filter(|r| r.queue == 1)
            .map(|r| r.end_s)
            .fold(0.0, f64::max);
        prop_assert!(
            cap0.end_s < cap_tail,
            "guaranteed job finished at {:.2}s, after the batch tail {:.2}s",
            cap0.end_s, cap_tail
        );
    }
}
