//! Property-based tests on the PrefetchCache invariants under arbitrary
//! operation sequences.

use proptest::prelude::*;

use rmr_core::prefetch::{PrefetchCache, Priority};

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, u64, bool), // (map, bytes, demand?)
    Lookup(usize),
    Remove(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..12, 1u64..400, any::<bool>()).prop_map(|(m, b, d)| Op::Insert(m, b, d)),
        (0usize..12).prop_map(Op::Lookup),
        (0usize..12).prop_map(Op::Remove),
    ]
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 0u64..1_000,
        ops in proptest::collection::vec(arb_op(), 0..200),
    ) {
        let cache = PrefetchCache::new(capacity);
        for op in ops {
            match op {
                Op::Insert(m, b, demand) => {
                    let pri = if demand { Priority::Demand } else { Priority::Prefetch };
                    let admitted_prediction = cache.would_admit(m, b, pri);
                    let admitted = cache.insert(m, b, pri);
                    prop_assert_eq!(admitted, admitted_prediction,
                        "would_admit must predict insert");
                    if admitted && !cache.contains(m) {
                        prop_assert!(false, "admitted entry must be resident");
                    }
                }
                Op::Lookup(m) => {
                    let hit = cache.lookup(m);
                    prop_assert_eq!(hit, cache.contains(m));
                }
                Op::Remove(m) => cache.remove(m),
            }
            prop_assert!(cache.used() <= capacity, "capacity invariant");
        }
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses <= 200);
    }

    #[test]
    fn demand_entries_survive_prefetch_pressure(
        demand_bytes in 1u64..300,
        pressure in proptest::collection::vec(1u64..300, 0..50),
    ) {
        let cache = PrefetchCache::new(600);
        prop_assume!(cache.insert(0, demand_bytes, Priority::Demand));
        for (i, b) in pressure.into_iter().enumerate() {
            let _ = cache.insert(i + 1, b, Priority::Prefetch);
            prop_assert!(cache.contains(0), "Prefetch inserts must never evict Demand data");
        }
    }
}
