//! Property-based tests on the PrefetchCache invariants under arbitrary
//! operation sequences, with entries spread across concurrent jobs.

use proptest::prelude::*;

use rmr_core::prefetch::{CacheKey, PrefetchCache, Priority};
use rmr_core::JobId;

#[derive(Debug, Clone)]
enum Op {
    Insert(CacheKey, u64, bool), // (key, bytes, demand?)
    Lookup(CacheKey),
    Remove(CacheKey),
    RemoveJob(u32),
}

fn arb_key() -> impl Strategy<Value = CacheKey> {
    (0u32..3, 0usize..12).prop_map(|(j, m)| (JobId(j), m))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), 1u64..400, any::<bool>()).prop_map(|(k, b, d)| Op::Insert(k, b, d)),
        arb_key().prop_map(Op::Lookup),
        arb_key().prop_map(Op::Remove),
        (0u32..3).prop_map(Op::RemoveJob),
    ]
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 0u64..1_000,
        ops in proptest::collection::vec(arb_op(), 0..200),
    ) {
        let cache = PrefetchCache::new(capacity);
        for op in ops {
            match op {
                Op::Insert(k, b, demand) => {
                    let pri = if demand { Priority::Demand } else { Priority::Prefetch };
                    let admitted_prediction = cache.would_admit(k, b, pri);
                    let admitted = cache.insert(k, b, pri);
                    prop_assert_eq!(admitted, admitted_prediction,
                        "would_admit must predict insert");
                    if admitted && !cache.contains(k) {
                        prop_assert!(false, "admitted entry must be resident");
                    }
                }
                Op::Lookup(k) => {
                    let hit = cache.lookup(k);
                    prop_assert_eq!(hit, cache.contains(k));
                }
                Op::Remove(k) => cache.remove(k),
                Op::RemoveJob(j) => {
                    cache.remove_job(JobId(j));
                    for m in 0..12 {
                        prop_assert!(!cache.contains((JobId(j), m)),
                            "remove_job must drop every entry of the job");
                    }
                }
            }
            prop_assert!(cache.used() <= capacity, "capacity invariant");
        }
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses <= 200);
    }

    #[test]
    fn demand_entries_survive_prefetch_pressure(
        demand_bytes in 1u64..300,
        pressure in proptest::collection::vec(1u64..300, 0..50),
    ) {
        let cache = PrefetchCache::new(600);
        let demand_key = (JobId(0), 0);
        prop_assume!(cache.insert(demand_key, demand_bytes, Priority::Demand));
        for (i, b) in pressure.into_iter().enumerate() {
            // Pressure alternates between the demand entry's own job and a
            // competing one: cross-job prefetch pressure must not evict
            // another job's demand-priority data either.
            let _ = cache.insert((JobId((i % 2) as u32 + 1), i + 1), b, Priority::Prefetch);
            prop_assert!(cache.contains(demand_key), "Prefetch inserts must never evict Demand data");
        }
    }
}
