//! Property-based tests for the streaming priority-queue merge: arbitrary
//! packet delivery schedules must never lose, duplicate, or disorder
//! records, and must stall exactly when a non-exhausted source is dry.

use proptest::prelude::*;

use rmr_core::merge::{Emit, StreamingMerge};
use rmr_core::record::SegmentCursor;
use rmr_core::{Record, Segment};

/// One source's data plus a packetisation of it.
fn arb_source() -> impl Strategy<Value = (Vec<Record>, u64)> {
    (
        proptest::collection::vec(
            (any::<u32>(), 0usize..16)
                .prop_map(|(k, vlen)| Record::new(k.to_be_bytes().to_vec(), vec![b'x'; vlen])),
            0..32,
        ),
        1u64..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn real_merge_with_arbitrary_delivery_is_lossless_and_sorted(
        sources in proptest::collection::vec(arb_source(), 1..5),
        batch in 1u64..64,
        schedule_seed in any::<u64>(),
    ) {
        // Build per-source packet queues.
        let mut queues: Vec<Vec<Segment>> = Vec::new();
        let mut expected_counts = Vec::new();
        let mut all_records: Vec<Record> = Vec::new();
        for (records, budget) in &sources {
            all_records.extend(records.iter().cloned());
            let seg = Segment::from_records(records.clone());
            expected_counts.push(seg.records);
            let mut cursor = SegmentCursor::new(seg);
            let mut packets = Vec::new();
            while !cursor.exhausted() {
                packets.push(cursor.take_bytes(*budget));
            }
            packets.reverse(); // pop from the back = delivery order
            queues.push(packets);
        }
        let total: u64 = expected_counts.iter().sum();
        let mut merge = StreamingMerge::new(expected_counts);

        // Drive: whenever stalled, deliver the next packet of a stalled (or
        // pseudo-random) source; collect emissions.
        let mut rng = schedule_seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        let mut out: Vec<Record> = Vec::new();
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "merge did not converge");
            match merge.emit(batch) {
                Emit::Done => break,
                Emit::Data(seg) => {
                    prop_assert!(seg.is_sorted());
                    out.extend(seg.iter_real().cloned());
                }
                Emit::Stalled(dry) => {
                    prop_assert!(!dry.is_empty());
                    // Deliver one pending packet for a dry source (they must
                    // all still have pending packets, else the merge lied).
                    let pick = dry[next() % dry.len()];
                    let pkt = queues[pick]
                        .pop()
                        .expect("stalled on a fully delivered source");
                    merge.append(pick, pkt);
                }
            }
        }
        prop_assert_eq!(out.len() as u64, total);
        prop_assert!(out.windows(2).all(|w| w[0].key <= w[1].key), "global order");
        // Permutation check.
        let mut expect: Vec<(Vec<u8>, usize)> =
            all_records.iter().map(|r| (r.key.to_vec(), r.value.len())).collect();
        expect.sort();
        let mut got: Vec<(Vec<u8>, usize)> =
            out.iter().map(|r| (r.key.to_vec(), r.value.len())).collect();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn synthetic_merge_conserves_under_arbitrary_delivery(
        sizes in proptest::collection::vec((0u64..500, 0u64..50_000), 1..6),
        packet_records in 1u64..64,
        batch in 1u64..256,
    ) {
        let expected: Vec<u64> = sizes.iter().map(|(r, _)| *r).collect();
        let total_records: u64 = expected.iter().sum();
        let total_bytes: u64 = sizes.iter().map(|(_, b)| *b).sum();
        let mut cursors: Vec<SegmentCursor> = sizes
            .iter()
            .map(|(r, b)| SegmentCursor::new(Segment::synthetic(*r, if *r == 0 { 0 } else { *b })))
            .collect();
        // Zero-record sources carry zero bytes.
        let total_bytes: u64 = cursors
            .iter()
            .map(|c| c.remaining_bytes())
            .sum::<u64>()
            .min(total_bytes);
        let mut merge = StreamingMerge::new(expected);
        let mut got = (0u64, 0u64);
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 100_000);
            match merge.emit(batch) {
                Emit::Done => break,
                Emit::Data(seg) => {
                    got.0 += seg.records;
                    got.1 += seg.bytes;
                }
                Emit::Stalled(dry) => {
                    for d in dry {
                        let pkt = cursors[d].take_records(packet_records);
                        prop_assert!(pkt.records > 0, "stalled on exhausted source");
                        merge.append(d, pkt);
                    }
                }
            }
        }
        prop_assert_eq!(got.0, total_records);
        prop_assert_eq!(got.1, total_bytes);
    }
}
