//! Property-based tests for the data plane: serialisation, partitioning,
//! merging, and packet cursors.

use bytes::Bytes;
use proptest::prelude::*;

use rmr_core::record::SegmentCursor;
use rmr_core::{
    decode_records, encode_records, HashPartitioner, Partitioner, Record, Segment,
    TotalOrderPartitioner,
};

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::collection::vec(any::<u8>(), 0..24),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(k, v)| Record::new(k, v))
}

fn arb_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(), 0..max)
}

proptest! {
    #[test]
    fn encode_decode_round_trips(records in arb_records(64)) {
        let decoded = decode_records(encode_records(&records));
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn from_records_sorts_and_conserves(records in arb_records(64)) {
        let n = records.len() as u64;
        let bytes: u64 = records.iter().map(Record::size).sum();
        let seg = Segment::from_records(records);
        prop_assert!(seg.is_sorted());
        prop_assert_eq!(seg.records, n);
        prop_assert_eq!(seg.bytes, bytes);
    }

    #[test]
    fn partition_conserves_and_respects_partitioner(
        records in arb_records(48),
        n in 1usize..9,
        total_order in any::<bool>(),
    ) {
        let part: Box<dyn Partitioner> = if total_order {
            Box::new(TotalOrderPartitioner)
        } else {
            Box::new(HashPartitioner)
        };
        let seg = Segment::from_records(records);
        let (recs, bytes) = (seg.records, seg.bytes);
        let parts = seg.partition(n, part.as_ref());
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().map(|p| p.records).sum::<u64>(), recs);
        prop_assert_eq!(parts.iter().map(|p| p.bytes).sum::<u64>(), bytes);
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(p.is_sorted());
            for r in p.iter_real() {
                prop_assert_eq!(part.partition(&r.key, n), i);
            }
        }
    }

    #[test]
    fn synthetic_partition_conserves(records in 0u64..10_000, bytes in 0u64..1_000_000, n in 1usize..17) {
        let parts = Segment::synthetic(records, bytes).partition(n, &HashPartitioner);
        prop_assert_eq!(parts.iter().map(|p| p.records).sum::<u64>(), records);
        prop_assert_eq!(parts.iter().map(|p| p.bytes).sum::<u64>(), bytes);
        // Even spread: no partition differs from another by more than 1.
        let max = parts.iter().map(|p| p.records).max().unwrap();
        let min = parts.iter().map(|p| p.records).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn merge_is_sorted_and_conserves(groups in proptest::collection::vec(arb_records(24), 0..6)) {
        let segs: Vec<Segment> = groups.into_iter().map(Segment::from_records).collect();
        let recs: u64 = segs.iter().map(|s| s.records).sum();
        let bytes: u64 = segs.iter().map(|s| s.bytes).sum();
        let merged = Segment::merge(&segs);
        prop_assert!(merged.is_sorted());
        prop_assert_eq!(merged.records, recs);
        prop_assert_eq!(merged.bytes, bytes);
    }

    #[test]
    fn merge_is_a_permutation(a in arb_records(24), b in arb_records(24)) {
        let sa = Segment::from_records(a.clone());
        let sb = Segment::from_records(b.clone());
        let merged = Segment::merge(&[sa, sb]);
        let mut expect: Vec<(Bytes, Bytes)> =
            a.iter().chain(b.iter()).map(|r| (r.key.clone(), r.value.clone())).collect();
        expect.sort();
        let mut got: Vec<(Bytes, Bytes)> =
            merged.iter_real().map(|r| (r.key.clone(), r.value.clone())).collect();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn cursor_take_bytes_covers_everything(records in arb_records(48), budget in 1u64..256) {
        let seg = Segment::from_records(records);
        let (recs, bytes) = (seg.records, seg.bytes);
        let mut cursor = SegmentCursor::new(seg);
        let mut got_recs = 0;
        let mut got_bytes = 0;
        let mut guard = 0;
        while !cursor.exhausted() {
            let p = cursor.take_bytes(budget);
            prop_assert!(p.records > 0, "progress guaranteed");
            prop_assert!(p.is_sorted());
            got_recs += p.records;
            got_bytes += p.bytes;
            guard += 1;
            prop_assert!(guard <= recs + 1);
        }
        prop_assert_eq!(got_recs, recs);
        prop_assert_eq!(got_bytes, bytes);
    }

    #[test]
    fn cursor_synthetic_conserves(records in 1u64..5_000, bytes in 0u64..500_000, n in 1u64..64) {
        let mut cursor = SegmentCursor::new(Segment::synthetic(records, bytes));
        let mut got = (0u64, 0u64);
        while !cursor.exhausted() {
            let p = cursor.take_records(n);
            got.0 += p.records;
            got.1 += p.bytes;
        }
        prop_assert_eq!(got, (records, bytes));
    }

    #[test]
    fn concat_of_cursor_windows_rebuilds_the_segment(records in arb_records(48), budget in 1u64..128) {
        let seg = Segment::from_records(records);
        let (recs, bytes) = (seg.records, seg.bytes);
        let mut cursor = SegmentCursor::new(seg);
        let mut packets = Vec::new();
        while !cursor.exhausted() {
            packets.push(cursor.take_bytes(budget));
        }
        let rebuilt = Segment::concat(packets);
        prop_assert_eq!(rebuilt.records, recs);
        prop_assert_eq!(rebuilt.bytes, bytes);
        prop_assert!(rebuilt.is_sorted());
    }

    #[test]
    fn total_order_partitioner_is_monotone_in_key(a in proptest::collection::vec(any::<u8>(), 1..12), b in proptest::collection::vec(any::<u8>(), 1..12), n in 1usize..32) {
        let p = TotalOrderPartitioner;
        let (lo, hi) = if a <= b { (&a, &b) } else { (&b, &a) };
        prop_assert!(p.partition(lo, n) <= p.partition(hi, n));
    }
}
