//! TeraGen / TeraSort / TeraValidate (§II-A-1).
//!
//! TeraSort records are exactly 100 bytes: a 10-byte key and a 90-byte
//! value. TeraGen fills HDFS with them (one file per worker, written in
//! parallel — generation time is not part of the benchmarked job, as in the
//! paper, where TeraGen runs before the measured TeraSort). TeraValidate
//! checks global sort order, exactly as the Hadoop tool does: each output
//! partition must be internally sorted and partition boundaries must be
//! non-decreasing, and no record may be lost.

use bytes::Bytes;
use rand::Rng;

use rmr_core::cluster::Cluster;
use rmr_core::{encode_records, JobSpec, Record};
use rmr_hdfs::Blob;

/// Key bytes per record.
pub const KEY_BYTES: usize = 10;
/// Value bytes per record.
pub const VALUE_BYTES: usize = 90;
/// Total record size.
pub const RECORD_BYTES: u64 = (KEY_BYTES + VALUE_BYTES) as u64;

/// Encoded size of one record on HDFS (length framing included).
pub const RECORD_ENCODED_BYTES: u64 = RECORD_BYTES + 8;

/// Generates `total_bytes` (logical, at 100 B/record) of TeraSort input
/// under `path`, one part file per worker, written concurrently from the
/// workers themselves. `real` materialises actual random records
/// (tests/examples); otherwise only sizes flow (paper-scale benchmarks).
/// Returns the number of records generated.
pub async fn teragen(cluster: &Cluster, path: &str, total_bytes: u64, real: bool) -> u64 {
    let workers = cluster.worker_count();
    assert!(workers > 0);
    let per_worker = total_bytes / workers as u64;
    // Real blobs must fit one HDFS block (blocks never tear records).
    let block_size = cluster.hdfs.config().block_size;
    let mut writers = Vec::new();
    for i in 0..workers {
        let cluster = cluster.clone();
        let path = format!("{path}/part-{i:05}");
        let node = cluster.workers[i].id;
        let sim = cluster.sim.clone();
        writers.push(cluster.sim.spawn_named(format!("teragen-{i}"), async move {
            let mut w = cluster
                .hdfs
                .create(&path, node)
                .await
                .expect("teragen create");
            let mut records_left = per_worker / RECORD_BYTES;
            let written = records_left;
            let stride_records = if real {
                (block_size / RECORD_ENCODED_BYTES).max(1)
            } else {
                (16 << 20) / RECORD_BYTES
            };
            while records_left > 0 {
                let n = stride_records.min(records_left);
                let blob = if real {
                    let records =
                        sim.with_rng(|rng| (0..n).map(|_| random_record(rng)).collect::<Vec<_>>());
                    Blob::real(encode_records(&records))
                } else {
                    Blob::synthetic(n * RECORD_BYTES)
                };
                w.write(blob).await.expect("teragen write");
                records_left -= n;
            }
            w.close().await.expect("teragen close");
            written
        }));
    }
    let mut total = 0;
    for w in writers {
        total += w.await;
    }
    total
}

fn random_record(rng: &mut impl Rng) -> Record {
    let mut key = vec![0u8; KEY_BYTES];
    rng.fill(&mut key[..]);
    let value = vec![b'V'; VALUE_BYTES];
    Record::new(key, value)
}

/// The TeraSort job over `input` → `output`: identity map/reduce with the
/// total-order partitioner.
pub fn terasort_spec(input: &str, output: &str) -> JobSpec {
    let mut spec = JobSpec::sort(input, output, RECORD_BYTES);
    spec.name = format!("TeraSort({input})");
    spec
}

/// Outcome of TeraValidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateReport {
    /// Records checked across all partitions.
    pub records: u64,
    /// Partition count.
    pub partitions: usize,
}

/// Validates a real-mode TeraSort output: per-partition order, cross-
/// partition boundaries, and record conservation against `expected_records`.
pub async fn teravalidate(
    cluster: &Cluster,
    output: &str,
    reduces: usize,
    expected_records: u64,
) -> Result<ValidateReport, String> {
    let client = cluster.workers[0].id;
    let mut total = 0u64;
    let mut prev_last: Option<Bytes> = None;
    for r in 0..reduces {
        let path = format!("{output}/part-{r:05}");
        let mut reader = cluster
            .hdfs
            .open(&path, client)
            .await
            .map_err(|e| e.to_string())?;
        let mut part_records: Vec<Record> = Vec::new();
        while let Some(block) = reader.next_block().await.map_err(|e| e.to_string())? {
            let data = block
                .data
                .ok_or_else(|| format!("{path}: no content (synthetic run?)"))?;
            part_records.extend(rmr_core::decode_records(data));
        }
        for w in part_records.windows(2) {
            if w[0].key > w[1].key {
                return Err(format!("{path}: out-of-order records"));
            }
        }
        if let (Some(prev), Some(first)) = (&prev_last, part_records.first()) {
            if *prev > first.key {
                return Err(format!(
                    "{path}: first key precedes previous partition's last key"
                ));
            }
        }
        if let Some(last) = part_records.last() {
            prev_last = Some(last.key.clone());
        }
        total += part_records.len() as u64;
    }
    if total != expected_records {
        return Err(format!(
            "record count mismatch: expected {expected_records}, found {total}"
        ));
    }
    Ok(ValidateReport {
        records: total,
        partitions: reduces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_core::NodeSpec;
    use rmr_des::Sim;
    use rmr_hdfs::HdfsConfig;
    use rmr_net::FabricParams;

    fn mk_cluster(sim: &Sim, n: usize, block: u64) -> Cluster {
        Cluster::build(
            sim,
            FabricParams::ib_verbs_qdr(),
            &vec![NodeSpec::westmere_compute(); n],
            HdfsConfig {
                block_size: block,
                replication: 1,
                packet_size: 1 << 20,
            },
        )
    }

    #[test]
    fn teragen_writes_expected_volume() {
        let sim = Sim::new(11);
        let cluster = mk_cluster(&sim, 4, 8 << 20);
        let c2 = cluster.clone();
        sim.spawn(async move {
            let records = teragen(&c2, "/teragen", 40 << 20, false).await;
            assert_eq!(records, 4 * ((10 << 20) / RECORD_BYTES));
            let mut total = 0;
            for i in 0..4 {
                total += c2.hdfs.file_size(&format!("/teragen/part-{i:05}")).unwrap();
            }
            // Rounded down to whole records per worker.
            assert_eq!(total, 4 * ((10 << 20) / RECORD_BYTES * RECORD_BYTES));
        })
        .detach();
        sim.run();
    }

    #[test]
    fn real_teragen_produces_100_byte_records() {
        let sim = Sim::new(12);
        let cluster = mk_cluster(&sim, 2, 1 << 20);
        let c2 = cluster.clone();
        sim.spawn(async move {
            teragen(&c2, "/in", 200_000, true).await;
            let mut r = c2
                .hdfs
                .open("/in/part-00000", c2.workers[0].id)
                .await
                .unwrap();
            let mut records = Vec::new();
            while let Some(b) = r.next_block().await.unwrap() {
                records.extend(rmr_core::decode_records(b.data.unwrap()));
            }
            assert!(!records.is_empty());
            for rec in &records {
                assert_eq!(rec.key.len(), KEY_BYTES);
                assert_eq!(rec.value.len(), VALUE_BYTES);
            }
        })
        .detach();
        sim.run();
    }

    #[test]
    fn spec_uses_total_order_partitioner() {
        let spec = terasort_spec("/in", "/out");
        // Keys with small leading byte → low partition; large → high.
        assert_eq!(spec.partitioner.partition(&[0u8; 10], 4), 0);
        assert_eq!(spec.partitioner.partition(&[255u8; 10], 4), 3);
        assert_eq!(spec.avg_record_bytes, 100);
    }
}
