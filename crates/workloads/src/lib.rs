//! # rmr-workloads — the paper's benchmark workloads
//!
//! * [`tera`] — TeraGen / TeraSort / TeraValidate (100-byte records,
//!   total-order partitioning) — Figs 4 and 5.
//! * [`randomwriter`] — RandomWriter / Sort (10–1000 B keys, 0–20000 B
//!   values, hash partitioning) — Figs 6, 7, 8.
//! * [`wordcount`] — a non-identity job exercising grouping reducers.

pub mod randomwriter;
pub mod tera;
pub mod wordcount;

pub use randomwriter::{randomwriter, sort_spec, validate_sort, AVG_RECORD_BYTES};
pub use tera::{teragen, terasort_spec, teravalidate, ValidateReport, RECORD_BYTES};
pub use wordcount::{
    read_counts, textgen, textgen_blocks, textgen_vocab, wordcount_spec, wordcount_spec_no_combiner,
};
