//! RandomWriter / Sort (§II-A-2).
//!
//! RandomWriter fills HDFS with random-sized key-value pairs — keys of
//! 10–1000 bytes and values of 0–20000 bytes (the Hadoop defaults; the
//! paper: "the combined length of key-value pairs can be as large as
//! 20,000 bytes"). The Sort benchmark then sorts them with the default
//! hash partitioner. The large, variable records are exactly what exposes
//! Hadoop-A's fixed-kv-count packet sizing (§IV-C).

use rand::Rng;

use rmr_core::cluster::Cluster;
use rmr_core::{encode_records, HashPartitioner, JobSpec, Record};
use rmr_hdfs::Blob;

/// Minimum key size.
pub const KEY_MIN: usize = 10;
/// Maximum key size.
pub const KEY_MAX: usize = 1_000;
/// Minimum value size.
pub const VALUE_MIN: usize = 0;
/// Maximum value size.
pub const VALUE_MAX: usize = 20_000;

/// Mean record size (uniform distributions over the ranges above).
pub const AVG_RECORD_BYTES: u64 = ((KEY_MIN + KEY_MAX) / 2 + (VALUE_MIN + VALUE_MAX) / 2) as u64;

/// Generates `total_bytes` of Sort input under `path`, one file per worker,
/// in parallel. Returns the number of records generated (real mode; the
/// synthetic estimate uses [`AVG_RECORD_BYTES`]).
pub async fn randomwriter(cluster: &Cluster, path: &str, total_bytes: u64, real: bool) -> u64 {
    let workers = cluster.worker_count();
    assert!(workers > 0);
    let per_worker = total_bytes / workers as u64;
    let block_size = cluster.hdfs.config().block_size;
    let mut writers = Vec::new();
    for i in 0..workers {
        let cluster = cluster.clone();
        let path = format!("{path}/part-{i:05}");
        let node = cluster.workers[i].id;
        let sim = cluster.sim.clone();
        writers.push(
            cluster
                .sim
                .spawn_named(format!("randomwriter-{i}"), async move {
                    let mut w = cluster
                        .hdfs
                        .create(&path, node)
                        .await
                        .expect("randomwriter create");
                    let mut written = 0u64;
                    let mut n_records = 0u64;
                    // Real blobs must fit one HDFS block (blocks never tear
                    // records); leave headroom for the largest record + framing.
                    let stride = if real {
                        block_size
                            .saturating_sub((KEY_MAX + VALUE_MAX + 16) as u64)
                            .max(1 << 16)
                    } else {
                        16 << 20
                    };
                    while written < per_worker {
                        let chunk = stride.min(per_worker - written);
                        let blob = if real {
                            let mut records = Vec::new();
                            let mut bytes = 0u64;
                            sim.with_rng(|rng| {
                                while bytes < chunk {
                                    let r = random_record(rng);
                                    bytes += r.size();
                                    records.push(r);
                                }
                            });
                            n_records += records.len() as u64;
                            Blob::real(encode_records(&records))
                        } else {
                            n_records += chunk / AVG_RECORD_BYTES;
                            Blob::synthetic(chunk)
                        };
                        written += blob.len.max(chunk);
                        w.write(blob).await.expect("randomwriter write");
                    }
                    w.close().await.expect("randomwriter close");
                    n_records
                }),
        );
    }
    let mut total = 0;
    for w in writers {
        total += w.await;
    }
    total
}

fn random_record(rng: &mut impl Rng) -> Record {
    let klen = rng.gen_range(KEY_MIN..=KEY_MAX);
    let vlen = rng.gen_range(VALUE_MIN..=VALUE_MAX);
    let mut key = vec![0u8; klen];
    rng.fill(&mut key[..]);
    let value = vec![b'v'; vlen];
    Record::new(key, value)
}

/// The Sort job over `input` → `output`: identity map/reduce with the
/// default hash partitioner (per-partition sorted output, as the stock
/// benchmark produces).
pub fn sort_spec(input: &str, output: &str) -> JobSpec {
    let mut spec = JobSpec::sort(input, output, AVG_RECORD_BYTES)
        .with_partitioner(std::rc::Rc::new(HashPartitioner));
    spec.name = format!("Sort({input})");
    spec
}

/// Validates a real-mode Sort output: every partition internally sorted and
/// record conservation.
pub async fn validate_sort(
    cluster: &Cluster,
    output: &str,
    reduces: usize,
    expected_records: u64,
) -> Result<u64, String> {
    let client = cluster.workers[0].id;
    let mut total = 0u64;
    for r in 0..reduces {
        let path = format!("{output}/part-{r:05}");
        let mut reader = cluster
            .hdfs
            .open(&path, client)
            .await
            .map_err(|e| e.to_string())?;
        let mut records: Vec<Record> = Vec::new();
        while let Some(block) = reader.next_block().await.map_err(|e| e.to_string())? {
            let data = block.data.ok_or_else(|| format!("{path}: no content"))?;
            records.extend(rmr_core::decode_records(data));
        }
        if !records.windows(2).all(|w| w[0].key <= w[1].key) {
            return Err(format!("{path}: out-of-order records"));
        }
        total += records.len() as u64;
    }
    if total != expected_records {
        return Err(format!(
            "record count mismatch: expected {expected_records}, found {total}"
        ));
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_core::NodeSpec;
    use rmr_des::Sim;
    use rmr_hdfs::HdfsConfig;
    use rmr_net::FabricParams;

    #[test]
    fn avg_record_matches_distributions() {
        assert_eq!(AVG_RECORD_BYTES, 10_505);
    }

    #[test]
    fn real_records_are_variable_sized() {
        let sim = Sim::new(5);
        let cluster = Cluster::build(
            &sim,
            FabricParams::ib_verbs_qdr(),
            &[NodeSpec::westmere_compute()],
            HdfsConfig {
                block_size: 64 << 20,
                replication: 1,
                packet_size: 1 << 20,
            },
        );
        let c2 = cluster.clone();
        sim.spawn(async move {
            randomwriter(&c2, "/rw", 1 << 20, true).await;
            let mut r = c2
                .hdfs
                .open("/rw/part-00000", c2.workers[0].id)
                .await
                .unwrap();
            let mut sizes = Vec::new();
            while let Some(b) = r.next_block().await.unwrap() {
                for rec in rmr_core::decode_records(b.data.unwrap()) {
                    assert!(rec.key.len() >= KEY_MIN && rec.key.len() <= KEY_MAX);
                    assert!(rec.value.len() <= VALUE_MAX);
                    sizes.push(rec.size());
                }
            }
            assert!(sizes.len() > 20);
            let distinct: std::collections::BTreeSet<_> = sizes.iter().collect();
            assert!(distinct.len() > 5, "sizes should vary");
        })
        .detach();
        sim.run();
    }

    #[test]
    fn sort_spec_hash_partitions() {
        let spec = sort_spec("/in", "/out");
        assert_eq!(spec.avg_record_bytes, AVG_RECORD_BYTES);
        // Hash partitioner spreads keys.
        let p0 = spec.partitioner.partition(b"alpha", 8);
        let p1 = spec.partitioner.partition(b"beta", 8);
        assert!(p0 < 8 && p1 < 8);
    }
}
