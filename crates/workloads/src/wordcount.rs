//! WordCount — a non-identity map/reduce pair exercising the public API
//! beyond the sort benchmarks (grouping reducers, shrinking ratios).

use std::rc::Rc;

use bytes::Bytes;
use rand::Rng;

use rmr_core::cluster::Cluster;
use rmr_core::{encode_records, HashPartitioner, JobSpec, Record};
use rmr_hdfs::Blob;

/// A small vocabulary so counts aggregate meaningfully.
const WORDS: &[&str] = &[
    "rdma",
    "verbs",
    "shuffle",
    "merge",
    "reduce",
    "hadoop",
    "infiniband",
    "cache",
    "prefetch",
    "queue",
    "packet",
    "socket",
    "cluster",
    "disk",
];

/// Generates text-like input: each record is one "line" of `words_per_line`
/// space-separated words. Written as a single blob — one HDFS block, one map
/// split; use [`textgen_blocks`] when the job should fan out over many maps.
pub async fn textgen(cluster: &Cluster, path: &str, lines: usize, words_per_line: usize) {
    textgen_blocks(cluster, path, lines, words_per_line, lines).await;
}

/// [`textgen`], but writing `lines_per_block` lines per blob. Real blobs are
/// kept whole within one HDFS block, so this is what controls how many map
/// splits the input spans — per-node aggregation only has something to fold
/// when several co-located maps run.
pub async fn textgen_blocks(
    cluster: &Cluster,
    path: &str,
    lines: usize,
    words_per_line: usize,
    lines_per_block: usize,
) {
    textgen_write(cluster, path, lines, lines_per_block, |rng| {
        let line: Vec<&str> = (0..words_per_line)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
            .collect();
        line.join(" ")
    })
    .await;
}

/// [`textgen_blocks`] over a synthetic `vocab`-word vocabulary (`w000000` …)
/// instead of the built-in fourteen words. With a vocabulary much larger than
/// one map's token count, per-map combining barely shrinks the shuffle — the
/// cross-map in-node fold is what collapses duplicate keys, which makes this
/// the generator of choice for benchmarking the combiner *engine* rather than
/// the map-side combiner.
pub async fn textgen_vocab(
    cluster: &Cluster,
    path: &str,
    lines: usize,
    words_per_line: usize,
    lines_per_block: usize,
    vocab: usize,
) {
    assert!(vocab > 0, "need a non-empty vocabulary");
    textgen_write(cluster, path, lines, lines_per_block, |rng| {
        let line: Vec<String> = (0..words_per_line)
            .map(|_| format!("w{:06}", rng.gen_range(0..vocab)))
            .collect();
        line.join(" ")
    })
    .await;
}

async fn textgen_write(
    cluster: &Cluster,
    path: &str,
    lines: usize,
    lines_per_block: usize,
    mut line_of: impl FnMut(&mut rand::rngs::SmallRng) -> String,
) {
    assert!(lines_per_block > 0, "need at least one line per block");
    let node = cluster.workers[0].id;
    let sim = cluster.sim.clone();
    let mut w = cluster
        .hdfs
        .create(path, node)
        .await
        .expect("textgen create");
    let records: Vec<Record> = sim.with_rng(|rng| {
        (0..lines)
            .map(|i| {
                Record::new(
                    format!("line{i:08}").into_bytes(),
                    Bytes::from(line_of(rng)),
                )
            })
            .collect()
    });
    for chunk in records.chunks(lines_per_block) {
        w.write(Blob::real(encode_records(chunk)))
            .await
            .expect("textgen write");
    }
    w.close().await.expect("textgen close");
}

/// The WordCount job: map splits lines into (word, 1); reduce sums counts.
pub fn wordcount_spec(input: &str, output: &str) -> JobSpec {
    let mapper = Rc::new(|r: &Record| -> Vec<Record> {
        let line = String::from_utf8_lossy(&r.value);
        line.split_whitespace()
            .map(|w| Record::new(w.as_bytes().to_vec(), Bytes::from_static(b"1")))
            .collect()
    });
    let reducer = Rc::new(|key: &Bytes, values: &[Bytes]| -> Vec<Record> {
        let sum: u64 = values
            .iter()
            .map(|v| String::from_utf8_lossy(v).parse::<u64>().unwrap_or(0))
            .sum();
        vec![Record::new(key.clone(), Bytes::from(sum.to_string()))]
    });
    let mut spec = JobSpec::sort(input, output, 8)
        .with_partitioner(Rc::new(HashPartitioner))
        .with_mapper(mapper)
        .with_reducer(reducer.clone())
        // Hadoop's WordCount sets the reducer as combiner: per-map partial
        // sums collapse the shuffle to at most |vocabulary| records per map.
        .with_combiner(reducer, 0.05)
        .with_ratios(0.6, 0.05);
    spec.name = format!("WordCount({input})");
    spec
}

/// WordCount without the map-side combiner (for measuring its effect).
pub fn wordcount_spec_no_combiner(input: &str, output: &str) -> JobSpec {
    let mut spec = wordcount_spec(input, output);
    spec.combiner = None;
    spec.combine_ratio = 1.0;
    spec.name = format!("WordCount-nocombine({input})");
    spec
}

/// Reads back a real-mode WordCount output into (word, count) pairs.
pub async fn read_counts(
    cluster: &Cluster,
    output: &str,
    reduces: usize,
) -> Result<std::collections::BTreeMap<String, u64>, String> {
    let client = cluster.workers[0].id;
    let mut counts = std::collections::BTreeMap::new();
    for r in 0..reduces {
        let path = format!("{output}/part-{r:05}");
        let mut reader = cluster
            .hdfs
            .open(&path, client)
            .await
            .map_err(|e| e.to_string())?;
        while let Some(block) = reader.next_block().await.map_err(|e| e.to_string())? {
            let data = block.data.ok_or_else(|| format!("{path}: no content"))?;
            for rec in rmr_core::decode_records(data) {
                let word = String::from_utf8_lossy(&rec.key).to_string();
                let count: u64 = String::from_utf8_lossy(&rec.value)
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
                *counts.entry(word).or_insert(0) += count;
            }
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_splits_lines() {
        let spec = wordcount_spec("/in", "/out");
        let mapper = spec.mapper.unwrap();
        let out = mapper(&Record::new(
            b"line1".to_vec(),
            Bytes::from_static(b"rdma verbs rdma"),
        ));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key.as_ref(), b"rdma");
        assert_eq!(out[1].key.as_ref(), b"verbs");
    }

    #[test]
    fn reducer_sums_values() {
        let spec = wordcount_spec("/in", "/out");
        let reducer = spec.reducer.unwrap();
        let out = reducer(
            &Bytes::from_static(b"rdma"),
            &[
                Bytes::from_static(b"1"),
                Bytes::from_static(b"1"),
                Bytes::from_static(b"3"),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.as_ref(), b"5");
    }
}
