//! Testbed presets mirroring the paper's experimental setup (§IV-A) and the
//! per-system tuning it reports.
//!
//! * Compute nodes: dual quad-core Westmere 2.67 GHz, 12 GB RAM, 1 HDD.
//! * Storage nodes: same CPU, 24 GB RAM, up to two 1 TB HDDs (used for the
//!   Fig 5 large runs); four of them carry 10GigE TOE NICs; SSD variants
//!   for Figs 7–8.
//! * Block-size tuning (§IV-B, §IV-C): TeraSort runs best at 256 MB for
//!   10GigE/IPoIB/OSU-IB and 128 MB for Hadoop-A; Sort at 64 MB for all.
//! * 4 concurrent map and 4 concurrent reduce tasks per TaskTracker.

use rmr_core::{JobConf, NodeSpec, ShuffleKind};
use rmr_net::{FabricParams, Topology};
use rmr_store::DiskParams;

/// The systems compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Vanilla Hadoop over 1 Gigabit Ethernet.
    GigE1,
    /// Vanilla Hadoop over 10 Gigabit Ethernet (TOE).
    GigE10,
    /// Vanilla Hadoop over IPoIB (QDR, 32 Gbps).
    IpoIb,
    /// Hadoop-A over IB verbs (QDR).
    HadoopA,
    /// The paper's design over IB verbs (QDR).
    OsuIb,
    /// OSU-IB with `mapred.local.caching.enabled = false` (Fig 8).
    OsuIbNoCache,
    /// OSU-IB plus the per-node combiner aggregation stage.
    NodeCombiner,
    /// OSU-IB striped across two QDR rails (dual-port HCAs).
    MultiRail,
}

impl System {
    /// Label as it appears in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            System::GigE1 => "1GigE",
            System::GigE10 => "10GigE",
            System::IpoIb => "IPoIB (32Gbps)",
            System::HadoopA => "HadoopA-IB (32Gbps)",
            System::OsuIb => "OSU-IB (32Gbps)",
            System::OsuIbNoCache => "OSU-IB (no caching)",
            System::NodeCombiner => "OSU-IB+Comb (32Gbps)",
            System::MultiRail => "OSU-IB-MR (2x32Gbps)",
        }
    }

    /// The interconnect this system runs on.
    pub fn fabric(self) -> FabricParams {
        match self {
            System::GigE1 => FabricParams::gige_1(),
            System::GigE10 => FabricParams::gige_10_toe(),
            System::IpoIb => FabricParams::ipoib_qdr(),
            System::HadoopA | System::OsuIb | System::OsuIbNoCache | System::NodeCombiner => {
                FabricParams::ib_verbs_qdr()
            }
            System::MultiRail => FabricParams::ib_verbs_qdr().with_rails(2),
        }
    }

    /// The shuffle engine.
    pub fn shuffle(self) -> ShuffleKind {
        match self {
            System::GigE1 | System::GigE10 | System::IpoIb => ShuffleKind::Vanilla,
            System::HadoopA => ShuffleKind::HadoopA,
            System::OsuIb | System::OsuIbNoCache => ShuffleKind::OsuIb,
            System::NodeCombiner => ShuffleKind::NodeCombiner,
            System::MultiRail => ShuffleKind::MultiRail,
        }
    }

    /// The systems the paper's figures compare, in figure order. Kept to the
    /// seed six — the figure grids are shape-pinned against it.
    pub const ALL: [System; 6] = [
        System::GigE1,
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
        System::OsuIbNoCache,
    ];

    /// [`System::ALL`] plus the shuffle-volume extension systems, for the
    /// engine-comparison grids.
    pub const EXTENDED: [System; 8] = [
        System::GigE1,
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
        System::OsuIbNoCache,
        System::NodeCombiner,
        System::MultiRail,
    ];
}

/// Which benchmark an experiment runs (drives per-benchmark tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// TeraSort: 100-byte records, total-order partitioning.
    TeraSort,
    /// Sort: RandomWriter records up to 20 kB, hash partitioning.
    Sort,
}

impl Bench {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Bench::TeraSort => "TeraSort",
            Bench::Sort => "Sort",
        }
    }
}

/// The optimal HDFS block size the paper reports for (system, benchmark).
pub fn tuned_block_size(system: System, bench: Bench) -> u64 {
    match bench {
        Bench::TeraSort => match system {
            System::HadoopA => 128 << 20,
            _ => 256 << 20,
        },
        Bench::Sort => 64 << 20,
    }
}

/// Hardware description of one testbed configuration.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Worker (DataNode/TaskTracker) count.
    pub nodes: usize,
    /// Disks per node.
    pub disks: usize,
    /// SSD instead of HDD.
    pub ssd: bool,
    /// Storage-class nodes (24 GB RAM) instead of compute-class (12 GB).
    pub storage_class: bool,
    /// Rack structure of the fabric. The paper's testbed is a single QDR
    /// switch, so every preset defaults to [`Topology::flat`].
    pub topology: Topology,
}

impl Testbed {
    /// Compute nodes with `disks` HDDs each.
    pub fn compute(nodes: usize, disks: usize) -> Self {
        Testbed {
            nodes,
            disks,
            ssd: false,
            storage_class: false,
            topology: Topology::flat(),
        }
    }

    /// Storage nodes (24 GB) with `disks` HDDs each.
    pub fn storage(nodes: usize, disks: usize) -> Self {
        Testbed {
            nodes,
            disks,
            ssd: false,
            storage_class: true,
            topology: Topology::flat(),
        }
    }

    /// Nodes with one SSD each (Figs 7–8 use SSD HDFS data stores).
    pub fn ssd(nodes: usize) -> Self {
        Testbed {
            nodes,
            disks: 1,
            ssd: true,
            storage_class: false,
            topology: Topology::flat(),
        }
    }

    /// Same testbed behind racks of `rack_size` hosts with core uplinks
    /// oversubscribed by `oversub`. At `oversub` 1.0 this replays
    /// bit-identically to the flat default (see [`Topology::constrains`]).
    pub fn with_racks(mut self, rack_size: usize, oversub: f64) -> Self {
        self.topology = Topology::racks(rack_size, oversub);
        self
    }

    /// Expands into per-node specs.
    pub fn node_specs(&self) -> Vec<NodeSpec> {
        let mem: u64 = if self.storage_class {
            24 << 30
        } else {
            12 << 30
        };
        // JVM heaps (8 task slots + TT + DN) eat most of a compute node;
        // what's left backs the OS page cache.
        let page_cache = if self.storage_class {
            10 << 30
        } else {
            3 << 30
        };
        let disk = if self.ssd {
            DiskParams::ssd_sata()
        } else {
            DiskParams::hdd_7200()
        };
        vec![
            NodeSpec {
                cores: 8.0,
                mem,
                disks: self.disks,
                disk,
                page_cache,
            };
            self.nodes
        ]
    }
}

/// The paper's JobConf for (system, benchmark, testbed): 4+4 slots, tuned
/// block size, and the PrefetchCache sized to the TaskTracker heap headroom
/// of the node class.
pub fn tuned_conf(system: System, _bench: Bench, testbed: &Testbed) -> JobConf {
    let mut conf = match system.shuffle() {
        ShuffleKind::Vanilla => JobConf::vanilla(),
        ShuffleKind::HadoopA => JobConf::hadoop_a(),
        ShuffleKind::OsuIb => {
            if system == System::OsuIbNoCache {
                JobConf::osu_ib_no_cache()
            } else {
                JobConf::osu_ib()
            }
        }
        kind @ (ShuffleKind::NodeCombiner | ShuffleKind::MultiRail) => JobConf::for_kind(kind),
    };
    conf.map_slots = 4;
    conf.reduce_slots = 4;
    // Benchmark tuning pairs io.sort.mb with the block size so a map's
    // output sorts in one spill (the paper reports per-system tuning of
    // "all the tunable parameters with optimum values").
    conf.io_sort_buffer = 320 << 20;
    conf.num_reduces = testbed.nodes * conf.reduce_slots;
    conf.prefetch_cache_bytes = if testbed.storage_class {
        8 << 30
    } else {
        3 << 30
    };
    conf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_tuning_matches_the_paper() {
        assert_eq!(tuned_block_size(System::IpoIb, Bench::TeraSort), 256 << 20);
        assert_eq!(tuned_block_size(System::OsuIb, Bench::TeraSort), 256 << 20);
        assert_eq!(
            tuned_block_size(System::HadoopA, Bench::TeraSort),
            128 << 20
        );
        for s in System::ALL {
            assert_eq!(tuned_block_size(s, Bench::Sort), 64 << 20);
        }
    }

    #[test]
    fn systems_map_to_engines_and_fabrics() {
        assert_eq!(System::IpoIb.shuffle(), ShuffleKind::Vanilla);
        assert_eq!(System::HadoopA.shuffle(), ShuffleKind::HadoopA);
        assert_eq!(System::OsuIb.shuffle(), ShuffleKind::OsuIb);
        assert!(System::OsuIb.fabric().is_rdma());
        assert!(!System::GigE10.fabric().is_rdma());
        assert_eq!(System::NodeCombiner.shuffle(), ShuffleKind::NodeCombiner);
        assert_eq!(System::MultiRail.shuffle(), ShuffleKind::MultiRail);
        assert_eq!(System::MultiRail.fabric().rails, 2);
        assert_eq!(System::NodeCombiner.fabric().rails, 1);
    }

    #[test]
    fn extended_list_keeps_figure_order_as_a_prefix() {
        assert_eq!(System::EXTENDED[..System::ALL.len()], System::ALL);
        let conf = tuned_conf(
            System::NodeCombiner,
            Bench::TeraSort,
            &Testbed::compute(4, 1),
        );
        assert_eq!(conf.shuffle, ShuffleKind::NodeCombiner);
        assert!(conf.caching_enabled);
        let conf = tuned_conf(System::MultiRail, Bench::Sort, &Testbed::compute(4, 1));
        assert_eq!(conf.shuffle, ShuffleKind::MultiRail);
    }

    #[test]
    fn testbed_specs_follow_node_class() {
        let c = Testbed::compute(4, 2).node_specs();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].mem, 12 << 30);
        assert_eq!(c[0].disks, 2);
        let s = Testbed::storage(8, 2).node_specs();
        assert_eq!(s[0].mem, 24 << 30);
        assert!(s[0].page_cache > c[0].page_cache);
        let ssd = Testbed::ssd(4).node_specs();
        assert_eq!(ssd[0].disk.name, "SSD");
    }

    #[test]
    fn tuned_conf_uses_four_by_four_slots() {
        let tb = Testbed::compute(8, 1);
        let conf = tuned_conf(System::OsuIb, Bench::TeraSort, &tb);
        assert_eq!(conf.map_slots, 4);
        assert_eq!(conf.reduce_slots, 4);
        assert_eq!(conf.num_reduces, 32);
        assert!(conf.caching_enabled);
        let conf = tuned_conf(System::OsuIbNoCache, Bench::Sort, &tb);
        assert!(!conf.caching_enabled);
    }
}
