//! # rmr-cluster — testbed presets and the experiment driver
//!
//! [`testbed`] encodes the paper's cluster (§IV-A) and per-system tuning;
//! [`runner`] executes experiment grids, one deterministic simulation per
//! point, in parallel across OS threads.

pub mod runner;
pub mod testbed;

pub use runner::{
    format_table, run_all, run_experiment, run_experiment_traced, run_multijob, Experiment,
    MultiJobExperiment, RunRecord,
};
pub use testbed::{tuned_block_size, tuned_conf, Bench, System, Testbed};
